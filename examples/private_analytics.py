#!/usr/bin/env python3
"""Prio-style private analytics across framework-bootstrapped servers (§2).

One hundred simulated clients each submit a bounded telemetry value as
additive shares to two aggregation servers. No server ever sees an individual
value, yet the operator learns the exact total — the same guarantee as the
Firefox/ENPA Prio deployments the paper surveys, without cross-organization
coordination to set the servers up.

Run with:  python examples/private_analytics.py
"""

from repro.apps.prio import PrivateAggregationClient, PrivateAggregationDeployment
from repro.sim.workload import WorkloadGenerator


def main() -> None:
    service = PrivateAggregationDeployment(num_servers=2, max_value=100)
    print(f"Aggregation servers: {[d.domain_id for d in service.deployment.domains]}")

    workload = WorkloadGenerator(seed=42)
    values = workload.telemetry_values(100, 0, 100)

    auditing_client = PrivateAggregationClient(service)
    auditing_client.audit()
    print("Servers audited before any data was submitted. ✔")

    for value in values:
        # Every client independently splits its value; reusing one client
        # object here just avoids re-auditing a hundred times.
        auditing_client.submit(value)

    partials = [
        service.deployment.invoke(i, "read_partial_sum", {})["value"]["partial_sum"]
        for i in range(service.num_servers)
    ]
    aggregate = service.aggregate()
    print(f"True sum of submitted values: {sum(values)}")
    print(f"Aggregate computed by servers: {aggregate['sum']} "
          f"from {aggregate['submissions']} submissions")
    print(f"Individual server accumulators (reveal nothing on their own): "
          f"{[hex(p)[:14] + '...' for p in partials]}")
    assert aggregate["sum"] == sum(values)


if __name__ == "__main__":
    main()
