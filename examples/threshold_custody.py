#!/usr/bin/env python3
"""Financial custody with BLS threshold signing (the paper's §5 application).

Three signer domains hold shares of a BLS signing key; any two produce a
signature on a withdrawal. We also exploit one secure-hardware vendor and show
that the heterogeneous deployment still has enough honest domains to operate,
while a homogeneous deployment would not.

Run with:  python examples/threshold_custody.py
"""

from repro.apps.threshold_sign import CustodyClient, CustodyDeployment
from repro.sim.adversary import VendorExploit


def main() -> None:
    service = CustodyDeployment(threshold=2, num_signers=3, keygen_seed=b"example-custody")
    client = CustodyClient(service)

    print(f"Custody deployment: {service.deployment.hardware_census()}")
    print(f"Group public key: {service.group_public_key.to_bytes().hex()[:32]}...")

    transaction = client.sign_transaction(b"withdraw 3.5 BTC to bc1q...")
    print(f"Signed by domains {transaction.signer_indices}; "
          f"signature verifies: {client.verify(transaction)}")

    other = client.sign_transaction(b"withdraw 3.5 BTC to bc1q...", signer_indices=[2, 3])
    print(f"A different signer subset produces the identical signature: "
          f"{other.signature == transaction.signature}")

    print("\n--- simulating an exploit against one secure-hardware vendor ---")
    exploit = VendorExploit(service.deployment)
    outcome = exploit.exploit("intel-sgx-sim")
    print(f"Compromised enclaves: {outcome.domains_breached}")
    print(f"Unaffected enclaves:  {outcome.domains_resisted}")

    post_incident_audit = client.auditing_client.audit_deployment(service.deployment)
    print(f"Client audit after the exploit passes: {post_incident_audit.ok} "
          f"(failed domains: {[r.domain_id for r in post_incident_audit.failures()]})")

    survivors = [i for i in (1, 2, 3)
                 if not service.deployment.domains[i].compromised]
    print(f"Honest signer domains remaining: {survivors} "
          f"(threshold {service.threshold})")
    if len(survivors) >= service.threshold:
        incident_client = CustodyClient(service, audit_before_use=False)
        recovery = incident_client.sign_transaction(
            b"rotate keys after incident", signer_indices=survivors[: service.threshold]
        )
        print(f"Custody still operational on heterogeneous hardware: "
              f"{incident_client.verify(recovery)} ✔")


if __name__ == "__main__":
    main()
