#!/usr/bin/env python3
"""Figure 1 scenario: secret-key backup that survives developer compromise.

A user backs up a wallet key across three trust domains (Shamir 2-of-3). We
then simulate the paper's Figure 1 attack — the application developer's
credentials are stolen — and show that the attacker can read at most the one
share on the developer's own machine, which is not enough to recover the key.

Run with:  python examples/key_backup.py
"""

import secrets

from repro.apps.keybackup import KeyBackupClient, KeyBackupDeployment


def main() -> None:
    service = KeyBackupDeployment(num_domains=3, threshold=2)
    client = KeyBackupClient(service)

    wallet_key = secrets.randbits(256)
    print(f"User wallet key:          {wallet_key:#066x}")

    receipt = client.backup_key("alice", wallet_key)
    print(f"Backed up across {receipt.num_domains} trust domains "
          f"(any {receipt.threshold} recover it)")

    recovered = client.recover_key("alice")
    print(f"Recovered by the user:    {recovered:#066x}  (match: {recovered == wallet_key})")

    print("\n--- simulating a compromised application developer (Figure 1) ---")
    outcome = service.simulate_developer_compromise()
    print(f"Domains the attacker could read: {outcome['breached_domains']}")
    print(f"Domains that resisted:           {outcome['resisted_domains']}")
    print(f"Shares recoverable by attacker:  {outcome['shares_recoverable']} "
          f"of {receipt.threshold} needed")
    print(f"Attacker recovers the key:       {outcome['key_recoverable']}")

    assert not outcome["key_recoverable"], "the framework should have prevented this"
    print("\nA compromised developer cannot access the user's secret key. ✔")


if __name__ == "__main__":
    main()
