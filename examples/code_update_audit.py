#!/usr/bin/env python3
"""Figure 2 scenario: signed code updates, announcements, and audits.

The developer pushes a legitimate update to both trust domains; clients see
the announcement, the digest logs grow, and the audit still passes. Then a
*malicious* update — signed (the developer's key was stolen) but applied to
only one domain and never published as source — is pushed, and the client's
audit detects it and produces publicly verifiable evidence.

Run with:  python examples/code_update_audit.py
"""

from repro.core.client import AuditingClient
from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.package import CodePackage, DeveloperIdentity
from repro.core.trust_domain import expected_framework_measurement
from repro.enclave.attestation import AttestationVerifier
from repro.sandbox.programs import bls_share_source


def audit_and_print(client: AuditingClient, deployment: Deployment, label: str):
    report = client.audit_deployment(deployment)
    print(f"[audit] {label}: ok={report.ok}")
    for result in report.domain_results:
        print(f"        {result.domain_id:<28} version={result.app_version:<12} "
              f"log entries={result.log_length} attested={result.attested}")
    for evidence in report.evidence:
        print(f"        evidence: {evidence.kind} — {evidence.description}")
    return report


def main() -> None:
    developer = DeveloperIdentity("update-demo-developer")
    deployment = Deployment("update-demo", developer, DeploymentConfig(num_domains=2))
    client = AuditingClient(deployment.vendor_registry)

    v1 = CodePackage("bls-custody", "1.0.0", "wvm", bls_share_source())
    deployment.publish_and_install(v1)
    audit_and_print(client, deployment, "after initial release 1.0.0")

    print("\n--- developer pushes a legitimate, published update ---")
    v11 = CodePackage("bls-custody", "1.1.0", "wvm", bls_share_source() + "\n; bugfix release")
    deployment.publish_and_install(v11)
    announcements = deployment.domains[1].framework.announcements()
    print(f"Domain 1 announced {len(announcements)} updates; latest: "
          f"{announcements[-1].version}")
    audit_and_print(client, deployment, "after legitimate update 1.1.0")

    print("\n--- attacker (with the stolen signing key) updates only one domain ---")
    backdoored = CodePackage("bls-custody", "1.1.1", "wvm",
                             bls_share_source() + "\n; exfiltrate key shares")
    rogue_manifest = developer.sign_update(backdoored, deployment.current_sequence + 1)
    deployment.install_on_domain(1, rogue_manifest, backdoored)  # never published as source

    report = audit_and_print(client, deployment, "after malicious partial update")
    assert not report.ok

    verifier = AttestationVerifier(deployment.vendor_registry)
    verifiable = [e for e in report.evidence
                  if e.verify(verifier, expected_framework_measurement())]
    print(f"\nPublicly verifiable misbehavior evidence objects: {len(verifiable)}")
    print("The attack could not be hidden: the update is permanently recorded in the "
          "victim domain's append-only log and visibly absent from the published releases. ✔")


if __name__ == "__main__":
    main()
