"""Run the fault-injection scenario matrix and print per-scenario reports.

Every application is driven end to end under adversarial network conditions —
message loss, delay, reordering, duplication, partitions, crashes, TEE
compromise, unannounced updates, and live 2→4 resharding epochs — and the
paper's safety invariants are checked after each run. The sweep is fully
seeded: two runs with the same seed print byte-identical reports.

Usage::

    PYTHONPATH=src python examples/scenario_sweep.py [seed]
        [--filter substring[,substring...]] [--json PATH] [--timeout-s N]
        [--synthesize N] [--synthesis-seed S]
        [--coverage PATH] [--coverage-floor F]

``--filter`` keeps only scenarios whose name contains one of the given
substrings (e.g. ``--filter 4shards,reshard`` runs the sharded and reshard
families); ``--json`` additionally writes every report's plain-data form to
a file (what CI uploads as an artifact); ``--timeout-s`` aborts the sweep if
any single scenario runs longer than N wall seconds — the guard CI uses so a
hung event loop fails the job in seconds instead of eating the runner's
job timeout.

``--synthesize N`` appends N generated scenarios (seeds ``S, S+1, …`` from
``--synthesis-seed``) targeted at the pairwise coverage cells the hand
matrix left dark; ``--coverage PATH`` writes the merged
:class:`~repro.sim.coverage.CoverageReport` as JSON (the
``coverage_report.json`` CI artifact), and ``--coverage-floor F`` fails the
sweep when the merged score drops below ``F`` (the committed CI floor).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys

from repro.sim.coverage import CoverageReport
from repro.sim.scenarios import ScenarioRunner, default_matrix
from repro.sim.synthesis import synthesize_batch


@contextlib.contextmanager
def _scenario_deadline(name: str, timeout_s: int):
    """Abort with a clear message if one scenario exceeds ``timeout_s``.

    Uses ``signal.alarm`` where available (POSIX main thread); elsewhere the
    guard degrades to a no-op rather than failing the sweep — the simulation
    itself is deterministic, so a hang is a code bug, not a platform race.
    """
    if timeout_s <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"scenario {name!r} exceeded the {timeout_s}s per-scenario budget"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(timeout_s)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def main(argv: list[str] | None = None) -> int:
    """Run the matrix; returns 0 when every invariant and liveness floor held."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("seed", nargs="?", type=int, default=2022)
    parser.add_argument("--filter", default="",
                        help="comma-separated name substrings to keep")
    parser.add_argument("--json", default="",
                        help="also write the reports as JSON to this path")
    parser.add_argument("--timeout-s", type=int, default=0,
                        help="abort if any one scenario exceeds this many "
                             "wall seconds (0 = no guard)")
    parser.add_argument("--synthesize", type=int, default=0, metavar="N",
                        help="append N generated scenarios targeted at the "
                             "hand matrix's uncovered coverage cells")
    parser.add_argument("--synthesis-seed", type=int, default=2022,
                        help="first seed of the synthesized batch "
                             "(scenario i uses seed S+i)")
    parser.add_argument("--coverage", default="", metavar="PATH",
                        help="write the merged pairwise coverage report as "
                             "JSON to this path")
    parser.add_argument("--coverage-floor", type=float, default=0.0,
                        help="fail the sweep when the merged coverage score "
                             "is below this fraction (0 = no floor)")
    args = parser.parse_args(argv)

    scenarios = default_matrix(args.seed)
    needles = [needle for needle in args.filter.split(",") if needle]
    if needles:
        scenarios = [s for s in scenarios
                     if any(needle in s.name for needle in needles)]
    if not scenarios:
        print(f"no scenarios match filter {args.filter!r}")
        return 2

    print(f"fault-injection scenario sweep (seed={args.seed}, "
          f"{len(scenarios)} scenarios)")
    print("=" * 64)
    reports = []
    for scenario in scenarios:
        with _scenario_deadline(scenario.name, args.timeout_s):
            report = ScenarioRunner(scenario).run()
        reports.append(report)
        print(report.format())
        print("-" * 64)

    hand_coverage = CoverageReport.from_reports(reports)
    coverage = hand_coverage
    if args.synthesize > 0:
        synthesized = synthesize_batch(args.synthesize, args.synthesis_seed,
                                       base=hand_coverage)
        print(f"synthesized batch: {len(synthesized)} scenarios (seeds "
              f"{args.synthesis_seed}..{args.synthesis_seed + len(synthesized) - 1}) "
              f"targeting {len(hand_coverage.uncovered())} dark cells")
        print("=" * 64)
        for scenario in synthesized:
            with _scenario_deadline(scenario.name, args.timeout_s):
                report = ScenarioRunner(scenario).run()
            reports.append(report)
            print(report.format())
            print("-" * 64)
        coverage = CoverageReport.from_reports(reports)

    invariants_checked = sum(len(report.invariants) for report in reports)
    invariants_failed = sum(
        1 for report in reports for result in report.invariants if not result.ok
    )
    liveness_misses = [r.scenario.name for r in reports if not r.liveness_ok]
    apps = sorted({report.scenario.app for report in reports})
    resharded = sum(1 for report in reports if report.reshards)
    print(f"scenarios: {len(reports)} across apps: {', '.join(apps)}")
    print(f"invariants: {invariants_checked} checked, {invariants_failed} failed")
    if resharded:
        print(f"live reshards: {resharded} scenarios crossed an epoch boundary")
    if liveness_misses:
        print(f"liveness floors missed: {', '.join(liveness_misses)}")
    print(f"coverage: {len(coverage.covered)}/{len(coverage.total)} pairwise "
          f"cells ({coverage.score * 100:.1f}%); hand matrix alone "
          f"{hand_coverage.score * 100:.1f}%")
    floor_missed = args.coverage_floor > 0 and coverage.score < args.coverage_floor
    if floor_missed:
        print(f"COVERAGE BELOW FLOOR: {coverage.score:.4f} < "
              f"{args.coverage_floor:.4f}")
    verdict = "ALL SAFETY INVARIANTS HELD" if invariants_failed == 0 else "INVARIANT FAILURES"
    print(verdict)

    if args.coverage:
        payload = coverage.to_dict()
        payload["hand_matrix_score"] = round(hand_coverage.score, 4)
        payload["synthesized"] = args.synthesize
        payload["synthesis_seed"] = args.synthesis_seed
        payload["floor"] = args.coverage_floor
        with open(args.coverage, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.coverage}")

    if args.json:
        payload = {
            "seed": args.seed,
            "filter": args.filter,
            "scenarios": [report.to_dict() for report in reports],
            "invariants_checked": invariants_checked,
            "invariants_failed": invariants_failed,
            "liveness_misses": liveness_misses,
            "verdict": verdict,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    ok = invariants_failed == 0 and not liveness_misses and not floor_missed
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
