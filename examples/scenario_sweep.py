"""Run the full fault-injection scenario matrix and print per-scenario reports.

Every application is driven end to end under adversarial network conditions —
message loss, delay, reordering, duplication, partitions, crashes, TEE
compromise, and unannounced updates — and the paper's safety invariants are
checked after each run. The sweep is fully seeded: two runs with the same seed
print byte-identical reports.

Usage::

    PYTHONPATH=src python examples/scenario_sweep.py [seed]
"""

from __future__ import annotations

import sys

from repro.sim.scenarios import ScenarioRunner, default_matrix


def main(seed: int = 2022) -> int:
    """Run the matrix; returns 0 when every invariant and liveness floor held."""
    print(f"fault-injection scenario sweep (seed={seed})")
    print("=" * 64)
    reports = []
    for scenario in default_matrix(seed):
        report = ScenarioRunner(scenario).run()
        reports.append(report)
        print(report.format())
        print("-" * 64)

    invariants_checked = sum(len(report.invariants) for report in reports)
    invariants_failed = sum(
        1 for report in reports for result in report.invariants if not result.ok
    )
    liveness_misses = [r.scenario.name for r in reports if not r.liveness_ok]
    apps = sorted({report.scenario.app for report in reports})
    print(f"scenarios: {len(reports)} across apps: {', '.join(apps)}")
    print(f"invariants: {invariants_checked} checked, {invariants_failed} failed")
    if liveness_misses:
        print(f"liveness floors missed: {', '.join(liveness_misses)}")
    verdict = "ALL SAFETY INVARIANTS HELD" if invariants_failed == 0 else "INVARIANT FAILURES"
    print(verdict)
    return 0 if invariants_failed == 0 and not liveness_misses else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 2022))
