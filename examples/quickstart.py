#!/usr/bin/env python3
"""Quickstart: declare an auditable distributed-trust service in ~40 lines.

The flow mirrors the paper end to end, on the unified service plane:

1. the developer *declares* the service — application package, trust domains
   per shard, shard count — as a `ServiceSpec`,
2. `synthesize()` derives the attested deployment replica set: heterogeneous
   (simulated) secure hardware, the release published to a source registry
   and CT-style log, the signed update installed everywhere,
3. a client opens a `ServiceClient` session, audits the whole fleet —
   attestation, digest logs, release log — and only then uses the
   application, with requests routed to shards by consistent hashing.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

from repro.core.package import CodePackage, DeveloperIdentity
from repro.crypto.bilinear import BLS_SCALAR_ORDER
from repro.sandbox.programs import bls_share_source
from repro.service import PackageBinding, ServiceClient, ServiceSpec


def main() -> None:
    # --- developer side: requirements in, configuration out ------------------
    developer = DeveloperIdentity("quickstart-developer")
    spec = ServiceSpec(
        name="quickstart",
        packages=(PackageBinding(CodePackage(
            name="bls-custody", version="1.0.0", language="wvm",
            source=bls_share_source(),
        )),),
        domains_per_shard=3,  # domain 0 = developer, 1 = Nitro-style, 2 = SGX-style
        shard_count=2,        # two attested replica sets carry the keyspace
    )
    plane = spec.synthesize(developer)
    for shard in plane.shards:
        print(f"Shard {shard.name}:",
              {d.domain_id: d.hardware_type.value for d in shard.domains})

    # --- client side: one session audits and uses the whole fleet ------------
    session = ServiceClient(plane, audit_policy="once")
    reports = session.audit()
    print(f"Audit passed on {len(reports)} shards "
          f"({sum(1 for rep in reports for r in rep.domain_results if r.attested)} "
          f"attested domains)")

    # --- use the application: requests route to shards by key ----------------
    message = b"hello, distributed trust"
    message_int = int.from_bytes(message, "big")
    shard_index = plane.shard_for(message)
    results = [
        session.invoke(message, domain_index, "bls_share",
                       [message_int, len(message), 123456789, BLS_SCALAR_ORDER])
        for domain_index in range(plane.domains_per_shard)
    ]
    values = {r["value"] for r in results}
    print(f"Key {message!r} routed to shard {shard_index}; "
          f"all {len(results)} of its trust domains computed the same "
          f"signature share: {len(values) == 1}")


if __name__ == "__main__":
    main()
