#!/usr/bin/env python3
"""Quickstart: bootstrap an auditable distributed-trust deployment in ~40 lines.

The flow mirrors the paper end to end:

1. the developer creates a signing identity and stands up trust domains on
   heterogeneous (simulated) secure hardware,
2. publishes an application release and pushes it as a signed update,
3. a client audits the deployment — attestation, digest logs, release log —
   and only then uses the application.

Run with:  python examples/quickstart.py
"""

from repro.core.client import AuditingClient
from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.package import CodePackage, DeveloperIdentity
from repro.crypto.bilinear import BLS_SCALAR_ORDER
from repro.sandbox.programs import bls_share_source


def main() -> None:
    # --- developer side -----------------------------------------------------
    developer = DeveloperIdentity("quickstart-developer")
    deployment = Deployment(
        "quickstart", developer,
        DeploymentConfig(num_domains=3),  # domain 0 = developer, 1 = Nitro-style, 2 = SGX-style
    )
    print("Trust domains:", {d.domain_id: d.hardware_type.value for d in deployment.domains})

    package = CodePackage(
        name="bls-custody",
        version="1.0.0",
        language="wvm",
        source=bls_share_source(),
    )
    manifest = deployment.publish_and_install(package)
    print(f"Published release {manifest.version} "
          f"(digest {manifest.package_digest.hex()[:16]}..., sequence {manifest.sequence})")

    # --- client side ---------------------------------------------------------
    client = AuditingClient(deployment.vendor_registry)
    report = client.audit_deployment(deployment)
    print(f"Audit passed: {report.ok} "
          f"({sum(1 for r in report.domain_results if r.attested)} attested domains, "
          f"release-log check: {report.checked_against_release_log})")

    # --- use the application -------------------------------------------------
    message = b"hello, distributed trust"
    message_int = int.from_bytes(message, "big")
    results = deployment.invoke_all(
        "bls_share", [message_int, len(message), 123456789, BLS_SCALAR_ORDER]
    )
    values = {r["value"] for r in results}
    print(f"All {len(results)} trust domains computed the same signature share: "
          f"{len(values) == 1}")


if __name__ == "__main__":
    main()
