"""Multi-client load runs on the service plane: batching, sharding, faults.

Three sweeps, all through `repro.sim.MultiClientWorkload` (which drives the
apps' public clients over the simulated network):

1. the batched pipeline vs the one-RPC-per-op seed path, per app;
2. horizontal sharding: the same batched workload at 1 vs 4 shards with a
   serial per-request service time on every trust domain, compared in
   *simulated* throughput (the deterministic capacity number — see
   docs/architecture.md for why wall-clock cannot show shard parallelism);
3. load composed with fault rules from the PR-1 scenario taxonomy.

Run with::

    PYTHONPATH=src python examples/load_test.py
"""

from repro.sim import MultiClientWorkload
from repro.sim.faults import DropFault, DuplicateFault, ReorderFault

# Small enough to finish in seconds; BENCH_throughput.json is the real
# baseline (benchmarks/test_throughput.py measures with bigger counts).
OPS = {"keybackup": 100, "prio": 200, "threshold_sign": 6, "odoh": 40}

# The sharded sweep matches the benchmark's capacity model: 500 µs of serial
# service time per request makes each domain a busy-until queue, which is
# what sharding parallelizes.
SHARDED_APPS = ("keybackup", "prio")
SERVICE_TIME = 500e-6


def main() -> None:
    print("=" * 64)
    print("multi-client load: batched pipeline vs one-RPC-per-op seed path")
    print("=" * 64)
    for app, ops in OPS.items():
        reports = {}
        for batched in (False, True):
            reports[batched] = MultiClientWorkload(
                app, num_clients=ops, ops_per_client=1,
                batched=batched, rpc_attempts=1,
            ).run()
        speedup = reports[True].ops_per_sec / max(reports[False].ops_per_sec, 1e-9)
        for report in reports.values():
            print(report.format())
        print(f"  => batched speedup: {speedup:.2f}x wall, "
              f"{reports[True].sim_ops_per_sec / reports[False].sim_ops_per_sec:.1f}x sim")
        print("-" * 64)

    print("horizontal sharding: 4 shards vs 1, simulated aggregate throughput")
    for app in SHARDED_APPS:
        reports = {}
        for shards in (1, 4):
            reports[shards] = MultiClientWorkload(
                app, num_clients=OPS[app], ops_per_client=1, batched=True,
                shards=shards, service_time=SERVICE_TIME, rpc_attempts=1,
            ).run()
            print(reports[shards].format())
        scaling = reports[4].sim_ops_per_sec / reports[1].sim_ops_per_sec
        print(f"  => shard scaling: {scaling:.2f}x sim throughput at 4 shards")
        print("-" * 64)

    print("load + faults: 5% loss, duplication, reordering, 300 prio clients")
    faulty = MultiClientWorkload(
        "prio", num_clients=300, ops_per_client=1, batched=True,
        rules=(DropFault(probability=0.05),
               DuplicateFault(probability=0.2, copies=1),
               ReorderFault(probability=0.3, max_delay_s=0.01)),
        rpc_attempts=5,
    ).run()
    print(faulty.format())


if __name__ == "__main__":
    main()
