"""Multi-client load runs: the batched pipeline vs the seed path, with faults.

Drives every application with the multi-client workload harness and prints a
throughput report per mode, then composes a load run with fault rules from the
PR-1 scenario taxonomy to show that volume and adversarial conditions stack.

Run with::

    PYTHONPATH=src python examples/load_test.py
"""

from repro.sim import MultiClientWorkload
from repro.sim.faults import DropFault, DuplicateFault, ReorderFault

# Small enough to finish in seconds; BENCH_throughput.json is the real
# baseline (benchmarks/test_throughput.py measures with bigger counts).
OPS = {"keybackup": 100, "prio": 200, "threshold_sign": 6, "odoh": 40}


def main() -> None:
    print("=" * 64)
    print("multi-client load: batched pipeline vs one-RPC-per-op seed path")
    print("=" * 64)
    for app, ops in OPS.items():
        reports = {}
        for batched in (False, True):
            reports[batched] = MultiClientWorkload(
                app, num_clients=ops, ops_per_client=1,
                batched=batched, rpc_attempts=1,
            ).run()
        speedup = reports[True].ops_per_sec / max(reports[False].ops_per_sec, 1e-9)
        for report in reports.values():
            print(report.format())
        print(f"  => batched speedup: {speedup:.2f}x")
        print("-" * 64)

    print("load + faults: 5% loss, duplication, reordering, 300 prio clients")
    faulty = MultiClientWorkload(
        "prio", num_clients=300, ops_per_client=1, batched=True,
        rules=(DropFault(probability=0.05),
               DuplicateFault(probability=0.2, copies=1),
               ReorderFault(probability=0.3, max_delay_s=0.01)),
        rpc_attempts=5,
    ).run()
    print(faulty.format())


if __name__ == "__main__":
    main()
