#!/usr/bin/env python3
"""Oblivious DNS with a framework-bootstrapped proxy/resolver pair (§2).

Queries travel client → proxy → resolver. The proxy learns only that *someone*
asked *something* (it forwards opaque ciphertext); the resolver learns the
query but not who sent it. Both roles are trust domains the client can audit.

Run with:  python examples/oblivious_dns.py
"""

from repro.apps.odoh import ObliviousDnsClient, ObliviousDnsDeployment
from repro.sim.workload import WorkloadGenerator
from repro.wire.codec import encode


def main() -> None:
    records = {
        "mail.example.com": "192.0.2.53",
        "www.example.com": "192.0.2.80",
        "vpn.example.com": "192.0.2.443",
    }
    service = ObliviousDnsDeployment(records=records)
    client = ObliviousDnsClient(service)
    client.audit()
    print("Proxy and resolver domains audited. ✔")

    for name in ["www.example.com", "vpn.example.com", "does-not-exist.example.com"]:
        response = client.resolve(name)
        print(f"resolve({name!r}) -> found={response.found} address={response.address}")

    workload = WorkloadGenerator(seed=3)
    for name in workload.dns_queries(20):
        client.resolve(name)

    proxy_state = service.deployment.domains[0].framework._python_sandbox.state
    leaked = any(name.encode() in encode(proxy_state) for name in records)
    print(f"\nProxy forwarded {service.proxy_observations()['forwarded']} queries, "
          f"resolver answered {service.resolver_observations()['resolved']}")
    print(f"Any query name visible in the proxy's state: {leaked}")
    assert not leaked
    print("The proxy never learns what was asked; the resolver never learns who asked. ✔")


if __name__ == "__main__":
    main()
