"""Unit and property tests for BLS signatures and the threshold scheme."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bilinear import BilinearGroup, G1Element, G2Element, GTElement
from repro.crypto.bls import (
    BlsSignature,
    BlsThresholdScheme,
    bls_aggregate,
    bls_aggregate_verify,
    bls_keygen,
    bls_sign,
    bls_verify,
)
from repro.errors import CryptoError, InvalidPointError, ThresholdError

GROUP = BilinearGroup()


class TestBilinearGroup:
    def test_pairing_bilinearity(self):
        g1, g2 = GROUP.g1_generator(), GROUP.g2_generator()
        a, b = 12345, 67890
        left = GROUP.pairing(GROUP.multiply(g1, a), GROUP.multiply(g2, b))
        right = GROUP.multiply(GROUP.pairing(g1, g2), a * b)
        assert left == right

    def test_pairing_identity(self):
        assert GROUP.pairing(GROUP.g1_identity(), GROUP.g2_generator()) == GROUP.gt_identity()

    def test_pairing_type_checks(self):
        with pytest.raises(CryptoError):
            GROUP.pairing(GROUP.g2_generator(), GROUP.g2_generator())

    def test_add_different_groups_rejected(self):
        with pytest.raises(CryptoError):
            GROUP.add(GROUP.g1_generator(), GROUP.g2_generator())

    def test_negate(self):
        element = GROUP.multiply(GROUP.g1_generator(), 555)
        assert GROUP.add(element, GROUP.negate(element)) == GROUP.g1_identity()

    def test_hash_to_g1_deterministic_and_distinct(self):
        assert GROUP.hash_to_g1(b"a") == GROUP.hash_to_g1(b"a")
        assert GROUP.hash_to_g1(b"a") != GROUP.hash_to_g1(b"b")

    def test_serialization_round_trip(self):
        for element in (
            GROUP.multiply(GROUP.g1_generator(), 7),
            GROUP.multiply(GROUP.g2_generator(), 8),
            GROUP.pairing(GROUP.g1_generator(), GROUP.g2_generator()),
        ):
            assert GROUP.element_from_bytes(element.to_bytes()) == element

    def test_serialization_length(self):
        assert len(GROUP.g1_generator().to_bytes()) == 48

    def test_deserialize_bad_length(self):
        with pytest.raises(InvalidPointError):
            GROUP.element_from_bytes(b"\x00" * 10)

    def test_deserialize_bad_tag(self):
        data = b"XX\x00\x00" + b"\x00" * 44
        with pytest.raises(InvalidPointError):
            GROUP.element_from_bytes(data)

    def test_serialization_does_not_expose_exponent(self):
        element = GROUP.multiply(GROUP.g1_generator(), 3)
        assert (3).to_bytes(44, "big") not in element.to_bytes()

    def test_multi_pairing_matches_products(self):
        pairs = [
            (GROUP.multiply(GROUP.g1_generator(), 3), GROUP.multiply(GROUP.g2_generator(), 5)),
            (GROUP.multiply(GROUP.g1_generator(), 7), GROUP.multiply(GROUP.g2_generator(), 11)),
        ]
        expected = GROUP.multiply(GROUP.pairing(GROUP.g1_generator(), GROUP.g2_generator()), 3 * 5 + 7 * 11)
        assert GROUP.multi_pairing(pairs) == expected

    def test_random_scalar_in_range(self):
        for _ in range(10):
            assert 1 <= GROUP.random_scalar() < GROUP.order


class TestPlainBls:
    def test_sign_verify(self):
        keypair = bls_keygen()
        signature = bls_sign(keypair.secret_key, b"hello")
        assert bls_verify(keypair.public_key, b"hello", signature)

    def test_wrong_message_fails(self):
        keypair = bls_keygen()
        assert not bls_verify(keypair.public_key, b"x", bls_sign(keypair.secret_key, b"y"))

    def test_wrong_key_fails(self):
        keypair, other = bls_keygen(), bls_keygen()
        assert not bls_verify(other.public_key, b"m", bls_sign(keypair.secret_key, b"m"))

    def test_deterministic_keygen_from_seed(self):
        assert bls_keygen(b"seed").secret_key == bls_keygen(b"seed").secret_key

    def test_signature_serialization(self):
        keypair = bls_keygen()
        signature = bls_sign(keypair.secret_key, b"m")
        assert BlsSignature.from_bytes(signature.to_bytes()) == signature

    def test_signature_from_wrong_group_rejected(self):
        with pytest.raises(CryptoError):
            BlsSignature.from_bytes(GROUP.g2_generator().to_bytes())

    def test_aggregate_same_message(self):
        keypairs = [bls_keygen() for _ in range(3)]
        messages = [b"m0", b"m1", b"m2"]
        signatures = [bls_sign(kp.secret_key, m) for kp, m in zip(keypairs, messages)]
        aggregate = bls_aggregate(signatures)
        assert bls_aggregate_verify([kp.public_key for kp in keypairs], messages, aggregate)

    def test_aggregate_verify_rejects_wrong_message(self):
        keypairs = [bls_keygen() for _ in range(2)]
        signatures = [bls_sign(kp.secret_key, b"m") for kp in keypairs]
        aggregate = bls_aggregate(signatures)
        assert not bls_aggregate_verify(
            [kp.public_key for kp in keypairs], [b"m", b"other"], aggregate
        )

    def test_aggregate_empty_rejected(self):
        with pytest.raises(CryptoError):
            bls_aggregate([])

    def test_aggregate_verify_length_mismatch(self):
        keypair = bls_keygen()
        signature = bls_sign(keypair.secret_key, b"m")
        assert not bls_aggregate_verify([keypair.public_key], [], signature)


class TestThresholdBls:
    def test_threshold_sign_and_verify(self):
        scheme = BlsThresholdScheme(3, 5)
        public_key, shares = scheme.keygen()
        partials = [scheme.sign_share(s, b"tx") for s in shares]
        signature = scheme.combine(partials[:3])
        assert scheme.verify(public_key, b"tx", signature)

    def test_any_threshold_subset_combines_to_same_signature(self):
        scheme = BlsThresholdScheme(2, 4)
        public_key, shares = scheme.keygen(seed=b"deterministic")
        partials = [scheme.sign_share(s, b"m") for s in shares]
        first = scheme.combine([partials[0], partials[1]])
        second = scheme.combine([partials[2], partials[3]])
        third = scheme.combine([partials[1], partials[3]])
        assert first == second == third
        assert scheme.verify(public_key, b"m", first)

    def test_threshold_matches_dealer_signature(self):
        """Combining shares equals signing with the (never-assembled) master key."""
        scheme = BlsThresholdScheme(2, 3)
        keypair = bls_keygen(b"fixed")
        from repro.crypto.field import PrimeField
        from repro.crypto.bilinear import BLS_SCALAR_ORDER
        from repro.crypto.shamir import ShamirSecretSharing

        sharing = ShamirSecretSharing(2, 3, PrimeField(BLS_SCALAR_ORDER, unsafe_skip_check=True))
        shares = sharing.split(keypair.secret_key)
        partials = [scheme.sign_share(s, b"m") for s in shares]
        combined = scheme.combine(partials[:2])
        assert combined == bls_sign(keypair.secret_key, b"m")

    def test_too_few_shares_rejected(self):
        scheme = BlsThresholdScheme(3, 5)
        _, shares = scheme.keygen()
        partials = [scheme.sign_share(s, b"m") for s in shares[:2]]
        with pytest.raises(ThresholdError):
            scheme.combine(partials)

    def test_duplicate_signer_rejected(self):
        scheme = BlsThresholdScheme(2, 3)
        _, shares = scheme.keygen()
        partial = scheme.sign_share(shares[0], b"m")
        with pytest.raises(CryptoError):
            scheme.combine([partial, partial])

    def test_share_verification(self):
        scheme = BlsThresholdScheme(2, 3)
        _, shares = scheme.keygen()
        partial = scheme.sign_share(shares[0], b"m")
        share_pk = scheme.public_key_share(shares[0])
        assert scheme.verify_share(share_pk, b"m", partial)
        assert not scheme.verify_share(share_pk, b"other", partial)

    def test_corrupted_partial_detected_by_share_verification(self):
        scheme = BlsThresholdScheme(2, 3)
        _, shares = scheme.keygen()
        good = scheme.sign_share(shares[0], b"m")
        bad = scheme.sign_share(shares[1], b"tampered")
        share_pk = scheme.public_key_share(shares[0])
        assert scheme.verify_share(share_pk, b"m", good)
        assert not scheme.verify_share(share_pk, b"m", bad)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CryptoError):
            BlsThresholdScheme(0, 3)
        with pytest.raises(CryptoError):
            BlsThresholdScheme(4, 3)

    def test_combined_signature_fails_on_other_message(self):
        scheme = BlsThresholdScheme(2, 3)
        public_key, shares = scheme.keygen()
        partials = [scheme.sign_share(s, b"m") for s in shares]
        signature = scheme.combine(partials[:2])
        assert not scheme.verify(public_key, b"other", signature)


@settings(max_examples=20, deadline=None)
@given(
    message=st.binary(min_size=0, max_size=64),
    threshold=st.integers(min_value=1, max_value=5),
    extra=st.integers(min_value=0, max_value=3),
)
def test_property_threshold_round_trip(message, threshold, extra):
    scheme = BlsThresholdScheme(threshold, threshold + extra)
    public_key, shares = scheme.keygen()
    partials = [scheme.sign_share(s, message) for s in shares]
    signature = scheme.combine(partials[:threshold])
    assert scheme.verify(public_key, message, signature)
