"""Unit tests for the per-TEE hash-chain log primitive."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashchain import GENESIS_HEAD, ChainEntry, HashChain
from repro.errors import LogError


class TestHashChainBasics:
    def test_empty_chain_head_is_genesis(self):
        assert HashChain().head() == GENESIS_HEAD

    def test_append_changes_head(self):
        chain = HashChain()
        first_head = chain.head()
        chain.append(b"digest-1")
        assert chain.head() != first_head

    def test_entries_link_correctly(self):
        chain = HashChain()
        for i in range(5):
            chain.append(f"digest-{i}".encode())
        entries = chain.entries()
        assert HashChain.verify_entries(entries)
        assert entries[0].previous_head == GENESIS_HEAD
        for previous, current in zip(entries, entries[1:]):
            assert current.previous_head == previous.head

    def test_len_and_iteration(self):
        chain = HashChain()
        chain.append(b"a")
        chain.append(b"b")
        assert len(chain) == 2
        assert [e.payload for e in chain] == [b"a", b"b"]

    def test_entry_access(self):
        chain = HashChain()
        chain.append(b"a")
        assert chain.entry(0).payload == b"a"
        with pytest.raises(LogError):
            chain.entry(5)

    def test_entries_range(self):
        chain = HashChain()
        for i in range(4):
            chain.append(bytes([i]))
        assert [e.payload for e in chain.entries(1, 3)] == [b"\x01", b"\x02"]
        with pytest.raises(LogError):
            chain.entries(3, 1)

    def test_payloads(self):
        chain = HashChain()
        chain.append(b"x")
        chain.append(b"y")
        assert chain.payloads() == [b"x", b"y"]


class TestChainVerification:
    def test_verify_entries_accepts_valid_chain(self):
        chain = HashChain()
        for i in range(10):
            chain.append(bytes([i]))
        assert HashChain.verify_entries(chain.entries())

    def test_verify_entries_detects_tampered_payload(self):
        chain = HashChain()
        chain.append(b"good")
        chain.append(b"also good")
        entries = chain.entries()
        tampered = [
            ChainEntry(entries[0].index, b"evil", entries[0].previous_head, entries[0].head),
            entries[1],
        ]
        assert not HashChain.verify_entries(tampered)

    def test_verify_entries_detects_reordering(self):
        chain = HashChain()
        chain.append(b"a")
        chain.append(b"b")
        entries = list(reversed(chain.entries()))
        assert not HashChain.verify_entries(entries)

    def test_verify_entries_detects_removal(self):
        chain = HashChain()
        for i in range(3):
            chain.append(bytes([i]))
        entries = chain.entries()
        assert not HashChain.verify_entries([entries[0], entries[2]])

    def test_verify_entries_detects_wrong_genesis(self):
        chain = HashChain()
        chain.append(b"a")
        assert not HashChain.verify_entries(chain.entries(), genesis=b"\x00" * 32)

    def test_verify_extension_accepts_growth(self):
        chain = HashChain()
        chain.append(b"a")
        old = chain.entries()
        chain.append(b"b")
        assert HashChain.verify_extension(old, chain.entries())

    def test_verify_extension_detects_rewrite(self):
        chain_a = HashChain()
        chain_a.append(b"a")
        chain_b = HashChain()
        chain_b.append(b"rewritten")
        chain_b.append(b"b")
        assert not HashChain.verify_extension(chain_a.entries(), chain_b.entries())

    def test_verify_extension_detects_truncation(self):
        chain = HashChain()
        chain.append(b"a")
        chain.append(b"b")
        long_view = chain.entries()
        assert not HashChain.verify_extension(long_view, long_view[:1])

    def test_entry_verify_link(self):
        chain = HashChain()
        entry = chain.append(b"payload")
        assert entry.verify_link()
        forged = ChainEntry(entry.index, b"other", entry.previous_head, entry.head)
        assert not forged.verify_link()


@settings(max_examples=30, deadline=None)
@given(payloads=st.lists(st.binary(min_size=0, max_size=64), min_size=0, max_size=30))
def test_property_chains_always_verify(payloads):
    chain = HashChain()
    for payload in payloads:
        chain.append(payload)
    assert HashChain.verify_entries(chain.entries())


@settings(max_examples=30, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=15),
    data=st.data(),
)
def test_property_any_single_bit_tamper_detected(payloads, data):
    chain = HashChain()
    for payload in payloads:
        chain.append(payload)
    entries = chain.entries()
    victim = data.draw(st.integers(min_value=0, max_value=len(entries) - 1))
    byte_index = data.draw(st.integers(min_value=0, max_value=len(entries[victim].payload) - 1))
    tampered_payload = bytearray(entries[victim].payload)
    tampered_payload[byte_index] ^= 0x01
    entries[victim] = ChainEntry(
        entries[victim].index,
        bytes(tampered_payload),
        entries[victim].previous_head,
        entries[victim].head,
    )
    assert not HashChain.verify_entries(entries)
