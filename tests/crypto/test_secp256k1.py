"""Unit tests for secp256k1 group arithmetic and point serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.secp256k1 import INFINITY, SECP256K1, Point
from repro.errors import InvalidPointError

G = SECP256K1.generator
N = SECP256K1.n


class TestCurveBasics:
    def test_generator_on_curve(self):
        assert SECP256K1.is_on_curve(G)

    def test_infinity_on_curve(self):
        assert SECP256K1.is_on_curve(INFINITY)

    def test_generator_has_group_order(self):
        assert SECP256K1.multiply(G, N).is_infinity

    def test_off_curve_point_detected(self):
        assert not SECP256K1.is_on_curve(Point(1, 1))


class TestGroupLaw:
    def test_identity_addition(self):
        assert SECP256K1.add(G, INFINITY) == G
        assert SECP256K1.add(INFINITY, G) == G

    def test_point_plus_negation_is_infinity(self):
        assert SECP256K1.add(G, SECP256K1.negate(G)).is_infinity

    def test_doubling_matches_scalar_two(self):
        assert SECP256K1.add(G, G) == SECP256K1.multiply(G, 2)

    def test_addition_commutes(self):
        p = SECP256K1.multiply(G, 7)
        q = SECP256K1.multiply(G, 11)
        assert SECP256K1.add(p, q) == SECP256K1.add(q, p)

    def test_addition_associates(self):
        p = SECP256K1.multiply(G, 3)
        q = SECP256K1.multiply(G, 5)
        r = SECP256K1.multiply(G, 9)
        left = SECP256K1.add(SECP256K1.add(p, q), r)
        right = SECP256K1.add(p, SECP256K1.add(q, r))
        assert left == right

    def test_scalar_multiplication_distributes(self):
        a, b = 123456789, 987654321
        left = SECP256K1.generator_multiply(a + b)
        right = SECP256K1.add(
            SECP256K1.generator_multiply(a), SECP256K1.generator_multiply(b)
        )
        assert left == right

    def test_multiply_by_zero_is_infinity(self):
        assert SECP256K1.multiply(G, 0).is_infinity

    def test_multiply_infinity(self):
        assert SECP256K1.multiply(INFINITY, 12345).is_infinity

    def test_multiply_reduces_scalar_mod_n(self):
        assert SECP256K1.multiply(G, N + 5) == SECP256K1.multiply(G, 5)

    def test_negate_infinity(self):
        assert SECP256K1.negate(INFINITY).is_infinity


class TestSerialization:
    def test_compressed_round_trip(self):
        point = SECP256K1.generator_multiply(424242)
        encoded = SECP256K1.encode_point(point, compressed=True)
        assert len(encoded) == 33
        assert SECP256K1.decode_point(encoded) == point

    def test_uncompressed_round_trip(self):
        point = SECP256K1.generator_multiply(99)
        encoded = SECP256K1.encode_point(point, compressed=False)
        assert len(encoded) == 65
        assert SECP256K1.decode_point(encoded) == point

    def test_infinity_round_trip(self):
        assert SECP256K1.decode_point(SECP256K1.encode_point(INFINITY)).is_infinity

    def test_reject_empty(self):
        with pytest.raises(InvalidPointError):
            SECP256K1.decode_point(b"")

    def test_reject_bad_prefix(self):
        with pytest.raises(InvalidPointError):
            SECP256K1.decode_point(b"\x09" + b"\x01" * 32)

    def test_reject_bad_length(self):
        with pytest.raises(InvalidPointError):
            SECP256K1.decode_point(b"\x02" + b"\x01" * 10)

    def test_reject_not_on_curve_x(self):
        # x = 5 is a valid coordinate; craft an uncompressed point with wrong y.
        bad = b"\x04" + (5).to_bytes(32, "big") + (7).to_bytes(32, "big")
        with pytest.raises(InvalidPointError):
            SECP256K1.decode_point(bad)


@settings(max_examples=25, deadline=None)
@given(scalar=st.integers(min_value=1, max_value=N - 1))
def test_property_compressed_round_trip(scalar):
    point = SECP256K1.generator_multiply(scalar)
    assert SECP256K1.decode_point(SECP256K1.encode_point(point)) == point


@settings(max_examples=25, deadline=None)
@given(a=st.integers(min_value=1, max_value=N - 1), b=st.integers(min_value=1, max_value=N - 1))
def test_property_scalar_homomorphism(a, b):
    left = SECP256K1.generator_multiply(a * b % N)
    right = SECP256K1.multiply(SECP256K1.generator_multiply(a), b)
    assert left == right


class TestFixedBaseTable:
    def test_generator_table_matches_plain_multiply(self):
        for scalar in (1, 2, 3, 15, 16, 17, 0xDEADBEEF, N - 1, N + 5, 2**255 + 321):
            assert SECP256K1.generator_multiply(scalar) == SECP256K1.multiply(
                SECP256K1.generator, scalar
            )

    def test_zero_scalar_gives_infinity(self):
        assert SECP256K1.generator_multiply(0).is_infinity
        assert SECP256K1.generator_multiply(N).is_infinity

    def test_precomputed_arbitrary_point(self):
        from repro.crypto.secp256k1 import FixedBaseTable

        point = SECP256K1.generator_multiply(0x1234567)
        table = SECP256K1.precompute(point)
        for scalar in (1, 2, 255, 256, N - 2, 2**200 + 9):
            assert table.multiply(scalar) == SECP256K1.multiply(point, scalar)

    def test_window_widths_agree(self):
        from repro.crypto.secp256k1 import FixedBaseTable

        point = SECP256K1.generator
        scalar = 0xA5A5A5A5A5A5A5A5A5A5A5A5
        expected = SECP256K1.multiply(point, scalar)
        for window in (1, 2, 4, 6):
            assert FixedBaseTable(SECP256K1, point, window=window).multiply(scalar) == expected

    def test_rejects_bad_parameters(self):
        from repro.crypto.secp256k1 import INFINITY, FixedBaseTable
        from repro.errors import CryptoError

        with pytest.raises(CryptoError):
            FixedBaseTable(SECP256K1, SECP256K1.generator, window=0)
        with pytest.raises(CryptoError):
            FixedBaseTable(SECP256K1, INFINITY)


@settings(max_examples=25, deadline=None)
@given(scalar=st.integers(min_value=1, max_value=N - 1))
def test_property_table_multiply_matches_double_and_add(scalar):
    assert SECP256K1.generator_multiply(scalar) == SECP256K1.multiply(
        SECP256K1.generator, scalar
    )
