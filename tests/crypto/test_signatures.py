"""Unit tests for Schnorr and ECDSA signatures and key handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ecdsa import EcdsaSignature, ecdsa_sign, ecdsa_verify
from repro.crypto.keys import SigningKey, VerifyingKey, generate_keypair
from repro.crypto.schnorr import SchnorrSignature, schnorr_sign, schnorr_verify
from repro.errors import CryptoError


class TestKeys:
    def test_generate_keypair_round_trip(self):
        sk, vk = generate_keypair()
        assert sk.verifying_key() == vk

    def test_signing_key_bytes_round_trip(self):
        sk, _ = generate_keypair()
        assert SigningKey.from_bytes(sk.to_bytes()) == sk

    def test_verifying_key_bytes_round_trip(self):
        _, vk = generate_keypair()
        assert VerifyingKey.from_bytes(vk.to_bytes()) == vk

    def test_from_seed_deterministic(self):
        assert SigningKey.from_seed(b"seed") == SigningKey.from_seed(b"seed")
        assert SigningKey.from_seed(b"seed") != SigningKey.from_seed(b"other")

    def test_scalar_range_enforced(self):
        with pytest.raises(CryptoError):
            SigningKey(0)

    def test_from_bytes_wrong_length(self):
        with pytest.raises(CryptoError):
            SigningKey.from_bytes(b"\x01" * 31)

    def test_fingerprint_stable(self):
        _, vk = generate_keypair()
        assert vk.fingerprint() == vk.fingerprint()
        assert len(vk.fingerprint()) == 16

    def test_sign_verify_via_key_objects_schnorr(self):
        sk, vk = generate_keypair()
        signature = sk.sign(b"message")
        assert vk.verify(b"message", signature)
        assert not vk.verify(b"other", signature)

    def test_sign_verify_via_key_objects_ecdsa(self):
        sk, vk = generate_keypair()
        signature = sk.sign(b"message", scheme="ecdsa")
        assert vk.verify(b"message", signature, scheme="ecdsa")

    def test_unknown_scheme_rejected(self):
        sk, vk = generate_keypair()
        with pytest.raises(CryptoError):
            sk.sign(b"m", scheme="rsa")
        with pytest.raises(CryptoError):
            vk.verify(b"m", b"x" * 65, scheme="rsa")


class TestSchnorr:
    def test_sign_and_verify(self):
        sk, vk = generate_keypair()
        signature = schnorr_sign(sk, b"the quick brown fox")
        assert schnorr_verify(vk, b"the quick brown fox", signature)

    def test_wrong_message_fails(self):
        sk, vk = generate_keypair()
        signature = schnorr_sign(sk, b"a")
        assert not schnorr_verify(vk, b"b", signature)

    def test_wrong_key_fails(self):
        sk, _ = generate_keypair()
        _, other_vk = generate_keypair()
        signature = schnorr_sign(sk, b"a")
        assert not schnorr_verify(other_vk, b"a", signature)

    def test_deterministic_signatures(self):
        sk, _ = generate_keypair()
        assert schnorr_sign(sk, b"m").to_bytes() == schnorr_sign(sk, b"m").to_bytes()

    def test_serialization_round_trip(self):
        sk, vk = generate_keypair()
        signature = schnorr_sign(sk, b"m")
        restored = SchnorrSignature.from_bytes(signature.to_bytes())
        assert schnorr_verify(vk, b"m", restored)

    def test_bad_length_rejected(self):
        with pytest.raises(CryptoError):
            SchnorrSignature.from_bytes(b"\x00" * 10)

    def test_tampered_signature_fails(self):
        sk, vk = generate_keypair()
        raw = bytearray(schnorr_sign(sk, b"m").to_bytes())
        raw[40] ^= 0xFF
        assert not schnorr_verify(vk, b"m", SchnorrSignature.from_bytes(bytes(raw)))

    def test_garbage_r_bytes_fails_gracefully(self):
        _, vk = generate_keypair()
        signature = SchnorrSignature(b"\xff" * 33, 5)
        assert not schnorr_verify(vk, b"m", signature)

    def test_empty_message(self):
        sk, vk = generate_keypair()
        assert schnorr_verify(vk, b"", schnorr_sign(sk, b""))


class TestEcdsa:
    def test_sign_and_verify(self):
        sk, vk = generate_keypair()
        signature = ecdsa_sign(sk, b"transaction")
        assert ecdsa_verify(vk, b"transaction", signature)

    def test_wrong_message_fails(self):
        sk, vk = generate_keypair()
        assert not ecdsa_verify(vk, b"other", ecdsa_sign(sk, b"transaction"))

    def test_wrong_key_fails(self):
        sk, _ = generate_keypair()
        _, other_vk = generate_keypair()
        assert not ecdsa_verify(other_vk, b"m", ecdsa_sign(sk, b"m"))

    def test_low_s_normalization(self):
        from repro.crypto.secp256k1 import SECP256K1

        sk, _ = generate_keypair()
        for i in range(5):
            signature = ecdsa_sign(sk, bytes([i]))
            assert signature.s <= SECP256K1.n // 2

    def test_serialization_round_trip(self):
        sk, vk = generate_keypair()
        signature = ecdsa_sign(sk, b"m")
        assert ecdsa_verify(vk, b"m", EcdsaSignature.from_bytes(signature.to_bytes()))

    def test_bad_length_rejected(self):
        with pytest.raises(CryptoError):
            EcdsaSignature.from_bytes(b"\x00" * 63)

    def test_zero_components_rejected(self):
        _, vk = generate_keypair()
        assert not ecdsa_verify(vk, b"m", EcdsaSignature(0, 1))
        assert not ecdsa_verify(vk, b"m", EcdsaSignature(1, 0))

    def test_deterministic(self):
        sk, _ = generate_keypair()
        assert ecdsa_sign(sk, b"m") == ecdsa_sign(sk, b"m")


@settings(max_examples=15, deadline=None)
@given(message=st.binary(min_size=0, max_size=256))
def test_property_schnorr_round_trip(message):
    sk = SigningKey.from_seed(b"property-test-key")
    vk = sk.verifying_key()
    assert schnorr_verify(vk, message, schnorr_sign(sk, message))


@settings(max_examples=15, deadline=None)
@given(message=st.binary(min_size=0, max_size=256))
def test_property_ecdsa_round_trip(message):
    sk = SigningKey.from_seed(b"property-test-key-2")
    vk = sk.verifying_key()
    assert ecdsa_verify(vk, message, ecdsa_sign(sk, message))
