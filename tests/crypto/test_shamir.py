"""Unit and property tests for Shamir secret sharing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.errors import SecretSharingError, ThresholdError


class TestShamirBasics:
    def test_split_and_reconstruct_exact_threshold(self):
        scheme = ShamirSecretSharing(3, 5)
        shares = scheme.split(0xDEADBEEF)
        assert scheme.reconstruct(shares[:3]) == 0xDEADBEEF

    def test_reconstruct_from_any_subset(self):
        scheme = ShamirSecretSharing(2, 4)
        shares = scheme.split(42)
        for i in range(4):
            for j in range(i + 1, 4):
                assert scheme.reconstruct([shares[i], shares[j]]) == 42

    def test_reconstruct_with_extra_consistent_shares(self):
        scheme = ShamirSecretSharing(2, 5)
        shares = scheme.split(7)
        assert scheme.reconstruct(shares) == 7

    def test_byte_secret_round_trip(self):
        scheme = ShamirSecretSharing(3, 5)
        secret = b"\x01" * 31
        shares = scheme.split(secret)
        assert scheme.reconstruct_bytes(shares[:3], length=31) == secret

    def test_threshold_of_one(self):
        scheme = ShamirSecretSharing(1, 3)
        shares = scheme.split(123)
        # With threshold 1 every share is the secret itself.
        for share in shares:
            assert scheme.reconstruct([share]) == 123

    def test_full_threshold(self):
        scheme = ShamirSecretSharing(5, 5)
        shares = scheme.split(99)
        assert scheme.reconstruct(shares) == 99
        with pytest.raises(ThresholdError):
            scheme.reconstruct(shares[:4])

    def test_share_count(self):
        scheme = ShamirSecretSharing(2, 7)
        assert len(scheme.split(5)) == 7

    def test_share_indices_one_based(self):
        scheme = ShamirSecretSharing(2, 4)
        assert [s.index for s in scheme.split(5)] == [1, 2, 3, 4]


class TestShamirValidation:
    def test_too_few_shares_raises(self):
        scheme = ShamirSecretSharing(3, 5)
        shares = scheme.split(1)
        with pytest.raises(ThresholdError):
            scheme.reconstruct(shares[:2])

    def test_duplicate_shares_rejected(self):
        scheme = ShamirSecretSharing(2, 3)
        shares = scheme.split(1)
        with pytest.raises(SecretSharingError):
            scheme.reconstruct([shares[0], shares[0]])

    def test_out_of_range_index_rejected(self):
        scheme = ShamirSecretSharing(2, 3)
        shares = scheme.split(1)
        with pytest.raises(SecretSharingError):
            scheme.reconstruct([shares[0], Share(9, 123)])

    def test_inconsistent_extra_share_detected(self):
        scheme = ShamirSecretSharing(2, 4)
        shares = scheme.split(50)
        corrupted = shares[:2] + [Share(shares[2].index, (shares[2].value + 1))]
        with pytest.raises(SecretSharingError):
            scheme.reconstruct(corrupted)

    def test_invalid_parameters(self):
        with pytest.raises(SecretSharingError):
            ShamirSecretSharing(0, 3)
        with pytest.raises(SecretSharingError):
            ShamirSecretSharing(4, 3)

    def test_secret_too_large(self):
        scheme = ShamirSecretSharing(2, 3, PrimeField(101))
        with pytest.raises(SecretSharingError):
            scheme.split(500)

    def test_negative_secret_rejected(self):
        scheme = ShamirSecretSharing(2, 3)
        with pytest.raises(SecretSharingError):
            scheme.split(-1)

    def test_too_many_shares_for_small_field(self):
        with pytest.raises(SecretSharingError):
            ShamirSecretSharing(2, 200, PrimeField(101))


class TestShareSerialization:
    def test_round_trip(self):
        share = Share(3, 123456)
        assert Share.from_bytes(share.to_bytes()) == share

    def test_bad_length_rejected(self):
        with pytest.raises(SecretSharingError):
            Share.from_bytes(b"\x00" * 5)


class TestSecrecyStructure:
    def test_fewer_than_threshold_shares_do_not_determine_secret(self):
        """With t-1 shares, every candidate secret remains algebraically possible."""
        field = PrimeField(101)
        scheme = ShamirSecretSharing(2, 3, field)
        shares = scheme.split(17)
        single = shares[0]
        # For any candidate secret c there exists a degree-1 polynomial through
        # (0, c) and (single.index, single.value) — so one share reveals nothing.
        for candidate in range(101):
            slope = (field(single.value) - field(candidate)) / field(single.index)
            assert field(candidate) + slope * field(single.index) == field(single.value)


@settings(max_examples=30, deadline=None)
@given(
    secret=st.integers(min_value=0, max_value=2**255),
    threshold=st.integers(min_value=1, max_value=6),
    extra=st.integers(min_value=0, max_value=4),
)
def test_property_split_reconstruct(secret, threshold, extra):
    scheme = ShamirSecretSharing(threshold, threshold + extra)
    shares = scheme.split(secret)
    assert scheme.reconstruct(shares[:threshold]) == secret


@settings(max_examples=20, deadline=None)
@given(secret=st.integers(min_value=0, max_value=2**200), data=st.data())
def test_property_any_threshold_subset_reconstructs(secret, data):
    scheme = ShamirSecretSharing(3, 6)
    shares = scheme.split(secret)
    subset = data.draw(st.permutations(shares))[:3]
    assert scheme.reconstruct(subset) == secret


class TestShareEncodingErrors:
    def test_oversized_value_raises_secret_sharing_error(self):
        from repro.errors import SecretSharingError

        share = Share(1, 2**300)
        with pytest.raises(SecretSharingError):
            share.to_bytes(byte_length=32)

    def test_oversized_index_raises_secret_sharing_error(self):
        from repro.errors import SecretSharingError

        share = Share(2**40, 7)
        with pytest.raises(SecretSharingError):
            share.to_bytes()

    def test_fitting_share_still_round_trips(self):
        share = Share(3, 2**255 - 19)
        assert Share.from_bytes(share.to_bytes()) == share


class TestBatchEvaluation:
    def test_horner_evaluate_many_matches_single_evaluation(self):
        from repro.crypto.shamir import horner_evaluate_many

        modulus = 2**61 - 1
        coefficients = [12345, 678, 910, 11, 213141]
        xs = list(range(1, 40))
        expected = [
            sum(c * pow(x, k, modulus) for k, c in enumerate(coefficients)) % modulus
            for x in xs
        ]
        assert horner_evaluate_many(coefficients, xs, modulus) == expected

    def test_split_many_round_trips_each_secret(self):
        scheme = ShamirSecretSharing(3, 5)
        secrets_list = [0, 1, 2**200 + 17, 999]
        share_lists = scheme.split_many(secrets_list)
        assert len(share_lists) == len(secrets_list)
        for secret, shares in zip(secrets_list, share_lists):
            assert scheme.reconstruct(shares[:3]) == secret

    def test_split_many_uses_independent_polynomials(self):
        scheme = ShamirSecretSharing(2, 3)
        first, second = scheme.split_many([42, 42])
        assert [s.value for s in first] != [s.value for s in second]

    def test_reconstruct_with_extra_shares_still_checks_consistency(self):
        scheme = ShamirSecretSharing(2, 4)
        shares = scheme.split(777)
        assert scheme.reconstruct(shares) == 777
        from repro.errors import SecretSharingError

        tampered = shares[:2] + [Share(shares[2].index, shares[2].value + 1)]
        with pytest.raises(SecretSharingError):
            scheme.reconstruct(tampered)
