"""Unit tests for Feldman verifiable secret sharing."""

import pytest

from repro.crypto.feldman import FeldmanShare, FeldmanVSS
from repro.crypto.secp256k1 import SECP256K1
from repro.crypto.shamir import Share
from repro.errors import SecretSharingError


class TestFeldmanSharing:
    def test_split_reconstruct(self):
        vss = FeldmanVSS(3, 5)
        shares = vss.split(0xC0FFEE)
        assert vss.reconstruct(shares[:3]) == 0xC0FFEE

    def test_all_shares_verify(self):
        vss = FeldmanVSS(2, 4)
        for share in vss.split(12345):
            assert vss.verify_share(share)

    def test_commitment_count_equals_threshold(self):
        vss = FeldmanVSS(4, 6)
        shares = vss.split(1)
        assert all(len(s.commitments) == 4 for s in shares)

    def test_tampered_share_fails_verification(self):
        vss = FeldmanVSS(2, 3)
        shares = vss.split(77)
        bad = FeldmanShare(Share(shares[0].share.index, shares[0].share.value + 1),
                           shares[0].commitments)
        assert not vss.verify_share(bad)

    def test_tampered_share_rejected_during_reconstruct(self):
        vss = FeldmanVSS(2, 3)
        shares = vss.split(77)
        bad = FeldmanShare(Share(shares[0].share.index, shares[0].share.value + 1),
                           shares[0].commitments)
        with pytest.raises(SecretSharingError):
            vss.reconstruct([bad, shares[1]])

    def test_reconstruct_without_verification_accepts_raw_shares(self):
        vss = FeldmanVSS(2, 3)
        shares = vss.split(55)
        assert vss.reconstruct(shares[:2], verify=False) == 55

    def test_public_commitment_is_g_to_secret(self):
        vss = FeldmanVSS(2, 3)
        secret = 424242
        shares = vss.split(secret)
        expected = SECP256K1.encode_point(SECP256K1.generator_multiply(secret))
        assert vss.public_commitment(shares) == expected

    def test_public_commitment_requires_shares(self):
        vss = FeldmanVSS(2, 3)
        with pytest.raises(SecretSharingError):
            vss.public_commitment([])

    def test_empty_commitments_fail_verification(self):
        vss = FeldmanVSS(2, 3)
        assert not vss.verify_share(FeldmanShare(Share(1, 5), tuple()))


class TestFeldmanSerialization:
    def test_round_trip(self):
        vss = FeldmanVSS(3, 4)
        original = vss.split(909)[2]
        restored = FeldmanShare.from_bytes(original.to_bytes())
        assert restored == original
        assert vss.verify_share(restored)

    def test_truncated_encoding_rejected(self):
        with pytest.raises(SecretSharingError):
            FeldmanShare.from_bytes(b"\x00" * 10)

    def test_truncated_commitments_rejected(self):
        vss = FeldmanVSS(2, 3)
        encoded = vss.split(1)[0].to_bytes()
        with pytest.raises(SecretSharingError):
            FeldmanShare.from_bytes(encoded[:40])


class TestBatchVerification:
    def test_verify_shares_matches_individual_verification(self):
        vss = FeldmanVSS(3, 10)
        shares = vss.split(123456789)
        assert vss.verify_shares(shares) == [True] * 10

    def test_tampered_share_flagged_in_batch(self):
        from repro.crypto.shamir import Share

        vss = FeldmanVSS(2, 9)
        shares = vss.split(42)
        bad = FeldmanShare(Share(shares[3].share.index, shares[3].share.value + 1),
                           shares[3].commitments)
        batch = shares[:3] + [bad] + shares[4:]
        verdicts = vss.verify_shares(batch)
        assert verdicts[3] is False
        assert sum(verdicts) == len(batch) - 1

    def test_small_batch_skips_precomputation_but_agrees(self):
        vss = FeldmanVSS(2, 3)
        shares = vss.split(7)
        assert vss.verify_shares(shares) == [True, True, True]

    def test_mixed_dealings_rejected(self):
        from repro.errors import SecretSharingError

        vss = FeldmanVSS(2, 3)
        first = vss.split(1)
        second = vss.split(2)
        with pytest.raises(SecretSharingError):
            vss.verify_shares([first[0], second[1]])

    def test_empty_batch(self):
        assert FeldmanVSS(2, 3).verify_shares([]) == []
