"""Edge-case tests for secret sharing and field arithmetic.

The scenario engine's safety claims lean on these exact boundaries: ``t``
shares reconstruct, ``t - 1`` reveal nothing (and are refused), duplicated
shares are rejected rather than silently skewing reconstruction, and field
arithmetic behaves at the modulus boundaries.
"""

import pytest

from repro.crypto.feldman import FeldmanShare, FeldmanVSS
from repro.crypto.field import FieldElement, PrimeField, lagrange_interpolate_at_zero
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.errors import CryptoError, SecretSharingError, ThresholdError


class TestShamirThresholdBoundaries:
    def test_exactly_t_shares_reconstruct(self):
        scheme = ShamirSecretSharing(3, 5)
        shares = scheme.split(0xDEADBEEF)
        for subset in (shares[:3], shares[2:5], [shares[0], shares[2], shares[4]]):
            assert scheme.reconstruct(subset) == 0xDEADBEEF

    def test_t_minus_one_shares_refused(self):
        scheme = ShamirSecretSharing(3, 5)
        shares = scheme.split(42)
        with pytest.raises(ThresholdError):
            scheme.reconstruct(shares[:2])

    def test_duplicated_share_rejected(self):
        scheme = ShamirSecretSharing(3, 5)
        shares = scheme.split(42)
        with pytest.raises(SecretSharingError, match="duplicate"):
            scheme.reconstruct([shares[0], shares[0], shares[1]])

    def test_duplicate_not_counted_toward_threshold(self):
        """Three shares where two are copies must not reconstruct."""
        scheme = ShamirSecretSharing(3, 5)
        shares = scheme.split(42)
        duplicated = [shares[0], Share(shares[0].index, shares[0].value), shares[1]]
        with pytest.raises(SecretSharingError):
            scheme.reconstruct(duplicated)

    def test_out_of_range_index_rejected(self):
        scheme = ShamirSecretSharing(2, 3)
        shares = scheme.split(7)
        with pytest.raises(SecretSharingError, match="out of range"):
            scheme.reconstruct([shares[0], Share(9, 123)])

    def test_tampered_extra_share_detected(self):
        scheme = ShamirSecretSharing(2, 4)
        shares = scheme.split(99)
        tampered = Share(shares[3].index, (shares[3].value + 1) % scheme.field.modulus)
        with pytest.raises(SecretSharingError, match="inconsistent"):
            scheme.reconstruct([shares[0], shares[1], tampered])

    def test_threshold_one(self):
        scheme = ShamirSecretSharing(1, 3)
        shares = scheme.split(5)
        assert scheme.reconstruct([shares[2]]) == 5

    def test_secret_at_field_boundary(self):
        scheme = ShamirSecretSharing(2, 3)
        top = scheme.field.modulus - 1
        assert scheme.reconstruct(scheme.split(top)[:2]) == top
        with pytest.raises(SecretSharingError):
            scheme.split(scheme.field.modulus)


class TestFeldmanThresholdBoundaries:
    def test_exactly_t_verified_shares_reconstruct(self):
        vss = FeldmanVSS(3, 5)
        shares = vss.split(0xC0FFEE)
        assert all(vss.verify_share(s) for s in shares)
        assert vss.reconstruct(shares[:3]) == 0xC0FFEE

    def test_t_minus_one_refused(self):
        vss = FeldmanVSS(3, 5)
        shares = vss.split(7)
        with pytest.raises(ThresholdError):
            vss.reconstruct(shares[:2])

    def test_duplicated_share_rejected(self):
        vss = FeldmanVSS(2, 4)
        shares = vss.split(7)
        with pytest.raises(SecretSharingError):
            vss.reconstruct([shares[0], shares[0]])

    def test_tampered_share_fails_verification(self):
        vss = FeldmanVSS(2, 3)
        shares = vss.split(1234)
        bad = FeldmanShare(Share(shares[0].share.index, shares[0].share.value + 1),
                           shares[0].commitments)
        assert not vss.verify_share(bad)
        with pytest.raises(SecretSharingError, match="Feldman"):
            vss.reconstruct([bad, shares[1]])


class TestFieldBoundaries:
    def test_inverse_of_zero_raises(self):
        field = PrimeField(97)
        with pytest.raises(CryptoError):
            field.zero().inverse()

    def test_pow_negative_exponent_of_zero_raises(self):
        field = PrimeField(97)
        with pytest.raises(CryptoError):
            field.zero() ** -1

    def test_pow_negative_exponent_is_inverse(self):
        field = PrimeField(97)
        assert field(5) ** -1 == field(5).inverse()

    def test_division_by_zero_raises(self):
        field = PrimeField(97)
        with pytest.raises(CryptoError):
            field(3) / field(0)

    def test_modulus_wraps_to_zero(self):
        field = PrimeField(97)
        assert field(97) == field.zero()
        assert field(96) + 1 == field.zero()
        assert -field.zero() == field.zero()
        assert field(-1) == field(96)

    def test_smallest_prime_field(self):
        field = PrimeField(2)
        assert field.one() + field.one() == field.zero()
        assert field.one().inverse() == field.one()

    def test_cross_field_arithmetic_rejected(self):
        with pytest.raises(CryptoError):
            PrimeField(97)(1) + PrimeField(101)(1)

    def test_interpolation_requires_distinct_points(self):
        field = PrimeField(97)
        points = [(field(1), field(3)), (field(1), field(5))]
        with pytest.raises(CryptoError, match="distinct"):
            lagrange_interpolate_at_zero(points)

    def test_to_bytes_round_trip_at_boundary(self):
        field = PrimeField(2**61 - 1, unsafe_skip_check=True)
        top = FieldElement(field.modulus - 1, field)
        assert field.from_bytes(top.to_bytes()) == top
