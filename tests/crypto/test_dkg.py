"""Unit tests for the Pedersen-style distributed key generation."""

import pytest

from repro.crypto.bls import BlsThresholdScheme
from repro.crypto.dkg import DistributedKeyGeneration, DkgDealing, DkgParticipant
from repro.crypto.shamir import Share
from repro.errors import CryptoError, SecretSharingError


class TestDkgRun:
    def test_run_produces_usable_threshold_key(self):
        dkg = DistributedKeyGeneration(3, 5)
        public_key, shares = dkg.run()
        scheme = BlsThresholdScheme(3, 5)
        partials = [scheme.sign_share(s, b"dkg-signed") for s in shares]
        signature = scheme.combine(partials[:3])
        assert scheme.verify(public_key, b"dkg-signed", signature)

    def test_different_subsets_agree(self):
        dkg = DistributedKeyGeneration(2, 4)
        public_key, shares = dkg.run(seed=b"deterministic-dkg")
        scheme = BlsThresholdScheme(2, 4)
        partials = [scheme.sign_share(s, b"m") for s in shares]
        assert scheme.combine(partials[:2]) == scheme.combine(partials[2:])

    def test_share_indices_match_participants(self):
        dkg = DistributedKeyGeneration(2, 4)
        _, shares = dkg.run()
        assert [s.index for s in shares] == [1, 2, 3, 4]

    def test_invalid_parameters(self):
        with pytest.raises(CryptoError):
            DistributedKeyGeneration(0, 2)
        with pytest.raises(CryptoError):
            DistributedKeyGeneration(5, 2)

    def test_deterministic_seeded_run(self):
        key_a, _ = DistributedKeyGeneration(2, 3).run(seed=b"same-seed")
        key_b, _ = DistributedKeyGeneration(2, 3).run(seed=b"same-seed")
        assert key_a == key_b


class TestDkgParticipant:
    def test_dealing_verifies_for_all_recipients(self):
        participant = DkgParticipant(1, 2, 4)
        dealing = participant.deal(seed=b"x")
        for recipient in range(1, 5):
            assert dealing.verify_share_for(recipient)

    def test_dealing_missing_recipient_fails(self):
        participant = DkgParticipant(1, 2, 3)
        dealing = participant.deal()
        assert not dealing.verify_share_for(9)

    def test_tampered_dealing_rejected(self):
        dealer = DkgParticipant(1, 2, 3)
        dealing = dealer.deal()
        bad_shares = dict(dealing.shares)
        victim = bad_shares[2]
        bad_shares[2] = Share(victim.index, victim.value + 1)
        tampered = DkgDealing(dealing.dealer_index, bad_shares, dealing.commitments)
        receiver = DkgParticipant(2, 2, 3)
        assert not receiver.receive(tampered)

    def test_finalize_requires_all_qualified_dealings(self):
        receiver = DkgParticipant(1, 2, 3)
        with pytest.raises(SecretSharingError):
            receiver.finalize({1, 2})

    def test_group_public_key_requires_commitments(self):
        receiver = DkgParticipant(1, 2, 3)
        with pytest.raises(SecretSharingError):
            receiver.group_public_key({2})

    def test_index_bounds(self):
        with pytest.raises(CryptoError):
            DkgParticipant(0, 2, 3)
        with pytest.raises(CryptoError):
            DkgParticipant(4, 2, 3)
