"""Unit and property tests for the RFC 6962-style Merkle tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashes import sha256
from repro.crypto.merkle import (
    ConsistencyProof,
    InclusionProof,
    MerkleTree,
    leaf_hash,
    node_hash,
)
from repro.errors import InclusionProofError, LogConsistencyError


def make_tree(n: int) -> MerkleTree:
    return MerkleTree([f"entry-{i}".encode() for i in range(n)])


class TestTreeStructure:
    def test_empty_root_is_hash_of_empty_string(self):
        assert MerkleTree().root() == sha256(b"")

    def test_single_leaf_root(self):
        tree = MerkleTree([b"x"])
        assert tree.root() == leaf_hash(b"x")

    def test_two_leaf_root(self):
        tree = MerkleTree([b"a", b"b"])
        assert tree.root() == node_hash(leaf_hash(b"a"), leaf_hash(b"b"))

    def test_three_leaf_root_structure(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        expected = node_hash(node_hash(leaf_hash(b"a"), leaf_hash(b"b")), leaf_hash(b"c"))
        assert tree.root() == expected

    def test_append_returns_index(self):
        tree = MerkleTree()
        assert tree.append(b"a") == 0
        assert tree.append(b"b") == 1

    def test_size_and_leaf_access(self):
        tree = make_tree(5)
        assert tree.size == 5
        assert tree.leaf(3) == b"entry-3"
        assert tree.leaves() == [f"entry-{i}".encode() for i in range(5)]

    def test_partial_root_matches_prefix_tree(self):
        tree = make_tree(9)
        prefix = make_tree(4)
        assert tree.root(4) == prefix.root()

    def test_root_beyond_size_rejected(self):
        with pytest.raises(InclusionProofError):
            make_tree(3).root(5)

    def test_extend(self):
        tree = MerkleTree()
        tree.extend([b"a", b"b", b"c"])
        assert tree.size == 3


class TestInclusionProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_all_leaves_prove_inclusion(self, size):
        tree = make_tree(size)
        root = tree.root()
        for index in range(size):
            proof = tree.inclusion_proof(index)
            assert proof.verify(tree.leaf(index), root)

    def test_proof_for_historical_tree_size(self):
        tree = make_tree(10)
        proof = tree.inclusion_proof(2, tree_size=6)
        assert proof.verify(tree.leaf(2), tree.root(6))

    def test_wrong_leaf_fails(self):
        tree = make_tree(8)
        proof = tree.inclusion_proof(3)
        assert not proof.verify(b"forged", tree.root())

    def test_wrong_root_fails(self):
        tree = make_tree(8)
        proof = tree.inclusion_proof(3)
        assert not proof.verify(tree.leaf(3), sha256(b"nope"))

    def test_wrong_index_fails(self):
        tree = make_tree(8)
        proof = tree.inclusion_proof(3)
        forged = InclusionProof(4, proof.tree_size, proof.audit_path)
        assert not forged.verify(tree.leaf(3), tree.root())

    def test_truncated_path_fails(self):
        tree = make_tree(8)
        proof = tree.inclusion_proof(3)
        truncated = InclusionProof(3, 8, proof.audit_path[:-1])
        assert not truncated.verify(tree.leaf(3), tree.root())

    def test_out_of_range_request_rejected(self):
        with pytest.raises(InclusionProofError):
            make_tree(4).inclusion_proof(9)

    def test_index_beyond_tree_size_fails_verification(self):
        proof = InclusionProof(5, 4, tuple())
        assert not proof.verify(b"x", sha256(b"y"))

    def test_dict_round_trip(self):
        tree = make_tree(6)
        proof = tree.inclusion_proof(4)
        restored = InclusionProof.from_dict(proof.to_dict())
        assert restored == proof
        assert restored.verify(tree.leaf(4), tree.root())


class TestConsistencyProofs:
    @pytest.mark.parametrize("new_size", [1, 2, 3, 5, 8, 12, 17, 32])
    def test_all_prefixes_consistent(self, new_size):
        tree = make_tree(new_size)
        for old_size in range(0, new_size + 1):
            proof = tree.consistency_proof(old_size, new_size)
            assert proof.verify(tree.root(old_size), tree.root(new_size)), (old_size, new_size)

    def test_rewritten_history_detected(self):
        tree = make_tree(8)
        other = MerkleTree([b"tampered"] + [f"entry-{i}".encode() for i in range(1, 8)])
        proof = tree.consistency_proof(4, 8)
        assert not proof.verify(other.root(4), tree.root(8))

    def test_same_size_different_roots_fails(self):
        proof = ConsistencyProof(4, 4, tuple())
        assert not proof.verify(sha256(b"a"), sha256(b"b"))

    def test_shrinking_log_rejected(self):
        proof = ConsistencyProof(8, 4, tuple())
        assert not proof.verify(sha256(b"a"), sha256(b"b"))

    def test_empty_old_tree_always_consistent(self):
        tree = make_tree(5)
        proof = tree.consistency_proof(0, 5)
        assert proof.verify(tree.root(0), tree.root())

    def test_invalid_sizes_rejected_at_generation(self):
        with pytest.raises(LogConsistencyError):
            make_tree(4).consistency_proof(5, 4)

    def test_dict_round_trip(self):
        tree = make_tree(9)
        proof = tree.consistency_proof(5, 9)
        restored = ConsistencyProof.from_dict(proof.to_dict())
        assert restored == proof
        assert restored.verify(tree.root(5), tree.root(9))

    def test_cross_tree_consistency_fails(self):
        tree_a = make_tree(8)
        tree_b = MerkleTree([f"other-{i}".encode() for i in range(8)])
        proof = tree_a.consistency_proof(4, 8)
        assert not proof.verify(tree_b.root(4), tree_b.root(8))


@settings(max_examples=25, deadline=None)
@given(
    leaves=st.lists(st.binary(min_size=0, max_size=32), min_size=1, max_size=40),
    data=st.data(),
)
def test_property_inclusion_proofs_verify(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    proof = tree.inclusion_proof(index)
    assert proof.verify(leaves[index], tree.root())


@settings(max_examples=25, deadline=None)
@given(
    leaves=st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=40),
    data=st.data(),
)
def test_property_consistency_proofs_verify(leaves, data):
    tree = MerkleTree(leaves)
    old_size = data.draw(st.integers(min_value=0, max_value=len(leaves)))
    proof = tree.consistency_proof(old_size)
    assert proof.verify(tree.root(old_size), tree.root())


class TestBatchInclusionProofs:
    def test_single_leaf_matches_tree_root(self):
        tree = make_tree(7)
        proof = tree.batch_inclusion_proof([3])
        assert proof.verify((b"entry-3",), tree.root())

    def test_all_leaves_needs_no_path(self):
        tree = make_tree(8)
        proof = tree.batch_inclusion_proof(range(8))
        assert proof.path == ()
        assert proof.verify(tuple(f"entry-{i}".encode() for i in range(8)),
                            tree.root())

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13])
    def test_every_pair_verifies(self, size):
        tree = make_tree(size)
        root = tree.root()
        for i in range(size):
            for j in range(i, size):
                proof = tree.batch_inclusion_proof([i, j])
                leaves = tuple(tree.leaf(k) for k in sorted({i, j}))
                assert proof.verify(leaves, root), (i, j, size)

    def test_shared_interior_nodes_appear_once(self):
        # Adjacent leaves under one subtree share their audit path: the batch
        # proof must be strictly smaller than two separate proofs.
        tree = make_tree(16)
        batch = tree.batch_inclusion_proof([4, 5])
        separate = (len(tree.inclusion_proof(4).audit_path)
                    + len(tree.inclusion_proof(5).audit_path))
        assert len(batch.path) < separate

    def test_wrong_leaf_fails(self):
        tree = make_tree(9)
        proof = tree.batch_inclusion_proof([2, 6])
        assert not proof.verify((b"entry-2", b"forged"), tree.root())

    def test_misaligned_leaves_fail(self):
        tree = make_tree(9)
        proof = tree.batch_inclusion_proof([2, 6])
        assert not proof.verify((b"entry-6", b"entry-2"), tree.root())
        assert not proof.verify((b"entry-2",), tree.root())

    def test_wrong_root_fails(self):
        tree = make_tree(9)
        proof = tree.batch_inclusion_proof([2, 6])
        leaves = (b"entry-2", b"entry-6")
        assert not proof.verify(leaves, sha256(b"not the root"))

    def test_truncated_path_fails(self):
        tree = make_tree(9)
        proof = tree.batch_inclusion_proof([2, 6])
        import dataclasses
        short = dataclasses.replace(proof, path=proof.path[:-1])
        assert not short.verify((b"entry-2", b"entry-6"), tree.root())

    def test_padded_path_fails(self):
        tree = make_tree(9)
        proof = tree.batch_inclusion_proof([2, 6])
        import dataclasses
        long = dataclasses.replace(proof, path=proof.path + (sha256(b"x"),))
        assert not long.verify((b"entry-2", b"entry-6"), tree.root())

    def test_historical_tree_size(self):
        tree = make_tree(12)
        proof = tree.batch_inclusion_proof([0, 4], tree_size=5)
        assert proof.tree_size == 5
        assert proof.verify((b"entry-0", b"entry-4"), tree.root(5))
        assert not proof.verify((b"entry-0", b"entry-4"), tree.root())

    def test_empty_target_set_rejected(self):
        tree = make_tree(4)
        with pytest.raises(InclusionProofError):
            tree.batch_inclusion_proof([])

    def test_out_of_range_target_rejected(self):
        tree = make_tree(4)
        with pytest.raises(InclusionProofError):
            tree.batch_inclusion_proof([0, 4])

    def test_dict_round_trip(self):
        from repro.crypto.merkle import BatchInclusionProof
        tree = make_tree(10)
        proof = tree.batch_inclusion_proof([1, 7, 9])
        clone = BatchInclusionProof.from_dict(proof.to_dict())
        assert clone == proof
        assert clone.verify((b"entry-1", b"entry-7", b"entry-9"), tree.root())


@settings(max_examples=25, deadline=None)
@given(
    leaves=st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=40),
    data=st.data(),
)
def test_property_batch_inclusion_proofs_verify(leaves, data):
    tree = MerkleTree(leaves)
    targets = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(leaves) - 1),
        min_size=1, max_size=len(leaves)))
    indices = sorted(targets)
    proof = tree.batch_inclusion_proof(indices)
    assert proof.verify(tuple(leaves[i] for i in indices), tree.root())
