"""Unit and property tests for prime-field arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import FieldElement, PrimeField, lagrange_interpolate_at_zero
from repro.errors import CryptoError

F17 = PrimeField(17)
F_BIG = PrimeField(
    0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
    unsafe_skip_check=True,
)


class TestPrimeFieldConstruction:
    def test_rejects_composite_modulus(self):
        with pytest.raises(CryptoError):
            PrimeField(15)

    def test_rejects_modulus_below_two(self):
        with pytest.raises(CryptoError):
            PrimeField(1)

    def test_accepts_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 17, 101):
            assert PrimeField(p).modulus == p

    def test_unsafe_skip_check_allows_any_modulus(self):
        assert PrimeField(15, unsafe_skip_check=True).modulus == 15

    def test_byte_length(self):
        assert PrimeField(251).byte_length == 1
        assert PrimeField(257).byte_length == 2
        assert F_BIG.byte_length == 32

    def test_equality_and_hash(self):
        assert PrimeField(17) == F17
        assert hash(PrimeField(17)) == hash(F17)
        assert PrimeField(19) != F17


class TestFieldElementArithmetic:
    def test_add_wraps_modulus(self):
        assert F17(9) + F17(12) == F17(4)

    def test_add_accepts_int(self):
        assert F17(9) + 12 == F17(4)
        assert 12 + F17(9) == F17(4)

    def test_sub(self):
        assert F17(3) - F17(5) == F17(15)
        assert 3 - F17(5) == F17(15)

    def test_mul(self):
        assert F17(5) * F17(7) == F17(1)

    def test_division(self):
        assert (F17(10) / F17(5)) * F17(5) == F17(10)

    def test_division_by_zero_raises(self):
        with pytest.raises(CryptoError):
            _ = F17(3) / F17(0)

    def test_negation(self):
        assert -F17(5) == F17(12)
        assert -F17(0) == F17(0)

    def test_pow(self):
        assert F17(2) ** 4 == F17(16)
        assert F17(3) ** 16 == F17(1)  # Fermat's little theorem

    def test_inverse(self):
        for value in range(1, 17):
            assert F17(value) * F17(value).inverse() == F17(1)

    def test_zero_has_no_inverse(self):
        with pytest.raises(CryptoError):
            F17(0).inverse()

    def test_is_zero(self):
        assert F17(0).is_zero()
        assert not F17(1).is_zero()

    def test_to_bytes_round_trip(self):
        element = F_BIG(123456789)
        assert F_BIG.from_bytes(element.to_bytes()) == element

    def test_mixing_fields_raises(self):
        with pytest.raises(CryptoError):
            _ = F17(1) + PrimeField(19)(1)

    def test_coerce_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            _ = F17(1) + "nope"

    def test_int_conversion(self):
        assert int(F17(5)) == 5


class TestFieldHelpers:
    def test_zero_and_one(self):
        assert F17.zero() == F17(0)
        assert F17.one() == F17(1)

    def test_elements_helper(self):
        assert F17.elements([1, 2, 3]) == [F17(1), F17(2), F17(3)]

    def test_random_in_range(self):
        for _ in range(20):
            assert 0 <= F17.random().value < 17

    def test_random_with_rng(self):
        import random

        rng = random.Random(7)
        values = [F17.random(rng).value for _ in range(5)]
        rng2 = random.Random(7)
        assert values == [F17.random(rng2).value for _ in range(5)]


class TestLagrangeInterpolation:
    def test_recovers_constant_polynomial(self):
        points = [(F17(1), F17(5)), (F17(2), F17(5))]
        assert lagrange_interpolate_at_zero(points) == F17(5)

    def test_recovers_linear_polynomial(self):
        # f(x) = 3 + 2x over GF(17)
        points = [(F17(1), F17(5)), (F17(4), F17(11))]
        assert lagrange_interpolate_at_zero(points) == F17(3)

    def test_recovers_quadratic_polynomial(self):
        # f(x) = 7 + x + 2x^2 over GF(17)
        def f(x):
            return F17(7) + F17(x) + F17(2) * F17(x) * F17(x)

        points = [(F17(x), f(x)) for x in (2, 5, 9)]
        assert lagrange_interpolate_at_zero(points) == F17(7)

    def test_requires_points(self):
        with pytest.raises(CryptoError):
            lagrange_interpolate_at_zero([])

    def test_rejects_duplicate_x(self):
        with pytest.raises(CryptoError):
            lagrange_interpolate_at_zero([(F17(1), F17(2)), (F17(1), F17(3))])


@settings(max_examples=50)
@given(a=st.integers(min_value=0, max_value=10**40), b=st.integers(min_value=0, max_value=10**40))
def test_property_addition_commutes(a, b):
    assert F_BIG(a) + F_BIG(b) == F_BIG(b) + F_BIG(a)


@settings(max_examples=50)
@given(
    a=st.integers(min_value=0, max_value=10**40),
    b=st.integers(min_value=0, max_value=10**40),
    c=st.integers(min_value=0, max_value=10**40),
)
def test_property_distributivity(a, b, c):
    left = F_BIG(a) * (F_BIG(b) + F_BIG(c))
    right = F_BIG(a) * F_BIG(b) + F_BIG(a) * F_BIG(c)
    assert left == right


@settings(max_examples=50)
@given(a=st.integers(min_value=1, max_value=10**40))
def test_property_inverse_round_trip(a):
    element = F_BIG(a)
    if not element.is_zero():
        assert element * element.inverse() == F_BIG.one()
