"""Unit tests for hashing helpers (SHA-256 wrappers, HKDF, tagged hashes)."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashes import (
    double_sha256,
    hash_to_int,
    hkdf,
    hkdf_expand,
    hkdf_extract,
    hmac_sha256,
    sha256,
    sha256_hex,
    tagged_hash,
)


class TestSha256Wrappers:
    def test_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()

    def test_multi_part_concatenation(self):
        assert sha256(b"ab", b"c") == sha256(b"abc")

    def test_hex_form(self):
        assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()

    def test_double_sha256(self):
        assert double_sha256(b"x") == sha256(sha256(b"x"))

    def test_known_vector(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )


class TestHkdf:
    def test_rfc5869_test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_empty_salt_defaults_to_zeros(self):
        assert hkdf_extract(b"", b"ikm") == hmac_sha256(b"\x00" * 32, b"ikm")

    def test_one_shot_matches_two_step(self):
        assert hkdf(b"ikm", salt=b"salt", info=b"info", length=64) == hkdf_expand(
            hkdf_extract(b"salt", b"ikm"), b"info", 64
        )

    def test_expand_length_limit(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_expand_lengths(self):
        for length in (1, 16, 31, 32, 33, 64, 100):
            assert len(hkdf(b"ikm", length=length)) == length


class TestTaggedHash:
    def test_domain_separation(self):
        assert tagged_hash("a", b"data") != tagged_hash("b", b"data")

    def test_deterministic(self):
        assert tagged_hash("tag", b"x") == tagged_hash("tag", b"x")


class TestHashToInt:
    def test_in_range(self):
        for modulus in (2, 17, 2**255 - 19, 10**30 + 57):
            value = hash_to_int(b"input", modulus)
            assert 0 <= value < modulus

    def test_deterministic(self):
        assert hash_to_int(b"x", 101) == hash_to_int(b"x", 101)

    def test_tag_separates(self):
        assert hash_to_int(b"x", 2**128, tag="a") != hash_to_int(b"x", 2**128, tag="b")

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            hash_to_int(b"x", 1)


@settings(max_examples=50)
@given(data=st.binary(max_size=128), modulus=st.integers(min_value=2, max_value=2**256))
def test_property_hash_to_int_in_range(data, modulus):
    assert 0 <= hash_to_int(data, modulus) < modulus
