"""Seeded property-based round-trip tests for the codec and framing layers.

A seeded generator produces random values from the codec's full type lattice
(including deep nesting and adversarial string/byte content) and asserts the
two properties the rest of the system depends on:

* ``decode(encode(v)) == v`` for every encodable value, and the encoding is
  canonical (re-encoding the decoded value is byte-identical);
* every strict prefix of a valid encoding raises ``DecodingError`` — the
  codec never mistakes truncated input for a complete value.
"""

import random

import pytest

from repro.errors import DecodingError
from repro.wire.codec import decode, encode
from repro.wire.framing import MAX_FRAME_SIZE, FrameReader, frame_message, split_frames

ROUNDS = 60


def random_value(rng: random.Random, depth: int = 0):
    """One random value from the codec's supported type lattice."""
    choices = ["none", "bool", "int", "bytes", "str"]
    if depth < 4:
        choices += ["list", "dict"]
    kind = rng.choice(choices)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        magnitude = rng.choice([0, 1, 255, 2**31, 2**64, rng.getrandbits(200)])
        return magnitude if rng.random() < 0.5 else -magnitude
    if kind == "bytes":
        return rng.randbytes(rng.randrange(0, 40))
    if kind == "str":
        alphabet = "abc\x00é€\U0001f511 "
        return "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 20)))
    if kind == "list":
        return [random_value(rng, depth + 1) for _ in range(rng.randrange(0, 5))]
    keys = {f"k{rng.randrange(100)}" for _ in range(rng.randrange(0, 5))}
    return {key: random_value(rng, depth + 1) for key in keys}


class TestCodecProperties:
    def test_round_trip_and_canonical(self):
        rng = random.Random(0xC0DEC)
        for _ in range(ROUNDS):
            value = random_value(rng)
            blob = encode(value)
            decoded = decode(blob)
            assert decoded == value
            assert encode(decoded) == blob  # canonical: one encoding per value

    def test_every_strict_prefix_raises(self):
        rng = random.Random(0xBADC0DE)
        for _ in range(ROUNDS // 3):
            blob = encode(random_value(rng))
            for cut in range(len(blob)):
                with pytest.raises(DecodingError):
                    decode(blob[:cut])

    def test_trailing_garbage_raises(self):
        rng = random.Random(3)
        for _ in range(ROUNDS // 3):
            blob = encode(random_value(rng))
            with pytest.raises(DecodingError):
                decode(blob + b"\x00")

    def test_unknown_tag_raises(self):
        with pytest.raises(DecodingError, match="unknown tag"):
            decode(b"Zjunk")

    def test_non_canonical_int_encodings_rejected(self):
        # Leading-zero magnitude and negative zero both have canonical forms.
        with pytest.raises(DecodingError):
            decode(b"I\x00" + (2).to_bytes(4, "big") + b"\x00\x01")
        with pytest.raises(DecodingError):
            decode(b"I\x01" + (0).to_bytes(4, "big"))

    def test_unsorted_dict_keys_rejected(self):
        blob = bytearray(b"D" + (2).to_bytes(4, "big"))
        for key in ("b", "a"):  # wrong order on the wire
            raw = key.encode()
            blob += len(raw).to_bytes(4, "big") + raw + b"N"
        with pytest.raises(DecodingError, match="canonical order"):
            decode(bytes(blob))


class TestFramingProperties:
    def test_frame_stream_round_trip_arbitrary_chunking(self):
        rng = random.Random(0xF4A3)
        for _ in range(ROUNDS // 3):
            payloads = [rng.randbytes(rng.randrange(0, 200))
                        for _ in range(rng.randrange(1, 8))]
            stream = b"".join(frame_message(p) for p in payloads)
            assert split_frames(stream) == payloads

            reader = FrameReader()
            received = []
            position = 0
            while position < len(stream):
                step = rng.randrange(1, 17)
                received.extend(reader.feed(stream[position:position + step]))
                position += step
            assert received == payloads
            assert reader.pending_bytes == 0

    def test_truncated_stream_reports_partial_frame(self):
        rng = random.Random(5)
        for _ in range(ROUNDS // 3):
            payload = rng.randbytes(rng.randrange(1, 64))
            stream = frame_message(payload)
            cut = rng.randrange(1, len(stream))
            with pytest.raises(DecodingError, match="partial"):
                split_frames(stream[:cut])

    def test_oversized_frame_rejected_on_both_sides(self):
        with pytest.raises(DecodingError):
            frame_message(b"x" * (MAX_FRAME_SIZE + 1))
        oversized_header = (MAX_FRAME_SIZE + 1).to_bytes(4, "big")
        with pytest.raises(DecodingError, match="maximum"):
            FrameReader().feed(oversized_header)
