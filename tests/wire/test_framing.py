"""Unit tests for length-prefixed framing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodingError
from repro.wire.framing import FrameReader, frame_message, split_frames


class TestFraming:
    def test_frame_and_split(self):
        data = frame_message(b"hello") + frame_message(b"") + frame_message(b"world")
        assert split_frames(data) == [b"hello", b"", b"world"]

    def test_partial_frame_rejected_by_split(self):
        with pytest.raises(DecodingError):
            split_frames(frame_message(b"hello")[:-1])

    def test_oversized_frame_rejected(self):
        with pytest.raises(DecodingError):
            frame_message(b"\x00" * (16 * 1024 * 1024 + 1))

    def test_oversized_incoming_length_rejected(self):
        reader = FrameReader()
        with pytest.raises(DecodingError):
            reader.feed((17 * 1024 * 1024).to_bytes(4, "big"))


class TestFrameReader:
    def test_incremental_feed(self):
        reader = FrameReader()
        data = frame_message(b"abcdef")
        assert reader.feed(data[:3]) == []
        assert reader.pending_bytes == 3
        assert reader.feed(data[3:]) == [b"abcdef"]
        assert reader.pending_bytes == 0

    def test_multiple_frames_in_one_chunk(self):
        reader = FrameReader()
        data = frame_message(b"a") + frame_message(b"bb")
        assert reader.feed(data) == [b"a", b"bb"]

    def test_frame_spanning_chunks_plus_new_frame(self):
        reader = FrameReader()
        data = frame_message(b"abc") + frame_message(b"de")
        assert reader.feed(data[:5]) == []
        assert reader.feed(data[5:]) == [b"abc", b"de"]

    def test_empty_feed(self):
        assert FrameReader().feed(b"") == []


@settings(max_examples=50)
@given(payloads=st.lists(st.binary(max_size=128), max_size=10), data=st.data())
def test_property_reassembly_from_arbitrary_chunking(payloads, data):
    stream = b"".join(frame_message(p) for p in payloads)
    reader = FrameReader()
    received = []
    position = 0
    while position < len(stream):
        step = data.draw(st.integers(min_value=1, max_value=max(1, len(stream) - position)))
        received.extend(reader.feed(stream[position:position + step]))
        position += step
    assert received == payloads
    assert reader.pending_bytes == 0


class TestFrameReaderFailureState:
    """An oversized frame must fail deterministically, not poison the buffer."""

    def test_oversized_frame_clears_buffer(self):
        from repro.wire.framing import MAX_FRAME_SIZE

        reader = FrameReader()
        bad_header = (MAX_FRAME_SIZE + 1).to_bytes(4, "big") + b"xxxx"
        with pytest.raises(DecodingError):
            reader.feed(bad_header)
        assert reader.pending_bytes == 0
        assert reader.failed

    def test_feed_after_failure_raises_deterministically(self):
        from repro.wire.framing import MAX_FRAME_SIZE

        reader = FrameReader()
        with pytest.raises(DecodingError):
            reader.feed((MAX_FRAME_SIZE + 1).to_bytes(4, "big"))
        # Before the fix the stale buffer re-raised on every feed forever;
        # now the failed state is explicit and the message says what to do.
        with pytest.raises(DecodingError, match="reset"):
            reader.feed(frame_message(b"ok"))

    def test_reset_rearms_the_reader(self):
        from repro.wire.framing import MAX_FRAME_SIZE

        reader = FrameReader()
        with pytest.raises(DecodingError):
            reader.feed((MAX_FRAME_SIZE + 1).to_bytes(4, "big"))
        reader.reset()
        assert not reader.failed
        assert reader.feed(frame_message(b"fresh")) == [b"fresh"]
