"""Unit and property tests for the canonical binary codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodingError, EncodingError
from repro.wire.codec import canonical_digest, decode, encode


class TestEncodeDecodeRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**256,
            -(2**256),
            b"",
            b"\x00\xff" * 10,
            "",
            "hello",
            "ünïcode ✓",
            [],
            [1, 2, 3],
            [None, True, b"x", "y", [1, [2]]],
            {},
            {"a": 1, "b": [2, 3], "c": {"nested": b"bytes"}},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_encodes_as_list(self):
        assert decode(encode((1, 2, 3))) == [1, 2, 3]

    def test_bytearray_encodes_as_bytes(self):
        assert decode(encode(bytearray(b"xyz"))) == b"xyz"

    def test_bool_not_confused_with_int(self):
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1
        assert encode(True) != encode(1)


class TestCanonicalness:
    def test_dict_key_order_does_not_matter(self):
        a = {"x": 1, "y": 2, "z": 3}
        b = {"z": 3, "y": 2, "x": 1}
        assert encode(a) == encode(b)

    def test_canonical_digest_stable(self):
        value = {"method": "attest", "nonce": b"\x01" * 32}
        assert canonical_digest(value) == canonical_digest(dict(reversed(value.items())))

    def test_different_values_different_digests(self):
        assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})

    def test_int_encoding_minimal(self):
        # No leading zero bytes allowed: decoding a padded form must fail.
        good = encode(255)
        padded = good[:6] + b"\x00\x01" + b"\x00\xff"
        # Construct explicitly: tag I, sign 0, length 2, bytes 00 ff
        padded = b"I\x00" + (2).to_bytes(4, "big") + b"\x00\xff"
        with pytest.raises(DecodingError):
            decode(padded)
        assert decode(good) == 255

    def test_negative_zero_rejected(self):
        bogus = b"I\x01" + (0).to_bytes(4, "big")
        with pytest.raises(DecodingError):
            decode(bogus)

    def test_unsorted_dict_keys_rejected(self):
        # Hand-craft a dict encoding with keys out of order.
        key_b = b"b"
        key_a = b"a"
        body = (
            b"D" + (2).to_bytes(4, "big")
            + len(key_b).to_bytes(4, "big") + key_b + b"N"
            + len(key_a).to_bytes(4, "big") + key_a + b"N"
        )
        with pytest.raises(DecodingError):
            decode(body)


class TestErrors:
    def test_unknown_type_rejected(self):
        with pytest.raises(EncodingError):
            encode(3.14)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(EncodingError):
            encode({1: "x"})

    def test_unknown_tag_rejected(self):
        with pytest.raises(DecodingError):
            decode(b"Z")

    def test_truncated_input_rejected(self):
        with pytest.raises(DecodingError):
            decode(encode(b"hello")[:-1])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DecodingError):
            decode(encode(1) + b"\x00")

    def test_empty_input_rejected(self):
        with pytest.raises(DecodingError):
            decode(b"")

    def test_invalid_utf8_rejected(self):
        bogus = b"S" + (2).to_bytes(4, "big") + b"\xff\xfe"
        with pytest.raises(DecodingError):
            decode(bogus)

    def test_deep_nesting_rejected(self):
        value = []
        for _ in range(100):
            value = [value]
        with pytest.raises(EncodingError):
            encode(value)


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.binary(max_size=64),
    st.text(max_size=32),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=8), children, max_size=6),
    ),
    max_leaves=25,
)


@settings(max_examples=150)
@given(value=_values)
def test_property_round_trip(value):
    assert decode(encode(value)) == value


@settings(max_examples=75)
@given(value=_values)
def test_property_encoding_deterministic(value):
    assert encode(value) == encode(value)
