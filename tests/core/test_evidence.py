"""Unit tests for misbehavior-evidence objects in isolation."""

import pytest

from repro.core.evidence import (
    AttestationFailureEvidence,
    DigestMismatchEvidence,
    LogMismatchEvidence,
    MisbehaviorEvidence,
)
from repro.core.package import DeveloperIdentity
from repro.core.trust_domain import TrustDomain, expected_framework_measurement
from repro.enclave.attestation import AttestationVerifier
from repro.enclave.tee import HardwareType
from repro.enclave.vendor import HardwareVendor, VendorRegistry
from repro.transparency.log import DigestLog


def make_domain(domain_id="evidence-domain", hardware=HardwareType.NITRO):
    developer = DeveloperIdentity("evidence-developer")
    vendor = HardwareVendor("aws-nitro-sim" if hardware == HardwareType.NITRO else "intel-sgx-sim")
    registry = VendorRegistry([vendor])
    domain = TrustDomain(domain_id, hardware, developer.public_key, vendor=vendor)
    return domain, AttestationVerifier(registry), developer


class TestBaseEvidence:
    def test_base_verify_is_abstract(self):
        with pytest.raises(NotImplementedError):
            MisbehaviorEvidence("kind", "desc").verify(None)


class TestDigestMismatchEvidence:
    def test_genuine_mismatch_verifies(self):
        domain_a, verifier, developer = make_domain("a")
        vendor_b = HardwareVendor("aws-nitro-sim")
        domain_b = TrustDomain("b", HardwareType.NITRO, developer.public_key, vendor=vendor_b)

        from repro.core.package import CodePackage
        from repro.sandbox.programs import bls_share_source

        package_a = CodePackage("app", "1.0.0", "wvm", bls_share_source())
        package_b = CodePackage("app", "6.6.6", "wvm", bls_share_source() + "\n; evil")
        domain_a.install_update(developer.sign_update(package_a, 0), package_a)
        domain_b.install_update(developer.sign_update(package_b, 0), package_b)

        first = domain_a.audit_response(b"n" * 32)
        second = domain_b.audit_response(b"n" * 32)
        evidence = DigestMismatchEvidence(
            kind="digest-mismatch", description="test",
            first_domain="a", second_domain="b",
            first_response=first, second_response=second,
        )
        assert evidence.verify(verifier, expected_framework_measurement())

    def test_matching_digests_do_not_verify_as_evidence(self):
        domain, verifier, developer = make_domain()
        from repro.core.package import CodePackage
        from repro.sandbox.programs import bls_share_source

        package = CodePackage("app", "1.0.0", "wvm", bls_share_source())
        domain.install_update(developer.sign_update(package, 0), package)
        response = domain.audit_response(b"n" * 32)
        evidence = DigestMismatchEvidence(
            kind="digest-mismatch", description="bogus",
            first_domain="a", second_domain="a",
            first_response=response, second_response=response,
        )
        assert not evidence.verify(verifier)

    def test_missing_attestation_does_not_verify(self):
        _, verifier, _ = make_domain()
        evidence = DigestMismatchEvidence(
            kind="digest-mismatch", description="no attestations",
            first_response={}, second_response={},
        )
        assert not evidence.verify(verifier)


class TestLogMismatchEvidence:
    def test_inconsistent_export_verifies(self):
        log = DigestLog("d")
        log.append(b"\x01" * 32, "v1", 1.0)
        exported = log.export()
        exported[0]["code_digest"] = b"\x02" * 32
        evidence = LogMismatchEvidence(
            kind="log-mismatch", description="test",
            domain_id="d", exported_log=exported, attested_head=log.head(),
        )
        assert evidence.verify(None)

    def test_consistent_export_is_not_evidence(self):
        log = DigestLog("d")
        log.append(b"\x01" * 32, "v1", 1.0)
        evidence = LogMismatchEvidence(
            kind="log-mismatch", description="test",
            domain_id="d", exported_log=log.export(), attested_head=log.head(),
        )
        assert not evidence.verify(None)


class TestAttestationFailureEvidence:
    def test_missing_attestation_counts_as_misbehavior(self):
        _, verifier, _ = make_domain()
        evidence = AttestationFailureEvidence(
            kind="attestation-failure", description="refused",
            domain_id="d", response={}, failure_reason="missing",
        )
        assert evidence.verify(verifier)

    def test_invalid_attestation_still_fails_on_recheck(self):
        domain, verifier, _ = make_domain()
        response = domain.audit_response(b"original-nonce-0000000000000000")
        # Record the response against a different nonce: replay evidence.
        response["nonce"] = b"a different nonce..............."
        evidence = AttestationFailureEvidence(
            kind="attestation-failure", description="replay",
            domain_id=domain.domain_id, response=response, failure_reason="nonce mismatch",
        )
        assert evidence.verify(verifier, expected_framework_measurement())

    def test_valid_attestation_is_not_evidence(self):
        domain, verifier, _ = make_domain()
        nonce = b"n" * 32
        response = domain.audit_response(nonce)
        evidence = AttestationFailureEvidence(
            kind="attestation-failure", description="bogus claim",
            domain_id=domain.domain_id, response=response, failure_reason="none",
        )
        assert not evidence.verify(verifier, expected_framework_measurement())
