"""Unit and integration tests for trust domains and deployments."""

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.package import CodePackage, DeveloperIdentity
from repro.core.trust_domain import TrustDomain, expected_framework_measurement
from repro.crypto.bilinear import BLS_SCALAR_ORDER
from repro.enclave.tee import HardwareType
from repro.enclave.vendor import HardwareVendor
from repro.errors import DeploymentError, RpcError
from repro.net.rpc import RpcClient, RpcServer
from repro.net.transport import Network
from repro.sandbox.programs import bls_share_source


def wvm_package(version="1.0.0"):
    return CodePackage("custody", version, "wvm", bls_share_source())


class TestTrustDomain:
    def test_nitro_domain_attests_to_framework_measurement(self):
        developer = DeveloperIdentity("acme")
        domain = TrustDomain("d1", HardwareType.NITRO, developer.public_key,
                             vendor=HardwareVendor("aws-nitro-sim"))
        response = domain.audit_response(b"nonce")
        assert response["attestation"] is not None
        assert response["attestation"]["pcrs"]["0"] == expected_framework_measurement().digest

    def test_sgx_domain_attests(self):
        developer = DeveloperIdentity("acme")
        domain = TrustDomain("d2", HardwareType.SGX, developer.public_key,
                             vendor=HardwareVendor("intel-sgx-sim"))
        response = domain.audit_response(b"nonce")
        assert response["attestation"]["format"] == "sgx-quote-v1"
        assert response["attestation"]["mrenclave"] == expected_framework_measurement().digest

    def test_developer_domain_has_no_attestation(self):
        developer = DeveloperIdentity("acme")
        domain = TrustDomain("d0", HardwareType.NONE, developer.public_key)
        response = domain.audit_response(b"nonce")
        assert response["attestation"] is None
        assert response["hardware_type"] == "none"

    def test_enclave_domain_requires_vendor(self):
        developer = DeveloperIdentity("acme")
        with pytest.raises(DeploymentError):
            TrustDomain("d", HardwareType.NITRO, developer.public_key)

    def test_requests_traverse_vsock_hops(self):
        developer = DeveloperIdentity("acme")
        domain = TrustDomain("d1", HardwareType.NITRO, developer.public_key,
                             vendor=HardwareVendor("aws-nitro-sim"), use_vsock=True)
        package = wvm_package()
        domain.install_update(developer.sign_update(package, 0), package)
        before = domain.vsock.total_forwarded_messages
        domain.invoke_application("scalar_mul", [2, 3, BLS_SCALAR_ORDER])
        # One request in through both hops plus one response out through both.
        assert domain.vsock.total_forwarded_messages == before + 4

    def test_install_and_invoke_through_domain(self):
        developer = DeveloperIdentity("acme")
        domain = TrustDomain("d1", HardwareType.SGX, developer.public_key,
                             vendor=HardwareVendor("intel-sgx-sim"))
        package = wvm_package()
        result = domain.install_update(developer.sign_update(package, 0), package)
        assert result["installed"] is True
        invocation = domain.invoke_application("scalar_mul", [5, 6, BLS_SCALAR_ORDER])
        assert invocation["value"] == 30
        state = domain.get_state()
        assert state["app_version"] == "1.0.0"

    def test_compromise_marks_domain(self):
        developer = DeveloperIdentity("acme")
        domain = TrustDomain("d1", HardwareType.NITRO, developer.public_key,
                             vendor=HardwareVendor("aws-nitro-sim"))
        assert not domain.compromised
        domain.compromise()
        assert domain.compromised

    def test_developer_domain_compromise_is_noop(self):
        developer = DeveloperIdentity("acme")
        domain = TrustDomain("d0", HardwareType.NONE, developer.public_key)
        domain.compromise()
        assert not domain.compromised


class TestDeployment:
    def test_default_layout_matches_figure_2(self):
        deployment = Deployment("fig2", DeveloperIdentity("acme"))
        assert len(deployment.domains) == 2
        assert deployment.domains[0].hardware_type == HardwareType.NONE
        assert deployment.domains[1].hardware_type == HardwareType.NITRO

    def test_heterogeneous_hardware_assignment(self):
        deployment = Deployment("het", DeveloperIdentity("acme"),
                                DeploymentConfig(num_domains=5))
        census = deployment.hardware_census()
        assert census["none"] == 1
        assert census["nitro"] == 2
        assert census["sgx"] == 2

    def test_homogeneous_configuration(self):
        deployment = Deployment("homo", DeveloperIdentity("acme"),
                                DeploymentConfig(num_domains=4, heterogeneous=False))
        census = deployment.hardware_census()
        assert census["nitro"] == 3
        assert "sgx" not in census

    def test_without_developer_domain(self):
        deployment = Deployment("all-tee", DeveloperIdentity("acme"),
                                DeploymentConfig(num_domains=3, include_developer_domain=False))
        assert all(domain.enclave is not None for domain in deployment.domains)

    def test_invalid_config_rejected(self):
        with pytest.raises(DeploymentError):
            DeploymentConfig(num_domains=0)

    def test_publish_and_install_reaches_every_domain(self):
        deployment = Deployment("dep", DeveloperIdentity("acme"),
                                DeploymentConfig(num_domains=3))
        package = wvm_package()
        manifest = deployment.publish_and_install(package)
        assert manifest.sequence == 0
        assert deployment.current_sequence == 0
        for domain in deployment.domains:
            assert domain.get_state()["app_digest"] == package.digest()
        assert deployment.release_log.size == 1
        assert deployment.registry.contains(package.digest())

    def test_sequential_updates_increment_sequence(self):
        deployment = Deployment("dep", DeveloperIdentity("acme"))
        deployment.publish_and_install(wvm_package("1.0.0"))
        manifest = deployment.publish_and_install(wvm_package("1.1.0"))
        assert manifest.sequence == 1
        for domain in deployment.domains:
            assert domain.get_state()["sequence"] == 1

    def test_invoke_all_collects_every_domain(self):
        deployment = Deployment("dep", DeveloperIdentity("acme"),
                                DeploymentConfig(num_domains=3))
        deployment.publish_and_install(wvm_package())
        results = deployment.invoke_all("scalar_mul", [3, 4, BLS_SCALAR_ORDER])
        assert [r["value"] for r in results] == [12, 12, 12]

    def test_enclave_domains_listing(self):
        deployment = Deployment("dep", DeveloperIdentity("acme"),
                                DeploymentConfig(num_domains=4))
        assert len(deployment.enclave_domains()) == 3


class TestDeploymentOverRpc:
    def test_audit_and_invoke_over_the_simulated_network(self):
        deployment = Deployment("netdep", DeveloperIdentity("acme"),
                                DeploymentConfig(num_domains=2))
        deployment.publish_and_install(wvm_package())
        network = Network()
        deployment.attach_to_network(network)

        client_endpoint = network.endpoint("client")
        rpc = RpcClient(network, client_endpoint, "netdep-domain-1")
        state = rpc.call("get_state", {})
        assert state["app_version"] == "1.0.0"

        audit = rpc.call("audit", {"nonce": b"\x01" * 32})
        assert audit["attestation"] is not None

        invocation = rpc.call("invoke", {"entry": "scalar_mul",
                                         "params": [6, 7, BLS_SCALAR_ORDER]})
        assert invocation["value"] == 42

    def test_rpc_error_propagates_for_bad_update(self):
        deployment = Deployment("netdep2", DeveloperIdentity("acme"))
        network = Network()
        deployment.attach_to_network(network)
        rpc = RpcClient(network, network.endpoint("client"), "netdep2-domain-1")
        impostor = DeveloperIdentity("impostor")
        package = wvm_package()
        with pytest.raises(RpcError):
            rpc.call("install_update", {
                "manifest": impostor.sign_update(package, 0).to_dict(),
                "package": package.to_dict(),
            })
