"""Unit tests for code packages, update manifests, and the release registry."""

import pytest

from repro.core.package import CodePackage, DeveloperIdentity, UpdateManifest
from repro.core.registry import ReleaseRegistry
from repro.errors import AuditError, UpdateRejectedError


def make_package(version="1.0.0", source="func f(params=0, locals=0) export\n halt\nendfunc"):
    return CodePackage("demo-app", version, "wvm", source)


class TestCodePackage:
    def test_digest_deterministic(self):
        assert make_package().digest() == make_package().digest()

    def test_digest_changes_with_source(self):
        assert make_package().digest() != make_package(source="; changed\n" + make_package().source).digest()

    def test_digest_changes_with_version(self):
        assert make_package("1.0.0").digest() != make_package("1.0.1").digest()

    def test_dict_round_trip(self):
        package = make_package()
        assert CodePackage.from_dict(package.to_dict()) == package

    def test_unknown_language_rejected(self):
        with pytest.raises(UpdateRejectedError):
            CodePackage("x", "1.0", "javascript", "code")

    def test_empty_name_rejected(self):
        with pytest.raises(UpdateRejectedError):
            CodePackage("", "1.0", "wvm", "code")

    def test_python_language_accepted(self):
        package = CodePackage("x", "1.0", "python", "def handle(m, p, s):\n    return 1")
        assert package.language == "python"


class TestUpdateManifest:
    def test_sign_and_verify(self):
        developer = DeveloperIdentity("acme")
        manifest = developer.sign_update(make_package(), 0)
        assert manifest.verify(developer.public_key)
        assert manifest.sequence == 0
        assert manifest.package_digest == make_package().digest()

    def test_other_key_rejected(self):
        developer = DeveloperIdentity("acme")
        impostor = DeveloperIdentity("impostor")
        manifest = developer.sign_update(make_package(), 0)
        assert not manifest.verify(impostor.public_key)

    def test_tampered_manifest_rejected(self):
        developer = DeveloperIdentity("acme")
        manifest = developer.sign_update(make_package(), 0)
        tampered = UpdateManifest(
            package_name=manifest.package_name,
            version="6.6.6",
            sequence=manifest.sequence,
            package_digest=manifest.package_digest,
            signature=manifest.signature,
        )
        assert not tampered.verify(developer.public_key)

    def test_dict_round_trip(self):
        developer = DeveloperIdentity("acme")
        manifest = developer.sign_update(make_package(), 3)
        assert UpdateManifest.from_dict(manifest.to_dict()) == manifest

    def test_negative_sequence_rejected(self):
        with pytest.raises(UpdateRejectedError):
            DeveloperIdentity("acme").sign_update(make_package(), -1)

    def test_private_key_export(self):
        developer = DeveloperIdentity("acme")
        assert len(developer.export_private_key()) == 32


class TestReleaseRegistry:
    def _registry(self):
        return ReleaseRegistry("framework source text"), DeveloperIdentity("acme")

    def test_publish_and_lookup(self):
        registry, developer = self._registry()
        package = make_package()
        manifest = developer.sign_update(package, 0)
        digest = registry.publish(package, manifest)
        assert registry.lookup(digest).package == package
        assert registry.lookup_version("1.0.0").manifest == manifest
        assert registry.contains(digest)
        assert registry.versions() == ["1.0.0"]
        assert registry.digests() == [digest]

    def test_framework_source_exposed(self):
        registry, _ = self._registry()
        assert registry.framework_source() == "framework source text"

    def test_mismatched_manifest_rejected(self):
        registry, developer = self._registry()
        package = make_package()
        other_manifest = developer.sign_update(make_package("2.0.0"), 0)
        with pytest.raises(AuditError):
            registry.publish(package, other_manifest)

    def test_lookup_unknown_digest(self):
        registry, _ = self._registry()
        with pytest.raises(AuditError):
            registry.lookup(b"\x00" * 32)

    def test_lookup_unknown_version(self):
        registry, _ = self._registry()
        with pytest.raises(AuditError):
            registry.lookup_version("9.9.9")

    def test_verify_source(self):
        registry, developer = self._registry()
        package = make_package()
        digest = registry.publish(package, developer.sign_update(package, 0))
        assert registry.verify_source(digest)
