"""Unit tests for the application-independent framework."""

import pytest

from repro.core.framework import TrustDomainFramework, framework_source
from repro.core.package import CodePackage, DeveloperIdentity
from repro.crypto.bilinear import BLS_SCALAR_ORDER
from repro.errors import FrameworkError, UnauthorizedUpdateError, UpdateRejectedError
from repro.sandbox.programs import bls_share_source

PYTHON_APP_V1 = """
def init(config):
    previous = config.get("previous_state")
    if previous:
        return previous
    return {"counter": 0}

def handle(method, params, state):
    if method == "bump":
        state["counter"] = state["counter"] + 1
        return state["counter"]
    if method == "read":
        return state["counter"]
    raise ValueError("unknown method")
"""

PYTHON_APP_V2 = PYTHON_APP_V1.replace('"counter"] + 1', '"counter"] + 10')


def make_framework():
    developer = DeveloperIdentity("acme")
    framework = TrustDomainFramework("domain-under-test", developer.public_key)
    return developer, framework


def wvm_package(version="1.0.0"):
    return CodePackage("custody", version, "wvm", bls_share_source())


def python_package(version="1.0.0", source=PYTHON_APP_V1):
    return CodePackage("counter", version, "python", source)


class TestInstallUpdate:
    def test_install_first_version(self):
        developer, framework = make_framework()
        package = wvm_package()
        result = framework.install_update(developer.sign_update(package, 0), package)
        assert result["installed"] is True
        assert framework.current_digest() == package.digest()
        assert framework.state().sequence == 0
        assert framework.state().log_length == 1

    def test_unsigned_update_rejected(self):
        developer, framework = make_framework()
        impostor = DeveloperIdentity("impostor")
        package = wvm_package()
        with pytest.raises(UnauthorizedUpdateError):
            framework.install_update(impostor.sign_update(package, 0), package)

    def test_wrong_digest_rejected(self):
        developer, framework = make_framework()
        manifest = developer.sign_update(wvm_package(), 0)
        different_package = wvm_package(version="9.9.9")
        with pytest.raises(UpdateRejectedError):
            framework.install_update(manifest, different_package)

    def test_sequence_replay_rejected(self):
        developer, framework = make_framework()
        package = wvm_package()
        manifest = developer.sign_update(package, 0)
        framework.install_update(manifest, package)
        with pytest.raises(UpdateRejectedError):
            framework.install_update(manifest, package)

    def test_sequence_gap_rejected(self):
        developer, framework = make_framework()
        package = wvm_package()
        with pytest.raises(UpdateRejectedError):
            framework.install_update(developer.sign_update(package, 5), package)

    def test_rollback_rejected(self):
        developer, framework = make_framework()
        v1, v2 = wvm_package("1.0.0"), wvm_package("2.0.0")
        framework.install_update(developer.sign_update(v1, 0), v1)
        framework.install_update(developer.sign_update(v2, 1), v2)
        with pytest.raises(UpdateRejectedError):
            framework.install_update(developer.sign_update(v1, 0), v1)

    def test_announcement_precedes_switch(self):
        developer, framework = make_framework()
        observed = []
        framework.update_listeners.append(
            lambda announcement: observed.append(
                (announcement.version, framework.current_digest())
            )
        )
        package = wvm_package()
        framework.install_update(developer.sign_update(package, 0), package)
        # At announcement time the old (empty) code was still current.
        assert observed == [("1.0.0", b"")]

    def test_every_version_logged(self):
        developer, framework = make_framework()
        versions = ["1.0.0", "1.1.0", "2.0.0"]
        for sequence, version in enumerate(versions):
            package = wvm_package(version)
            framework.install_update(developer.sign_update(package, sequence), package)
        log = framework.log_export()
        assert [entry["version"] for entry in log] == versions
        assert [a.version for a in framework.announcements()] == versions

    def test_rejected_update_not_logged(self):
        developer, framework = make_framework()
        package = wvm_package()
        framework.install_update(developer.sign_update(package, 0), package)
        impostor_package = wvm_package("6.6.6")
        with pytest.raises(UnauthorizedUpdateError):
            framework.install_update(
                DeveloperIdentity("impostor").sign_update(impostor_package, 1), impostor_package
            )
        assert framework.state().log_length == 1
        assert len(framework.announcements()) == 1


class TestInvocation:
    def test_wvm_invocation(self):
        developer, framework = make_framework()
        package = wvm_package()
        framework.install_update(developer.sign_update(package, 0), package)
        result = framework.invoke_application("scalar_mul", [7, 9, BLS_SCALAR_ORDER])
        assert result["value"] == 63
        assert result["fuel_used"] > 0

    def test_python_invocation(self):
        developer, framework = make_framework()
        package = python_package()
        framework.install_update(developer.sign_update(package, 0), package)
        assert framework.invoke_application("bump", {})["value"] == 1
        assert framework.invoke_application("bump", {})["value"] == 2

    def test_invoke_before_install_rejected(self):
        _, framework = make_framework()
        with pytest.raises(FrameworkError):
            framework.invoke_application("anything", [])

    def test_wvm_requires_list_arguments(self):
        developer, framework = make_framework()
        package = wvm_package()
        framework.install_update(developer.sign_update(package, 0), package)
        with pytest.raises(FrameworkError):
            framework.invoke_application("scalar_mul", {"a": 1})

    def test_python_state_carried_across_update(self):
        developer, framework = make_framework()
        v1 = python_package("1.0.0", PYTHON_APP_V1)
        framework.install_update(developer.sign_update(v1, 0), v1)
        framework.invoke_application("bump", {})
        framework.invoke_application("bump", {})
        v2 = python_package("2.0.0", PYTHON_APP_V2)
        framework.install_update(developer.sign_update(v2, 1), v2)
        # Counter state survived the update; new code bumps by 10.
        assert framework.invoke_application("read", {})["value"] == 2
        assert framework.invoke_application("bump", {})["value"] == 12


class TestAuditSurface:
    def test_audit_user_data_binds_digest_and_log(self):
        developer, framework = make_framework()
        before = framework.audit_user_data()
        package = wvm_package()
        framework.install_update(developer.sign_update(package, 0), package)
        after = framework.audit_user_data()
        assert before != after

    def test_dispatch_routes_methods(self):
        developer, framework = make_framework()
        package = wvm_package()
        framework.dispatch("install_update", {
            "manifest": developer.sign_update(package, 0).to_dict(),
            "package": package.to_dict(),
        })
        state = framework.dispatch("get_state", {})
        assert state["app_version"] == "1.0.0"
        assert framework.dispatch("health", {})["ok"] is True
        assert len(framework.dispatch("get_log", {})) == 1
        assert len(framework.dispatch("get_announcements", {})) == 1

    def test_dispatch_unknown_method(self):
        _, framework = make_framework()
        with pytest.raises(FrameworkError):
            framework.dispatch("format_disk", {})

    def test_framework_source_is_this_module(self):
        source = framework_source()
        assert "class TrustDomainFramework" in source
        assert "install_update" in source
