"""Tests for the batched invocation pipeline: sandbox → framework → deployment."""

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.package import CodePackage, DeveloperIdentity
from repro.errors import RpcError, SandboxError
from repro.net.latency import lan_profile
from repro.net.transport import Network
from repro.sandbox.pysandbox import PythonSandbox

COUNTER_APP = '''
def init(config):
    return {"total": 0}

def handle(method, params, state):
    if method == "add":
        state["total"] = state["total"] + params["n"]
        return {"total": state["total"]}
    if method == "get":
        return {"total": state["total"]}
    if method == "fail":
        raise ValueError("requested failure")
    raise ValueError("unknown method: " + method)
'''


def make_deployment(routed: bool):
    developer = DeveloperIdentity("batch-test-developer")
    deployment = Deployment("batch-test", developer,
                            DeploymentConfig(num_domains=3))
    package = CodePackage("counter", "1.0.0", "python", COUNTER_APP)
    deployment.publish_and_install(package)
    network = None
    if routed:
        network = Network(clock=deployment.clock, default_latency=lan_profile())
        deployment.route_via_network(network, attempts=1)
    return deployment, network


class TestSandboxInvokeMany:
    def test_batch_matches_sequential_invokes(self):
        batch_sandbox = PythonSandbox(COUNTER_APP)
        sequential_sandbox = PythonSandbox(COUNTER_APP)
        calls = [{"method": "add", "params": {"n": i}} for i in range(10)]
        batch_results = batch_sandbox.invoke_many(calls)
        sequential_results = [
            sequential_sandbox.invoke("add", {"n": i}) for i in range(10)
        ]
        assert [r["value"] for r in batch_results] == sequential_results
        assert batch_sandbox.invocations == sequential_sandbox.invocations == 10

    def test_per_call_error_isolation(self):
        sandbox = PythonSandbox(COUNTER_APP)
        results = sandbox.invoke_many([
            {"method": "add", "params": {"n": 1}},
            {"method": "fail", "params": None},
            {"method": "add", "params": {"n": 2}},
        ])
        assert results[0]["ok"] and results[0]["value"]["total"] == 1
        assert not results[1]["ok"] and "requested failure" in results[1]["error"]
        assert results[2]["ok"] and results[2]["value"]["total"] == 3

    def test_single_invoke_still_raises(self):
        sandbox = PythonSandbox(COUNTER_APP)
        with pytest.raises(SandboxError):
            sandbox.invoke("fail", None)


class TestDeploymentInvokeBatch:
    @pytest.mark.parametrize("routed", [False, True])
    def test_batch_matches_sequential_invoke(self, routed):
        deployment, _ = make_deployment(routed)
        calls = [("add", {"n": i}) for i in range(25)]
        results = deployment.invoke_batch(1, calls, chunk_size=8)
        assert [r["value"]["total"] for r in results] == [
            sum(range(i + 1)) for i in range(25)
        ]
        check = deployment.invoke(1, "get", {})
        assert check["value"]["total"] == sum(range(25))

    @pytest.mark.parametrize("routed", [False, True])
    def test_per_call_errors_are_instances_not_raises(self, routed):
        deployment, _ = make_deployment(routed)
        results = deployment.invoke_batch(0, [
            ("add", {"n": 5}), ("fail", None), ("add", {"n": 7}),
        ])
        assert results[0]["value"]["total"] == 5
        assert isinstance(results[1], RpcError)
        assert "requested failure" in str(results[1])
        assert results[2]["value"]["total"] == 12

    def test_heterogeneous_batch_uses_calls_form(self):
        deployment, _ = make_deployment(True)
        results = deployment.invoke_batch(2, [
            ("add", {"n": 3}), ("get", {}), ("add", {"n": 4}),
        ])
        assert results[0]["value"]["total"] == 3
        assert results[1]["value"]["total"] == 3
        assert results[2]["value"]["total"] == 7

    def test_empty_batch(self):
        deployment, _ = make_deployment(False)
        assert deployment.invoke_batch(0, []) == []

    def test_state_agrees_between_batched_and_unbatched_domains(self):
        """The same workload through both paths leaves identical app state."""
        deployment, _ = make_deployment(True)
        for i in range(12):
            deployment.invoke(0, "add", {"n": i})
        deployment.invoke_batch(1, [("add", {"n": i}) for i in range(12)])
        unbatched_total = deployment.invoke(0, "get", {})["value"]["total"]
        batched_total = deployment.invoke(1, "get", {})["value"]["total"]
        assert unbatched_total == batched_total == sum(range(12))

    def test_batch_traffic_is_subject_to_faults(self):
        """A partitioned domain fails the whole batch with per-call errors."""
        deployment, network = make_deployment(True)
        network.partition(deployment.client_address, deployment.domains[1].domain_id)
        results = deployment.invoke_batch(1, [("add", {"n": 1}), ("get", {})])
        assert all(isinstance(result, Exception) for result in results)

    def test_wvm_app_batches_too(self):
        from repro.sandbox.programs import bls_share_source

        developer = DeveloperIdentity("batch-wvm-developer")
        deployment = Deployment("batch-wvm", developer,
                                DeploymentConfig(num_domains=2))
        package = CodePackage("bls-custody", "1.0.0", "wvm", bls_share_source())
        deployment.publish_and_install(package)
        from repro.crypto.bilinear import BLS_SCALAR_ORDER

        message_int = int.from_bytes(b"tx", "big")
        calls = [("bls_share", [message_int + i, 2, 12345, BLS_SCALAR_ORDER])
                 for i in range(3)]
        batched = deployment.invoke_batch(1, calls)
        sequential = [deployment.invoke(1, "bls_share", list(params))
                      for _, params in calls]
        assert [r["value"] for r in batched] == [r["value"] for r in sequential]


class TestEnclaveBoundaryOnBatchPath:
    def test_compromised_enclave_rejects_batches_without_vsock(self):
        """Regression: the raw fast path must still cross the enclave boundary.

        Without vsock hops the batch is dispatched directly; it must still go
        through enclave.call so a compromised enclave rejects batched invokes
        exactly as it rejects single ones.
        """
        developer = DeveloperIdentity("novsock-developer")
        deployment = Deployment("novsock", developer,
                                DeploymentConfig(num_domains=2, use_vsock=False))
        package = CodePackage("counter", "1.0.0", "python", COUNTER_APP)
        deployment.publish_and_install(package)
        network = Network(clock=deployment.clock, default_latency=lan_profile())
        deployment.route_via_network(network, attempts=1)
        deployment.domains[1].compromise()
        with pytest.raises(RpcError, match="Compromised"):
            deployment.invoke(1, "get", {})
        batch_results = deployment.invoke_batch(1, [("get", {}), ("add", {"n": 1})])
        assert all(isinstance(result, RpcError) for result in batch_results)
        assert "Compromised" in str(batch_results[0])
