"""Negative-path tests for the update framework.

Replays, forged manifests, and rollbacks are the moves a compromised network
or developer key would actually try. Every one of them must be rejected *and*
leave no trace: the append-only digest log (and its attested head) must be
exactly what it was before the attempt.
"""

import pytest

from repro.core.framework import TrustDomainFramework
from repro.core.package import CodePackage, DeveloperIdentity, UpdateManifest
from repro.errors import UnauthorizedUpdateError, UpdateRejectedError

APP_V1 = "def init(config):\n    return {}\ndef handle(method, params, state):\n    return {'v': 1}\n"
APP_V2 = "def init(config):\n    return {}\ndef handle(method, params, state):\n    return {'v': 2}\n"


def make_framework(developer: DeveloperIdentity) -> TrustDomainFramework:
    return TrustDomainFramework("negative-test-domain", developer.public_key)


def snapshot(framework: TrustDomainFramework):
    """The observable log state an auditor would compare before/after."""
    return (framework.log_head(), len(framework.log_export()),
            [a.to_dict() for a in framework.announcements()], framework.current_digest())


class TestReplayAndRollback:
    def test_replayed_manifest_rejected_and_log_unchanged(self):
        developer = DeveloperIdentity("dev")
        framework = make_framework(developer)
        package = CodePackage("app", "1.0.0", "python", APP_V1)
        manifest = developer.sign_update(package, 0)
        framework.install_update(manifest, package)
        before = snapshot(framework)
        with pytest.raises(UpdateRejectedError, match="replay or rollback"):
            framework.install_update(manifest, package)
        assert snapshot(framework) == before

    def test_update_then_rollback_rejected(self):
        """Re-signing the old version with a stale sequence must not roll back."""
        developer = DeveloperIdentity("dev")
        framework = make_framework(developer)
        v1 = CodePackage("app", "1.0.0", "python", APP_V1)
        v2 = CodePackage("app", "2.0.0", "python", APP_V2)
        framework.install_update(developer.sign_update(v1, 0), v1)
        framework.install_update(developer.sign_update(v2, 1), v2)
        before = snapshot(framework)
        for stale_sequence in (0, 1):
            with pytest.raises(UpdateRejectedError):
                framework.install_update(developer.sign_update(v1, stale_sequence), v1)
        assert snapshot(framework) == before
        assert framework.current_package.version == "2.0.0"

    def test_skipped_sequence_rejected(self):
        developer = DeveloperIdentity("dev")
        framework = make_framework(developer)
        package = CodePackage("app", "1.0.0", "python", APP_V1)
        before = snapshot(framework)
        with pytest.raises(UpdateRejectedError):
            framework.install_update(developer.sign_update(package, 5), package)
        assert snapshot(framework) == before


class TestForgedManifests:
    def test_wrong_developer_key_rejected_and_log_unchanged(self):
        developer = DeveloperIdentity("real-dev")
        impostor = DeveloperIdentity("impostor")
        framework = make_framework(developer)
        package = CodePackage("app", "1.0.0", "python", APP_V1)
        before = snapshot(framework)
        with pytest.raises(UnauthorizedUpdateError):
            framework.install_update(impostor.sign_update(package, 0), package)
        assert snapshot(framework) == before
        assert framework.current_package is None

    def test_digest_mismatch_rejected(self):
        """A signed manifest must not install a *different* package's code."""
        developer = DeveloperIdentity("dev")
        framework = make_framework(developer)
        announced = CodePackage("app", "1.0.0", "python", APP_V1)
        swapped = CodePackage("app", "1.0.0", "python", APP_V2)
        before = snapshot(framework)
        with pytest.raises(UpdateRejectedError, match="digest"):
            framework.install_update(developer.sign_update(announced, 0), swapped)
        assert snapshot(framework) == before

    def test_metadata_mismatch_rejected(self):
        developer = DeveloperIdentity("dev")
        framework = make_framework(developer)
        package = CodePackage("app", "1.0.0", "python", APP_V1)
        good = developer.sign_update(package, 0)
        tampered = UpdateManifest(
            package_name=good.package_name, version="9.9.9", sequence=good.sequence,
            package_digest=good.package_digest, signature=good.signature,
        )
        before = snapshot(framework)
        with pytest.raises(UpdateRejectedError):
            framework.install_update(tampered, package)
        assert snapshot(framework) == before

    def test_failed_update_makes_no_announcement(self):
        """Announcements only happen for updates that will actually be logged."""
        developer = DeveloperIdentity("dev")
        impostor = DeveloperIdentity("impostor")
        framework = make_framework(developer)
        package = CodePackage("app", "1.0.0", "python", APP_V1)
        heard = []
        framework.update_listeners.append(heard.append)
        with pytest.raises(UnauthorizedUpdateError):
            framework.install_update(impostor.sign_update(package, 0), package)
        assert heard == []
