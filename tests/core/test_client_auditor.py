"""Integration tests for the auditing client, third-party auditor, and evidence."""

import pytest

from repro.core.auditor import ThirdPartyAuditor
from repro.core.client import AuditingClient
from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.evidence import AttestationFailureEvidence
from repro.core.package import CodePackage, DeveloperIdentity
from repro.core.trust_domain import expected_framework_measurement
from repro.enclave.attestation import AttestationVerifier
from repro.errors import MisbehaviorDetected
from repro.sandbox.programs import bls_share_source


def wvm_package(version="1.0.0", extra=""):
    return CodePackage("custody", version, "wvm", bls_share_source() + extra)


def make_deployment(num_domains=3):
    developer = DeveloperIdentity("acme")
    deployment = Deployment("audited", developer, DeploymentConfig(num_domains=num_domains))
    deployment.publish_and_install(wvm_package())
    return developer, deployment


class TestHonestDeployment:
    def test_audit_passes(self):
        _, deployment = make_deployment()
        client = AuditingClient(deployment.vendor_registry)
        report = client.audit_deployment(deployment)
        assert report.ok
        assert report.checked_against_release_log
        assert report.agreed_digest == wvm_package().digest()
        assert all(result.ok for result in report.domain_results)
        enclave_results = [r for r in report.domain_results if r.hardware_type != "none"]
        assert all(result.attested for result in enclave_results)

    def test_audit_or_raise_passes(self):
        _, deployment = make_deployment()
        client = AuditingClient(deployment.vendor_registry)
        assert client.audit_or_raise(deployment).ok

    def test_audit_after_legitimate_update_passes(self):
        _, deployment = make_deployment()
        deployment.publish_and_install(wvm_package("1.1.0", extra="\n; bugfix"))
        client = AuditingClient(deployment.vendor_registry)
        report = client.audit_deployment(deployment)
        assert report.ok
        assert all(result.log_length == 2 for result in report.domain_results)

    def test_third_party_auditor_agrees(self):
        _, deployment = make_deployment()
        auditor = ThirdPartyAuditor("eff", deployment)
        auditor.run_audit()
        assert auditor.deployment_healthy


class TestMisbehaviorDetection:
    def test_partial_malicious_update_detected(self):
        """A (compromised) developer updates only one domain with unpublished code."""
        developer, deployment = make_deployment()
        rogue = wvm_package("6.6.6", extra="\n; exfiltrate keys")
        rogue_manifest = developer.sign_update(rogue, deployment.current_sequence + 1)
        deployment.install_on_domain(1, rogue_manifest, rogue)

        client = AuditingClient(deployment.vendor_registry)
        report = client.audit_deployment(deployment)
        assert not report.ok
        kinds = {evidence.kind for evidence in report.evidence}
        assert "digest-mismatch" in kinds
        assert "unpublished-code" in kinds

    def test_digest_mismatch_evidence_is_publicly_verifiable(self):
        developer, deployment = make_deployment()
        rogue = wvm_package("6.6.6", extra="\n; backdoor")
        deployment.install_on_domain(
            2, developer.sign_update(rogue, deployment.current_sequence + 1), rogue
        )
        client = AuditingClient(deployment.vendor_registry)
        report = client.audit_deployment(deployment)
        verifier = AttestationVerifier(deployment.vendor_registry)
        mismatches = [e for e in report.evidence if e.kind == "digest-mismatch"]
        assert mismatches
        for evidence in mismatches:
            assert evidence.verify(verifier, expected_framework_measurement())

    def test_audit_or_raise_carries_evidence(self):
        developer, deployment = make_deployment()
        rogue = wvm_package("6.6.6", extra="\n; rogue")
        deployment.install_on_domain(
            1, developer.sign_update(rogue, deployment.current_sequence + 1), rogue
        )
        client = AuditingClient(deployment.vendor_registry)
        with pytest.raises(MisbehaviorDetected):
            client.audit_or_raise(deployment)

    def test_wrong_framework_measurement_detected(self):
        """A domain running modified framework code fails attestation."""
        _, deployment = make_deployment()
        from repro.enclave.measurement import measure_code

        wrong_expectation = measure_code(b"definitely not the framework", "repro-framework")
        client = AuditingClient(deployment.vendor_registry,
                                expected_measurement=wrong_expectation)
        report = client.audit_deployment(deployment)
        assert not report.ok
        failures = report.failures()
        assert failures
        assert all("attestation invalid" in f.reason for f in failures)
        assert any(isinstance(e, AttestationFailureEvidence) for e in report.evidence)

    def test_attestation_failure_evidence_verifiable(self):
        _, deployment = make_deployment()
        from repro.enclave.measurement import measure_code

        wrong_expectation = measure_code(b"not the framework", "repro-framework")
        client = AuditingClient(deployment.vendor_registry,
                                expected_measurement=wrong_expectation)
        report = client.audit_deployment(deployment)
        verifier = AttestationVerifier(deployment.vendor_registry)
        attestation_evidence = [e for e in report.evidence
                                if isinstance(e, AttestationFailureEvidence)]
        assert attestation_evidence
        for evidence in attestation_evidence:
            assert evidence.verify(verifier, wrong_expectation)

    def test_untrusted_vendor_detected(self):
        """A deployment on hardware the client does not trust fails the audit."""
        from repro.enclave.vendor import HardwareVendor, VendorRegistry

        developer = DeveloperIdentity("acme")
        deployment = Deployment(
            "rogue-cloud", developer, DeploymentConfig(num_domains=2),
            vendors=[HardwareVendor("unknown-cloud"), HardwareVendor("unknown-cloud-2")],
        )
        deployment.publish_and_install(wvm_package())
        client = AuditingClient(VendorRegistry.default())
        report = client.audit_deployment(deployment)
        assert not report.ok

    def test_unpublished_code_detected_even_when_domains_agree(self):
        """All domains run the same code, but its source was never published."""
        developer, deployment = make_deployment()
        rogue = wvm_package("6.6.6", extra="\n; stealth")
        manifest = developer.sign_update(rogue, deployment.current_sequence + 1)
        for index in range(len(deployment.domains)):
            deployment.install_on_domain(index, manifest, rogue)

        client = AuditingClient(deployment.vendor_registry)
        report = client.audit_deployment(deployment)
        assert not report.ok
        assert any(e.kind == "unpublished-code" for e in report.evidence)

    def test_auditor_reports_critical_findings(self):
        developer, deployment = make_deployment()
        rogue = wvm_package("6.6.6", extra="\n; sneaky")
        deployment.install_on_domain(
            1, developer.sign_update(rogue, deployment.current_sequence + 1), rogue
        )
        auditor = ThirdPartyAuditor("eff", deployment)
        findings = auditor.run_audit()
        assert any(f.severity == "critical" for f in findings)
        assert not auditor.deployment_healthy
