"""Unit tests for the CT-style public log, gossip, and monitors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import SigningKey
from repro.errors import LogError, SplitViewError
from repro.transparency.ct_log import CtLog, SignedTreeHead
from repro.transparency.gossip import GossipPool, SplitViewEvidence, check_views_consistent
from repro.transparency.monitor import LogMonitor


def make_log(n: int = 0, log_id: str = "releases") -> CtLog:
    log = CtLog(log_id)
    for i in range(n):
        log.append(f"release-{i}".encode())
    return log


class TestCtLog:
    def test_append_and_entry_access(self):
        log = make_log(3)
        assert log.size == 3
        assert log.entry(1) == b"release-1"
        assert log.entries() == [b"release-0", b"release-1", b"release-2"]
        with pytest.raises(LogError):
            log.entry(5)

    def test_find(self):
        log = make_log(4)
        assert log.find(b"release-2") == 2
        with pytest.raises(LogError):
            log.find(b"never published")

    def test_signed_tree_head_verifies(self):
        log = make_log(5)
        head = log.signed_tree_head()
        assert head.tree_size == 5
        assert head.verify(log.public_key)

    def test_tree_head_signature_bound_to_contents(self):
        log = make_log(5)
        head = log.signed_tree_head()
        forged = SignedTreeHead(
            log_id=head.log_id,
            tree_size=head.tree_size,
            root_hash=b"\x00" * 32,
            timestamp_us=head.timestamp_us,
            signature=head.signature,
        )
        assert not forged.verify(log.public_key)

    def test_wrong_key_rejected(self):
        log = make_log(2)
        other = SigningKey.from_seed(b"not the log key").verifying_key()
        assert not log.signed_tree_head().verify(other)

    def test_head_dict_round_trip(self):
        head = make_log(3).signed_tree_head()
        assert SignedTreeHead.from_dict(head.to_dict()) == head

    def test_inclusion_proof_end_to_end(self):
        log = make_log(9)
        head = log.signed_tree_head()
        for i in range(9):
            proof = log.inclusion_proof(i)
            assert CtLog.verify_inclusion(log.entry(i), proof, head, log.public_key)

    def test_inclusion_proof_rejects_wrong_entry(self):
        log = make_log(9)
        head = log.signed_tree_head()
        proof = log.inclusion_proof(4)
        assert not CtLog.verify_inclusion(b"forged", proof, head, log.public_key)

    def test_inclusion_proof_size_mismatch_rejected(self):
        log = make_log(9)
        proof = log.inclusion_proof(4, tree_size=8)
        head = log.signed_tree_head()
        assert not CtLog.verify_inclusion(log.entry(4), proof, head, log.public_key)

    def test_consistency_proof_end_to_end(self):
        log = make_log(4)
        old_head = log.signed_tree_head()
        for i in range(4, 11):
            log.append(f"release-{i}".encode())
        new_head = log.signed_tree_head()
        proof = log.consistency_proof(old_head.tree_size, new_head.tree_size)
        assert CtLog.verify_consistency(old_head, new_head, proof, log.public_key)

    def test_consistency_size_mismatch_rejected(self):
        log = make_log(6)
        old_head = log.signed_tree_head(4)
        new_head = log.signed_tree_head()
        wrong_proof = log.consistency_proof(3, 6)
        assert not CtLog.verify_consistency(old_head, new_head, wrong_proof, log.public_key)

    def test_truncated_tree_fails_consistency(self):
        # A rewinding operator serves a "newer" head that describes fewer
        # entries than the one the client already holds. No proof can link
        # the two: the sizes embedded in the proof never match both heads.
        log = make_log(8)
        old_head = log.signed_tree_head()
        truncated_head = log.signed_tree_head(5)
        proof = log.consistency_proof(5, 8)
        assert not CtLog.verify_consistency(old_head, truncated_head, proof,
                                            log.public_key)

    def test_truncated_then_regrown_log_fails_consistency(self):
        # The operator drops the last three entries and regrows past the
        # client's old size with different content. Both heads carry valid
        # signatures (same log id, same deterministic key), so only the
        # consistency proof stands between the client and the rollback.
        log_a = make_log(8, log_id="rollback")
        old_head = log_a.signed_tree_head()
        log_b = CtLog("rollback")
        for i in range(5):
            log_b.append(f"release-{i}".encode())
        for i in range(5, 10):
            log_b.append(f"rewritten-{i}".encode())
        new_head = log_b.signed_tree_head()
        proof = log_b.consistency_proof(old_head.tree_size, new_head.tree_size)
        assert not CtLog.verify_consistency(old_head, new_head, proof,
                                            log_b.public_key)

    def test_swapped_leaves_fail_consistency(self):
        # Reordering history is as much a rewrite as changing it: a log that
        # swaps two entries inside the client's prefix cannot prove the old
        # head is a prefix of the new tree.
        log_a = make_log(6, log_id="swapper")
        old_head = log_a.signed_tree_head()
        entries = [f"release-{i}".encode() for i in range(6)]
        entries[1], entries[4] = entries[4], entries[1]
        log_b = CtLog("swapper")
        for entry in entries:
            log_b.append(entry)
        for i in range(6, 9):
            log_b.append(f"release-{i}".encode())
        new_head = log_b.signed_tree_head()
        proof = log_b.consistency_proof(old_head.tree_size, new_head.tree_size)
        assert not CtLog.verify_consistency(old_head, new_head, proof,
                                            log_b.public_key)

    def test_monotonic_timestamps_enforced(self):
        log = CtLog("l")
        log.append(b"a", timestamp_us=100)
        with pytest.raises(LogError):
            log.append(b"b", timestamp_us=50)

    def test_deterministic_key_from_log_id(self):
        assert CtLog("same-id").public_key == CtLog("same-id").public_key


class TestGossip:
    def test_consistent_views_produce_no_evidence(self):
        log = make_log(5)
        pool = GossipPool(log.public_key)
        head = log.signed_tree_head()
        assert pool.submit("client-a", head) == []
        assert pool.submit("client-b", head) == []
        assert pool.evidence == []
        assert pool.observations == 2
        assert pool.observers() == ["client-a", "client-b"]

    def test_split_view_detected(self):
        # Two logs sharing a key (same log_id) but different contents model an
        # equivocating log operator.
        log_a = make_log(3, log_id="equivocator")
        log_b = CtLog("equivocator")
        for i in range(3):
            log_b.append(f"hidden-release-{i}".encode())
        pool = GossipPool(log_a.public_key)
        pool.submit("client-a", log_a.signed_tree_head())
        evidence = pool.submit("client-b", log_b.signed_tree_head())
        assert len(evidence) == 1
        assert evidence[0].verify(log_a.public_key)

    def test_invalid_gossiped_head_rejected(self):
        log = make_log(2)
        head = log.signed_tree_head()
        forged = SignedTreeHead(head.log_id, head.tree_size, b"\x01" * 32,
                                head.timestamp_us, head.signature)
        pool = GossipPool(log.public_key)
        with pytest.raises(SplitViewError):
            pool.submit("client", forged)

    def test_check_views_different_logs_ignored(self):
        a = make_log(2, log_id="log-a").signed_tree_head()
        b = make_log(2, log_id="log-b").signed_tree_head()
        assert check_views_consistent(a, b) is None

    def test_check_views_with_consistency_verifier(self):
        log = make_log(4)
        old_head = log.signed_tree_head()
        log.append(b"release-4")
        new_head = log.signed_tree_head()

        def verifier(older, newer):
            proof = log.consistency_proof(older.tree_size, newer.tree_size)
            return proof.verify(older.root_hash, newer.root_hash)

        assert check_views_consistent(old_head, new_head, verifier) is None

    def test_check_views_verifier_failure_is_evidence(self):
        log_a = make_log(3, log_id="x")
        log_b = CtLog("x")
        for i in range(5):
            log_b.append(f"other-{i}".encode())
        evidence = check_views_consistent(
            log_a.signed_tree_head(), log_b.signed_tree_head(), lambda o, n: False
        )
        assert isinstance(evidence, SplitViewEvidence)

    def test_evidence_requires_same_size_and_different_roots(self):
        log = make_log(3)
        head = log.signed_tree_head()
        evidence = SplitViewEvidence(head, head)
        assert not evidence.verify(log.public_key)


@settings(max_examples=25, deadline=None)
@given(
    shared=st.integers(min_value=0, max_value=12),
    divergent=st.integers(min_value=1, max_value=6),
)
def test_property_gossip_catches_every_same_size_split_view(shared, divergent):
    """Whatever the shared prefix, an equivocating pair of same-size views
    gossiped by two clients always yields verifiable evidence — and a third
    client on an honest view of either log never adds false evidence."""
    log_a = CtLog("property-equivocator")
    log_b = CtLog("property-equivocator")
    for i in range(shared):
        log_a.append(f"release-{i}".encode())
        log_b.append(f"release-{i}".encode())
    for i in range(divergent):
        log_a.append(f"honest-{i}".encode())
        log_b.append(f"hidden-{i}".encode())
    pool = GossipPool(log_a.public_key)
    assert pool.submit("client-a", log_a.signed_tree_head()) == []
    evidence = pool.submit("client-b", log_b.signed_tree_head())
    assert len(evidence) == 1
    assert evidence[0].verify(log_a.public_key)
    # An observer still at the shared-prefix size conflicts with neither
    # head: the pool only convicts on equal-size conflicting roots.
    repeat = pool.submit("client-c", log_a.signed_tree_head(shared))
    assert repeat == []
    assert pool.observers() == ["client-a", "client-b", "client-c"]
    assert len(pool.evidence) == 1


class TestMonitor:
    def test_healthy_log_produces_no_alerts(self):
        log = make_log(2)
        monitor = LogMonitor(log)
        assert monitor.poll() == []
        log.append(b"release-2")
        log.append(b"release-3")
        assert monitor.poll() == []
        assert monitor.healthy
        assert monitor.entries_seen == 4

    def test_entry_inspector_flags_entries(self):
        log = make_log(1)
        monitor = LogMonitor(
            log, entry_inspector=lambda e: "unannounced" if b"rogue" in e else None
        )
        monitor.poll()
        log.append(b"rogue-release")
        alerts = monitor.poll()
        assert len(alerts) == 1
        assert alerts[0].kind == "suspicious-entry"
        assert not monitor.healthy

    def test_inconsistent_log_detected(self):
        class MutatingLog(CtLog):
            """A log that rewrites history between polls (for the test only)."""

            def rewrite(self):
                self._tree._leaves[0] = b"rewritten"
                self._tree._leaf_hashes[0] = __import__("repro.crypto.merkle", fromlist=["leaf_hash"]).leaf_hash(b"rewritten")

        log = MutatingLog("mutant")
        log.append(b"original-0")
        log.append(b"original-1")
        monitor = LogMonitor(log)
        monitor.poll()
        log.rewrite()
        log.append(b"original-2")
        alerts = monitor.poll()
        assert any(a.kind == "inconsistency" for a in alerts)
