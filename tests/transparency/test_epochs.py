"""End-to-end tests for epoch transparency bundles and the standalone auditor.

The auditor here is constructed from two public keys and handed nothing but
the published artifacts (usually in their JSON wire form), mirroring its
deployment in a separate trust domain: everything it concludes must follow
from the artifact alone.
"""

import pytest

from repro.apps.keybackup import KeyBackupClient, KeyBackupDeployment
from repro.crypto import rng as crypto_rng
from repro.crypto.keys import SigningKey
from repro.errors import EpochBundleError, ReshardError
from repro.transparency.auditor import (
    AuditCheckpoint,
    AuditorService,
    verify_checkpoint,
)
from repro.transparency.epochs import (
    EpochArtifact,
    EpochPublisher,
    forge_migration_digest,
)
from repro.transparency.gossip import GossipPool

PROVED_CHECKS = {
    "signature-chain",
    "log-inclusion",
    "ring-transition",
    "digest-conservation",
    "attestation-measurements",
    "spare-pool-delta",
}
ADVISED_CHECKS = {"timing", "operator-intent"}


def published_epochs(*reshards: int, seed: int = 77):
    """A keybackup deployment with a publisher attached and epochs published."""
    with crypto_rng.deterministic(seed):
        service = KeyBackupDeployment(shards=2)
        client = KeyBackupClient(service, audit_before_use=False)
        for i in range(6):
            client.backup_key(f"user-{i}", 9000 + i)
        publisher = EpochPublisher(service.plane.spec.name)
        service.plane.epoch_publisher = publisher
        for count in reshards:
            service.reshard(count)
    return service, publisher


def auditor_for(publisher: EpochPublisher) -> AuditorService:
    return AuditorService(publisher.coordinator_key, publisher.log_key)


class _FlakyMigrator:
    """Delegates to the real migrator but crashes the first migrate call."""

    def __init__(self, inner):
        self._inner = inner
        self._crashed = False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def migrate(self, plane, source, target, keys):
        if not self._crashed:
            self._crashed = True
            raise RuntimeError("injected migrator crash")
        return self._inner.migrate(plane, source, target, keys)


class TestHonestEpochs:
    def test_grow_bundle_verifies_from_the_artifact_alone(self):
        _, publisher = published_epochs(4)
        assert len(publisher.artifacts) == 1
        verdict = auditor_for(publisher).verify(publisher.artifacts[0])
        assert verdict.ok, verdict.format()
        assert verdict.kind == "reshard"
        assert verdict.failing() == []
        assert verdict.cost_units > 0

    def test_clean_shrink_publishes_a_verifiable_bundle(self):
        # A shrink whose evacuation completes inside reshard() publishes a
        # regular reshard bundle recording the retired shards.
        _, publisher = published_epochs(4, 2)
        kinds = [artifact.bundle.kind for artifact in publisher.artifacts]
        assert kinds == ["reshard", "reshard"]
        shrink = publisher.artifacts[-1].bundle
        assert (shrink.old_shard_count, shrink.new_shard_count) == (4, 2)
        assert shrink.retired
        auditor = auditor_for(publisher)
        for artifact in publisher.artifacts:
            verdict = auditor.verify(artifact)
            assert verdict.ok, verdict.format()

    def test_faulted_reshard_drains_with_a_drain_bundle(self):
        # A migrator crash pins the affected keys; the epoch still commits
        # (with a bundle), and the later finish_reshard() drain pass
        # publishes its own kind="drain" bundle — both must verify.
        service, publisher = published_epochs()
        service.plane.migrator = _FlakyMigrator(service.plane.migrator)
        with crypto_rng.deterministic(78):
            with pytest.raises(ReshardError):
                service.reshard(4)
        with crypto_rng.deterministic(79):
            service.plane.finish_reshard()
        kinds = [artifact.bundle.kind for artifact in publisher.artifacts]
        assert kinds == ["reshard", "drain"]
        auditor = auditor_for(publisher)
        for artifact in publisher.artifacts:
            verdict = auditor.verify(artifact)
            assert verdict.ok, verdict.format()

    def test_wire_form_round_trips_and_verifies(self):
        _, publisher = published_epochs(4)
        artifact = publisher.artifacts[0]
        wire = artifact.to_dict()
        assert EpochArtifact.from_dict(wire) == artifact
        verdict = auditor_for(publisher).verify(wire)
        assert verdict.ok, verdict.format()

    def test_report_covers_every_check(self):
        _, publisher = published_epochs(4)
        verdict = auditor_for(publisher).verify(publisher.artifacts[0])
        proved = {c.name for c in verdict.checks if c.kind == "proved"}
        advised = {c.name for c in verdict.checks if c.kind == "advised"}
        assert proved == PROVED_CHECKS
        assert advised == ADVISED_CHECKS

    def test_format_is_deterministic_text(self):
        _, publisher = published_epochs(4)
        verdict = auditor_for(publisher).verify(publisher.artifacts[0])
        text = verdict.format()
        assert "VERIFIED" in text
        for name in PROVED_CHECKS | ADVISED_CHECKS:
            assert name in text


class TestForgedEpochs:
    def test_forged_digest_rejected_on_digest_conservation(self):
        # The compromised coordinator re-signs with the *real* key, so the
        # signature chain holds and only digest conservation convicts.
        _, publisher = published_epochs(4)
        forge_migration_digest(publisher)
        verdict = auditor_for(publisher).verify(publisher.artifacts[-1])
        assert not verdict.ok
        assert verdict.failing() == ["digest-conservation"]

    def test_honest_epoch_still_verifies_next_to_the_forgery(self):
        _, publisher = published_epochs(4)
        forge_migration_digest(publisher)
        verdict = auditor_for(publisher).verify(publisher.artifacts[0])
        assert verdict.ok, verdict.format()

    def test_wrong_coordinator_key_breaks_the_signature_chain(self):
        _, publisher = published_epochs(4)
        wrong = SigningKey.from_seed(b"not the coordinator").verifying_key()
        auditor = AuditorService(wrong, publisher.log_key)
        verdict = auditor.verify(publisher.artifacts[0])
        assert not verdict.ok
        assert "signature-chain" in verdict.failing()

    def test_unparseable_artifact_fails_closed(self):
        _, publisher = published_epochs(4)
        verdict = auditor_for(publisher).verify({"nonsense": True})
        assert not verdict.ok
        assert "artifact-parse" in verdict.failing()


class TestCheckpoint:
    def test_checkpoint_round_trip(self):
        _, publisher = published_epochs(4, 2)
        auditor = auditor_for(publisher)
        for artifact in publisher.artifacts:
            assert auditor.verify(artifact).ok
        checkpoint = auditor.checkpoint()
        assert checkpoint.all_ok
        assert len(checkpoint.epochs) == len(publisher.artifacts)
        assert verify_checkpoint(checkpoint, auditor.public_key)
        assert AuditCheckpoint.from_dict(checkpoint.to_dict()) == checkpoint

    def test_checkpoint_rejects_wrong_auditor_key(self):
        _, publisher = published_epochs(4)
        auditor = auditor_for(publisher)
        auditor.verify(publisher.artifacts[0])
        checkpoint = auditor.checkpoint()
        other = SigningKey.from_seed(b"impostor auditor").verifying_key()
        assert not verify_checkpoint(checkpoint, other)

    def test_checkpoint_requires_a_verified_epoch(self):
        _, publisher = published_epochs(4)
        with pytest.raises(EpochBundleError):
            auditor_for(publisher).checkpoint()

    def test_checkpoint_covers_only_verified_epochs(self):
        # A rejected artifact never enters the audit-once statement: clients
        # trusting the checkpoint only inherit epochs that actually verified.
        _, publisher = published_epochs(4)
        forge_migration_digest(publisher)
        auditor = auditor_for(publisher)
        for artifact in publisher.artifacts:
            auditor.verify(artifact)
        checkpoint = auditor.checkpoint()
        assert len(checkpoint.epochs) == 1
        assert checkpoint.all_ok
        assert verify_checkpoint(checkpoint, auditor.public_key)


class TestGossip:
    def test_two_auditors_on_one_honest_log_produce_no_evidence(self):
        _, publisher = published_epochs(4, 2)
        pool = GossipPool(publisher.log_key)
        for name in ("auditor-a", "auditor-b"):
            auditor = AuditorService(publisher.coordinator_key,
                                     publisher.log_key, name=name)
            for artifact in publisher.artifacts:
                assert auditor.verify(artifact).ok
            assert auditor.gossip(pool) == []
        assert pool.evidence == []
        assert pool.observers() == ["auditor-a", "auditor-b"]
