"""Unit tests for the per-TEE digest log."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashes import sha256
from repro.errors import LogError
from repro.transparency.log import DigestLog, DigestLogEntry


def digest(i: int) -> bytes:
    return sha256(f"code-{i}".encode())


class TestDigestLogBasics:
    def test_append_and_latest(self):
        log = DigestLog("domain-1")
        log.append(digest(0), "v1.0.0", 100.0)
        entry = log.append(digest(1), "v1.1.0", 200.0)
        assert log.latest() == entry
        assert len(log) == 2

    def test_empty_log_latest_raises(self):
        with pytest.raises(LogError):
            DigestLog("d").latest()

    def test_head_changes_on_append(self):
        log = DigestLog("d")
        initial = log.head()
        log.append(digest(0), "v1", 1.0)
        assert log.head() != initial

    def test_entries_slicing(self):
        log = DigestLog("d")
        for i in range(5):
            log.append(digest(i), f"v{i}", float(i))
        assert [e.version for e in log.entries(3)] == ["v3", "v4"]
        with pytest.raises(LogError):
            log.entries(9)

    def test_digest_history(self):
        log = DigestLog("d")
        log.append(digest(0), "v0", 0.0)
        log.append(digest(1), "v1", 1.0)
        assert log.digest_history() == [digest(0), digest(1)]

    def test_entry_dict_round_trip(self):
        log = DigestLog("d")
        entry = log.append(digest(0), "v0", 12.345678)
        restored = DigestLogEntry.from_dict(entry.to_dict())
        assert restored.code_digest == entry.code_digest
        assert restored.version == entry.version
        assert restored.chain_head == entry.chain_head
        assert restored.timestamp == pytest.approx(entry.timestamp, abs=1e-6)

    def test_chain_entries_verify(self):
        from repro.crypto.hashchain import HashChain

        log = DigestLog("d")
        for i in range(4):
            log.append(digest(i), f"v{i}", float(i))
        assert HashChain.verify_entries(log.chain_entries())


class TestExportVerification:
    def test_export_verifies_against_attested_head(self):
        log = DigestLog("d")
        for i in range(3):
            log.append(digest(i), f"v{i}", float(i))
        entries = DigestLog.verify_export(log.export(), log.head())
        assert [e.version for e in entries] == ["v0", "v1", "v2"]

    def test_tampered_digest_detected(self):
        log = DigestLog("d")
        log.append(digest(0), "v0", 0.0)
        log.append(digest(1), "v1", 1.0)
        exported = log.export()
        exported[0]["code_digest"] = sha256(b"malicious code, scrubbed from history")
        with pytest.raises(LogError):
            DigestLog.verify_export(exported, log.head())

    def test_dropped_entry_detected(self):
        log = DigestLog("d")
        log.append(digest(0), "v0", 0.0)
        log.append(digest(1), "v1", 1.0)
        exported = log.export()[1:]
        with pytest.raises(LogError):
            DigestLog.verify_export(exported, log.head())

    def test_wrong_head_detected(self):
        log = DigestLog("d")
        log.append(digest(0), "v0", 0.0)
        with pytest.raises(LogError):
            DigestLog.verify_export(log.export(), sha256(b"some other head"))

    def test_reordered_entries_detected(self):
        log = DigestLog("d")
        log.append(digest(0), "v0", 0.0)
        log.append(digest(1), "v1", 1.0)
        exported = list(reversed(log.export()))
        with pytest.raises(LogError):
            DigestLog.verify_export(exported, log.head())

    def test_empty_export_with_genesis_head(self):
        log = DigestLog("d")
        assert DigestLog.verify_export(log.export(), log.head()) == []


class TestViewConsistency:
    def test_prefix_views_consistent(self):
        log = DigestLog("d")
        log.append(digest(0), "v0", 0.0)
        old_view = log.export()
        log.append(digest(1), "v1", 1.0)
        assert DigestLog.views_consistent(old_view, log.export())

    def test_diverging_views_inconsistent(self):
        log_a = DigestLog("d")
        log_a.append(digest(0), "v0", 0.0)
        log_b = DigestLog("d")
        log_b.append(digest(99), "v0", 0.0)
        assert not DigestLog.views_consistent(log_a.export(), log_b.export())


@settings(max_examples=25, deadline=None)
@given(versions=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=20))
def test_property_export_always_verifies(versions):
    log = DigestLog("d")
    for i, version in enumerate(versions):
        log.append(digest(i), version, float(i))
    entries = DigestLog.verify_export(log.export(), log.head())
    assert len(entries) == len(versions)
