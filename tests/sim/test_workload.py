"""Tests for the multi-client workload driver and its scenario-engine composition."""

import pytest

from repro.sim import MultiClientWorkload
from repro.sim.faults import (
    CrashParty,
    DropFault,
    DuplicateFault,
    RecoverParty,
    ReorderFault,
)
from repro.sim.scenarios.matrix import default_matrix

APPS = ("keybackup", "prio", "threshold_sign", "odoh")


def run_small(app: str, batched: bool, **kwargs):
    ops = 4 if app == "threshold_sign" else 24
    return MultiClientWorkload(app, num_clients=ops, ops_per_client=1,
                               batched=batched, batch_size=8,
                               rpc_attempts=kwargs.pop("rpc_attempts", 1),
                               **kwargs).run()


class TestCleanNetworkRuns:
    @pytest.mark.parametrize("app", APPS)
    def test_batched_run_succeeds_and_stays_consistent(self, app):
        report = run_small(app, batched=True)
        assert report.succeeded == report.ops, report.failures[:3]
        assert report.consistent, report.consistency_issues
        assert report.ops_per_sec > 0

    @pytest.mark.parametrize("app", ["prio", "odoh"])
    def test_unbatched_run_succeeds(self, app):
        report = run_small(app, batched=False)
        assert report.succeeded == report.ops
        assert report.consistent

    def test_batching_collapses_message_count(self):
        batched = run_small("prio", batched=True)
        unbatched = run_small("prio", batched=False)
        assert batched.messages_sent < unbatched.messages_sent / 3

    def test_report_format_mentions_mode_and_throughput(self):
        report = run_small("prio", batched=True)
        text = report.format()
        assert "batched" in text and "ops/sec" in text
        assert report.to_dict()["consistent"] is True

    def test_rejects_unknown_app_and_bad_sizes(self):
        with pytest.raises(ValueError):
            MultiClientWorkload("nope")
        with pytest.raises(ValueError):
            MultiClientWorkload("prio", num_clients=0)
        with pytest.raises(ValueError):
            MultiClientWorkload("prio", batch_size=0)

    def test_latency_breakdown_covers_every_shard(self):
        report = MultiClientWorkload("prio", num_clients=24, batched=True,
                                     batch_size=8, shards=2, rpc_attempts=1).run()
        assert report.latency is not None and report.latency.count == 24
        assert report.latency.p99 >= report.latency.p95 > 0
        assert set(report.shard_latency) == {0, 1}
        assert sum(stats.count for stats in report.shard_latency.values()) == 24
        as_dict = report.to_dict()
        assert as_dict["latency"]["p99"] == report.latency.p99
        assert set(as_dict["shard_latency"]) == {0, 1}

    def test_unbatched_latency_is_per_operation(self):
        report = MultiClientWorkload("prio", num_clients=10, batched=False,
                                     rpc_attempts=1).run()
        assert report.latency is not None and report.latency.count == 10
        # One round trip per share per server: every op takes real sim time.
        assert report.latency.minimum > 0


class TestLiveReshardWorkload:
    def test_rejects_bad_reshard_parameters(self):
        with pytest.raises(ValueError):
            MultiClientWorkload("prio", num_clients=10, reshard_at_op=0,
                                reshard_to=4)
        with pytest.raises(ValueError):
            MultiClientWorkload("prio", num_clients=10, reshard_at_op=10,
                                reshard_to=4)
        with pytest.raises(ValueError):
            MultiClientWorkload("prio", num_clients=10, shards=2,
                                reshard_at_op=5, reshard_to=2)

    @pytest.mark.parametrize("app", ["keybackup", "prio"])
    def test_batched_run_survives_a_mid_run_reshard(self, app):
        report = MultiClientWorkload(app, num_clients=24, batched=True,
                                     batch_size=8, shards=2, rpc_attempts=1,
                                     reshard_at_op=12, reshard_to=4).run()
        assert report.succeeded == report.ops, report.failures[:3]
        assert report.consistent, report.consistency_issues
        assert report.resharded and report.reshard_to == 4
        # Batched mode fires the reshard at the span boundary containing the
        # requested op (span [8, 16) holds op 12).
        assert report.ops_before_reshard == 8
        assert report.reshard_summary["new_shard_count"] == 4
        assert report.reshard_summary["failed_keys"] == 0
        # Segment accounting: pre + migration + post = the whole run.
        assert 0 < report.sim_seconds_before_reshard < report.sim_seconds
        assert report.reshard_sim_seconds > 0
        # Post-reshard ops are attributed to the grown fleet.
        assert any(shard >= 2 for shard in report.shard_latency)

    def test_unbatched_run_reshards_at_the_exact_op(self):
        report = MultiClientWorkload("odoh", num_clients=8, batched=False,
                                     shards=2, rpc_attempts=1,
                                     reshard_at_op=4, reshard_to=3).run()
        assert report.succeeded == report.ops, report.failures[:3]
        assert report.consistent
        assert report.resharded and report.ops_before_reshard == 4

    def test_from_scenario_forwards_the_shard_layout(self):
        """A sharded/reshard scenario composes into a load run with the same
        shard count, so its shard-named events hit real addresses."""
        from repro.sim.scenarios.matrix import reshard_matrix, sharded_matrix

        sharded = next(s for s in sharded_matrix()
                       if s.name == "prio-reorder-jitter-4shards")
        workload = MultiClientWorkload.from_scenario(sharded, num_clients=12)
        assert workload.shards == sharded.shards == 4
        report = workload.run()
        assert report.shards == 4 and report.consistent

        reshard = next(s for s in reshard_matrix()
                       if s.name == "prio-reshard-under-load")
        workload = MultiClientWorkload.from_scenario(reshard, num_clients=12,
                                                     batch_size=4)
        assert workload.shards == 2
        report = workload.run()
        # The scenario's ReshardService event fired mid-run: the plane grew
        # from the scenario's declared 2 shards to 4.
        assert report.consistent
        assert any(shard >= 2 for shard in report.shard_latency), report.shard_latency

    def test_segment_throughput_appears_in_report_output(self):
        report = MultiClientWorkload("prio", num_clients=30, batched=True,
                                     batch_size=15, shards=2, rpc_attempts=1,
                                     service_time=0.001,
                                     reshard_at_op=15, reshard_to=4).run()
        assert report.pre_reshard_sim_ops_per_sec > 0
        assert report.post_reshard_sim_ops_per_sec > 0
        text = report.format()
        assert "resharded to 4" in text and "reshard: at op 15" in text
        as_dict = report.to_dict()
        assert as_dict["resharded"] is True
        assert as_dict["post_reshard_sim_ops_per_sec"] == (
            report.post_reshard_sim_ops_per_sec)


class TestFaultComposition:
    def test_lossy_network_with_retries_stays_exact(self):
        report = MultiClientWorkload(
            "prio", num_clients=60, batched=True, batch_size=16,
            rules=(DropFault(probability=0.05),
                   DuplicateFault(probability=0.2, copies=1),
                   ReorderFault(probability=0.3, max_delay_s=0.01)),
            rpc_attempts=5,
        ).run()
        # Retries against at-most-once servers absorb the faults; whatever
        # was accepted must aggregate exactly (or the servers must refuse).
        assert report.consistent, report.consistency_issues
        assert report.success_rate >= 0.9
        assert report.retries > 0 or report.messages_dropped == 0

    def test_scheduled_crash_and_recovery_compose_with_batches(self):
        report = MultiClientWorkload(
            "keybackup", num_clients=24, batched=True, batch_size=8,
            events=(CrashParty(at_op=8, party="domain:3"),
                    RecoverParty(at_op=16, party="domain:3")),
            rpc_attempts=2,
        ).run()
        # A backup must reach every domain, so ops in the outage window fail
        # cleanly; liveness returns with the recovery, and nothing torn leaks
        # into the end state.
        failed_ops = {op_index for op_index, _ in report.failures}
        assert failed_ops == set(range(8, 16)), sorted(failed_ops)
        assert report.succeeded == report.ops - 8
        assert report.consistent

    @pytest.mark.parametrize("batched", [True, False])
    def test_from_scenario_composes_matrix_faults_with_load(self, batched):
        scenario = next(s for s in default_matrix()
                        if s.name == "keybackup-lossy-network")
        workload = MultiClientWorkload.from_scenario(scenario, num_clients=20,
                                                     batched=batched, batch_size=8)
        assert workload.app == scenario.app
        assert workload.rules == scenario.rules
        report = workload.run()
        assert report.success_rate >= scenario.min_success_rate - 0.15
        assert report.consistent, report.consistency_issues

    def test_duplicate_storm_does_not_double_apply(self):
        scenario = next(s for s in default_matrix()
                        if s.name == "sign-duplicate-storm")
        report = MultiClientWorkload.from_scenario(scenario, num_clients=3,
                                                   batched=True, batch_size=2).run()
        assert report.succeeded == report.ops, report.failures[:3]
        assert report.consistent


class TestBatchSigningProvenance:
    def test_signer_indices_reflect_actual_signers_under_crash(self):
        """Regression: a crashed signer must not be reported as a signer."""
        from repro.net.latency import lan_profile
        from repro.net.transport import Network
        from repro.apps.threshold_sign import CustodyClient, CustodyDeployment

        service = CustodyDeployment(threshold=2, num_signers=3,
                                    keygen_seed=b"provenan")
        network = Network(clock=service.deployment.clock,
                          default_latency=lan_profile())
        service.deployment.route_via_network(network, attempts=1)
        network.crash(service.deployment.domains[1].domain_id)
        client = CustodyClient(service, audit_before_use=False)
        [transaction] = client.sign_transactions([b"tx"],
                                                 signer_indices=[1, 2, 3])
        assert transaction.signer_indices == (2, 3)
        assert client.verify(transaction)
