"""Tests for the multi-client workload driver and its scenario-engine composition."""

import pytest

from repro.sim import MultiClientWorkload
from repro.sim.faults import (
    CrashParty,
    DropFault,
    DuplicateFault,
    RecoverParty,
    ReorderFault,
)
from repro.sim.scenarios.matrix import default_matrix

APPS = ("keybackup", "prio", "threshold_sign", "odoh")


def run_small(app: str, batched: bool, **kwargs):
    ops = 4 if app == "threshold_sign" else 24
    return MultiClientWorkload(app, num_clients=ops, ops_per_client=1,
                               batched=batched, batch_size=8,
                               rpc_attempts=kwargs.pop("rpc_attempts", 1),
                               **kwargs).run()


class TestCleanNetworkRuns:
    @pytest.mark.parametrize("app", APPS)
    def test_batched_run_succeeds_and_stays_consistent(self, app):
        report = run_small(app, batched=True)
        assert report.succeeded == report.ops, report.failures[:3]
        assert report.consistent, report.consistency_issues
        assert report.ops_per_sec > 0

    @pytest.mark.parametrize("app", ["prio", "odoh"])
    def test_unbatched_run_succeeds(self, app):
        report = run_small(app, batched=False)
        assert report.succeeded == report.ops
        assert report.consistent

    def test_batching_collapses_message_count(self):
        batched = run_small("prio", batched=True)
        unbatched = run_small("prio", batched=False)
        assert batched.messages_sent < unbatched.messages_sent / 3

    def test_report_format_mentions_mode_and_throughput(self):
        report = run_small("prio", batched=True)
        text = report.format()
        assert "batched" in text and "ops/sec" in text
        assert report.to_dict()["consistent"] is True

    def test_rejects_unknown_app_and_bad_sizes(self):
        with pytest.raises(ValueError):
            MultiClientWorkload("nope")
        with pytest.raises(ValueError):
            MultiClientWorkload("prio", num_clients=0)
        with pytest.raises(ValueError):
            MultiClientWorkload("prio", batch_size=0)


class TestFaultComposition:
    def test_lossy_network_with_retries_stays_exact(self):
        report = MultiClientWorkload(
            "prio", num_clients=60, batched=True, batch_size=16,
            rules=(DropFault(probability=0.05),
                   DuplicateFault(probability=0.2, copies=1),
                   ReorderFault(probability=0.3, max_delay_s=0.01)),
            rpc_attempts=5,
        ).run()
        # Retries against at-most-once servers absorb the faults; whatever
        # was accepted must aggregate exactly (or the servers must refuse).
        assert report.consistent, report.consistency_issues
        assert report.success_rate >= 0.9
        assert report.retries > 0 or report.messages_dropped == 0

    def test_scheduled_crash_and_recovery_compose_with_batches(self):
        report = MultiClientWorkload(
            "keybackup", num_clients=24, batched=True, batch_size=8,
            events=(CrashParty(at_op=8, party="domain:3"),
                    RecoverParty(at_op=16, party="domain:3")),
            rpc_attempts=2,
        ).run()
        # A backup must reach every domain, so ops in the outage window fail
        # cleanly; liveness returns with the recovery, and nothing torn leaks
        # into the end state.
        failed_ops = {op_index for op_index, _ in report.failures}
        assert failed_ops == set(range(8, 16)), sorted(failed_ops)
        assert report.succeeded == report.ops - 8
        assert report.consistent

    @pytest.mark.parametrize("batched", [True, False])
    def test_from_scenario_composes_matrix_faults_with_load(self, batched):
        scenario = next(s for s in default_matrix()
                        if s.name == "keybackup-lossy-network")
        workload = MultiClientWorkload.from_scenario(scenario, num_clients=20,
                                                     batched=batched, batch_size=8)
        assert workload.app == scenario.app
        assert workload.rules == scenario.rules
        report = workload.run()
        assert report.success_rate >= scenario.min_success_rate - 0.15
        assert report.consistent, report.consistency_issues

    def test_duplicate_storm_does_not_double_apply(self):
        scenario = next(s for s in default_matrix()
                        if s.name == "sign-duplicate-storm")
        report = MultiClientWorkload.from_scenario(scenario, num_clients=3,
                                                   batched=True, batch_size=2).run()
        assert report.succeeded == report.ops, report.failures[:3]
        assert report.consistent


class TestBatchSigningProvenance:
    def test_signer_indices_reflect_actual_signers_under_crash(self):
        """Regression: a crashed signer must not be reported as a signer."""
        from repro.net.latency import lan_profile
        from repro.net.transport import Network
        from repro.apps.threshold_sign import CustodyClient, CustodyDeployment

        service = CustodyDeployment(threshold=2, num_signers=3,
                                    keygen_seed=b"provenan")
        network = Network(clock=service.deployment.clock,
                          default_latency=lan_profile())
        service.deployment.route_via_network(network, attempts=1)
        network.crash(service.deployment.domains[1].domain_id)
        client = CustodyClient(service, audit_before_use=False)
        [transaction] = client.sign_transactions([b"tx"],
                                                 signer_indices=[1, 2, 3])
        assert transaction.signer_indices == (2, 3)
        assert client.verify(transaction)
