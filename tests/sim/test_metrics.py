"""Direct tests for the latency-summary and windowed-metrics helpers."""

import pytest

from repro.service.autoscaler import Autoscaler, MetricsSample, percentile
from repro.sim.metrics import LatencyStats, _percentile, summarize


class TestSummarize:
    def test_empty_sample_set_is_an_error(self):
        with pytest.raises(ValueError, match="zero samples"):
            summarize([])

    def test_single_sample_is_every_percentile(self):
        stats = summarize([0.042])
        assert stats.count == 1
        assert stats.mean == stats.median == stats.p95 == stats.p99 == 0.042
        assert stats.minimum == stats.maximum == 0.042
        assert stats.stddev == 0.0

    def test_nearest_rank_on_a_known_population(self):
        stats = summarize([float(v) for v in range(1, 101)])
        assert stats.median == 50.0
        assert stats.p95 == 95.0
        assert stats.p99 == 99.0
        assert stats.minimum == 1.0 and stats.maximum == 100.0

    def test_small_samples_report_observed_values(self):
        # Nearest rank never interpolates: with four samples the p95 is the
        # maximum, not a value between the top two.
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.median == 2.0  # ceil(0.5 * 4) = rank 2
        assert stats.p95 == 4.0
        assert stats.p99 == 4.0

    def test_moments(self):
        stats = summarize([1.0, 3.0])
        assert stats.mean == 2.0
        assert stats.stddev == 1.0  # population stddev

    def test_order_of_samples_is_irrelevant(self):
        assert summarize([3.0, 1.0, 2.0]) == summarize([1.0, 2.0, 3.0])


class TestLatencyStats:
    def test_millisecond_views(self):
        stats = summarize([0.002, 0.004])
        assert stats.mean_ms() == pytest.approx(3.0)
        assert stats.p95_ms() == pytest.approx(4.0)
        assert stats.p99_ms() == pytest.approx(4.0)

    def test_overhead_vs(self):
        base = summarize([0.010])
        slow = summarize([0.015])
        assert slow.overhead_vs(base) == pytest.approx(50.0)
        zero = summarize([0.0])
        assert slow.overhead_vs(zero) is None

    def test_overhead_vs_zero_baseline_stays_valid_json(self):
        # float("inf") would serialize as the bare word ``Infinity``, which
        # no strict JSON parser accepts; the undefined ratio must reach a
        # report as null instead.
        import json

        slow = summarize([0.015])
        report = {"overhead_pct": slow.overhead_vs(summarize([0.0])),
                  "latency": slow.to_dict()}
        serialized = json.dumps(report, allow_nan=False)
        assert json.loads(serialized)["overhead_pct"] is None

    def test_to_dict_has_all_moments(self):
        payload = summarize([0.5]).to_dict()
        assert set(payload) == {"count", "mean", "median", "p95", "p99",
                                "minimum", "maximum", "stddev"}


class TestPercentileHelpers:
    def test_internal_percentile_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            _percentile([], 0.99)

    def test_internal_percentile_clamps_fraction_zero(self):
        assert _percentile([1.0, 2.0, 3.0], 0.0) == 1.0
        assert _percentile([1.0, 2.0, 3.0], 1.0) == 3.0

    def test_windowed_percentile_empty_window_is_silence(self):
        # The autoscaler treats "no completed requests" as no signal — not
        # as a zero-latency window that would trigger a shrink.
        assert percentile([], 0.99) is None

    def test_windowed_percentile_single_sample(self):
        assert percentile([0.25], 0.99) == 0.25
        assert percentile([0.25], 0.0) == 0.25

    def test_windowed_percentile_nearest_rank(self):
        window = [0.001 * v for v in range(1, 11)]
        assert percentile(window, 0.5) == pytest.approx(0.005)
        assert percentile(window, 0.99) == pytest.approx(0.010)

    def test_windowed_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class _StubClock:
    def __init__(self, now=0.0):
        self._now = now

    def now(self):
        return self._now


class _StubRing:
    def __init__(self, shard_count):
        self.shard_count = shard_count


class _StubPlane:
    """Just enough plane for Autoscaler.sample(): a clock, a ring, queues."""

    def __init__(self, depths, shard_count=2, now=1.5):
        self.clock = _StubClock(now)
        self.ring = _StubRing(shard_count)
        self._depths = depths

    def queue_depth_per_shard(self):
        return dict(self._depths)


class TestQueueDepthSampling:
    def test_no_shards_reporting_reads_as_depth_zero(self):
        scaler = Autoscaler(_StubPlane({}))
        sample = scaler.sample()
        assert sample == MetricsSample(time_s=1.5, p99_s=None,
                                       queue_depth=0, shard_count=2)

    def test_depth_is_the_max_across_shards(self):
        scaler = Autoscaler(_StubPlane({"s0": 1, "s1": 7, "s2": 3},
                                       shard_count=3))
        assert scaler.sample().queue_depth == 7

    def test_callers_latency_window_passes_through(self):
        scaler = Autoscaler(_StubPlane({"s0": 0}))
        assert scaler.sample(p99_s=0.125).p99_s == 0.125
        # An empty latency window stays None end to end.
        assert scaler.sample(p99_s=percentile([], 0.99)).p99_s is None
