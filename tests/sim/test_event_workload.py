"""Tests for the discrete-event workload mode and reshard-under-true-load.

The concurrent driver runs every op as its own task on the event loop, so
these tests assert the properties the synchronous harness could not even
express: hundreds of ops genuinely in flight, observable per-shard queue
depth, an epoch flip committing while requests are outstanding, and
bit-identical reports under a fixed seed.
"""

import pytest

from repro.sim.metrics import LatencyStats
from repro.sim.scenarios.matrix import default_matrix, reshard_matrix
from repro.sim.scenarios.runner import ScenarioRunner
from repro.sim.scenarios.spec import Scenario
from repro.sim.workload import MultiClientWorkload


def run_workload(**overrides):
    params = dict(app="keybackup", num_clients=30, seed=2022, shards=2,
                  concurrent=True, arrival_rate=20_000.0, service_time=0.0003)
    params.update(overrides)
    return MultiClientWorkload(**params).run()


class TestConcurrentMode:
    @pytest.mark.parametrize("app", ["keybackup", "prio", "threshold_sign", "odoh"])
    def test_every_app_survives_concurrent_drive(self, app):
        report = run_workload(app=app, num_clients=12)
        assert report.concurrent
        assert report.succeeded == 12
        assert report.failed == 0
        assert report.consistent
        # Poisson arrivals at 20k/s against sub-millisecond ops: the run is
        # only meaningful if ops actually overlapped.
        assert report.max_in_flight > 1

    def test_concurrent_mode_reports_queue_depth(self):
        report = run_workload(num_clients=40, arrival_rate=50_000.0,
                              service_time=0.0005)
        assert set(report.shard_queue_depth) == {0, 1}
        assert all(depth > 0 for depth in report.shard_queue_depth.values())
        assert max(report.shard_queue_depth.values()) > 1

    def test_same_seed_produces_an_identical_report(self):
        """Deterministic replay: everything except wall-clock time matches."""
        first = run_workload().to_dict()
        second = run_workload().to_dict()
        for volatile in ("wall_seconds", "ops_per_sec"):
            first.pop(volatile)
            second.pop(volatile)
        assert first == second

    def test_concurrent_requires_a_positive_arrival_rate(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            MultiClientWorkload("keybackup", concurrent=True)

    def test_reshard_fires_with_ops_in_flight(self):
        report = run_workload(num_clients=80, arrival_rate=50_000.0,
                              service_time=0.0004,
                              reshard_at_op=60, reshard_to=4)
        assert report.resharded and report.reshard_to == 4
        assert report.in_flight_at_reshard > 10
        assert report.failed == 0
        assert report.consistent


class TestReshardUnderTrueLoadScenario:
    """The acceptance scenario: a 2->4 epoch flip with 100+ ops in flight."""

    @pytest.fixture(scope="class")
    def report(self):
        scenario = next(s for s in reshard_matrix()
                        if s.name == "keybackup-reshard-under-true-load")
        return ScenarioRunner(scenario).run()

    def test_reshard_committed_with_at_least_100_ops_in_flight(self, report):
        assert len(report.reshards) == 1
        assert report.reshards[0].new_shard_count == 4
        assert report.in_flight_at_reshard >= 100

    def test_no_op_lost_and_every_invariant_held(self, report):
        assert report.success_rate == 1.0
        assert report.all_invariants_ok
        names = {result.name for result in report.invariants}
        # Zero lost or duplicated records across the epoch boundary, and the
        # transport's conservation identity held over the whole run.
        assert "reshard-conserves-records" in names
        assert "network-conserves-messages" in names

    def test_queue_depth_is_nonzero_on_every_shard(self, report):
        assert len(report.shard_queue_depth) == 4
        assert all(depth > 0 for depth in report.shard_queue_depth.values())
        assert report.max_in_flight >= 100

    def test_scenario_is_part_of_the_default_matrix(self):
        names = [s.name for s in default_matrix()]
        assert "keybackup-reshard-under-true-load" in names
        scenario = next(s for s in default_matrix()
                        if s.name == "keybackup-reshard-under-true-load")
        assert scenario.concurrent and scenario.service_time > 0


class TestAutoscaleUnderLoad:
    """A flash crowd drives the full elastic loop at the workload layer:
    the autoscaler grows from observed p99/queue depth, shrinks once the
    spike subsides, and the cooldown keeps it from flapping in between."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.service.autoscaler import AutoscalerPolicy

        policy = AutoscalerPolicy(
            p99_high_s=0.05, queue_high=8, p99_low_s=0.02, queue_low=1,
            min_shards=2, max_shards=4, cooldown_s=0.3,
            breach_streak=2, clear_streak=4, sample_interval_s=0.1)
        return run_workload(num_clients=200, seed=2140, service_time=0.004,
                            arrival_rate=60.0,
                            arrival_phases=((30, 700.0), (90, 25.0)),
                            autoscale_policy=policy)

    def test_flash_crowd_triggers_one_grow_and_one_shrink(self, report):
        assert report.autoscaled
        fired = [d for d in report.autoscale_decisions if d.get("fired")]
        assert [d["action"] for d in fired] == ["grow", "shrink"]
        assert report.final_shards == 2

    def test_scaling_loses_no_ops(self, report):
        assert report.succeeded == 200 and report.failed == 0
        assert report.consistent

    def test_gates_refused_nothing_in_a_healthy_run(self, report):
        gated = [d for d in report.autoscale_decisions if d.get("gated_by")]
        assert not gated, gated

    def test_policy_requires_the_event_loop(self):
        from repro.service.autoscaler import AutoscalerPolicy

        with pytest.raises(ValueError, match="event loop"):
            MultiClientWorkload("keybackup",
                                autoscale_policy=AutoscalerPolicy())


class TestScenarioValidation:
    def test_concurrent_scenario_requires_arrival_rate(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            Scenario(name="x", app="keybackup", concurrent=True)

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError, match="service_time"):
            Scenario(name="x", app="keybackup", service_time=-0.1)


class TestLatencyStatsP99Required:
    def test_p99_can_no_longer_silently_default_to_zero(self):
        with pytest.raises(TypeError):
            LatencyStats(count=1, mean=0.1, median=0.1, p95=0.1,
                         minimum=0.1, maximum=0.1, stddev=0.0)
