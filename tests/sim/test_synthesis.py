"""Property and unit tests for coverage-guided scenario synthesis."""

import dataclasses
import json

import pytest

from repro.sim.coverage import CoverageReport, all_cells
from repro.sim.faults import (
    AuditEpoch,
    AuditNow,
    AutoscaleEnabled,
    CompromiseDomain,
    CrashParty,
    HealLink,
    PartitionLink,
    RecoverParty,
    ReshardService,
    UnannouncedUpdate,
)
from repro.sim.synthesis import (
    INSTANT_KINDS,
    SynthesisTarget,
    cell_reachable,
    failing_invariants,
    render_pinned,
    shrink,
    synthesize_batch,
    synthesize_scenario,
    target_for_cell,
)


class TestGeneratorValidity:
    """Property: every seed yields a valid, schedulable scenario."""

    @pytest.mark.parametrize("seed", range(40))
    def test_any_seed_is_schedulable(self, seed):
        scenario = synthesize_scenario(seed)
        # __post_init__ already validated app/shards/regions; check the
        # scheduling properties the runner relies on.
        assert all(event.at_op < scenario.ops for event in scenario.events)
        at_ops = [event.at_op for event in scenario.events]
        assert at_ops == sorted(at_ops)
        compromises = [e for e in scenario.events
                       if isinstance(e, (CompromiseDomain, UnannouncedUpdate))]
        assert len(compromises) <= 1
        # Liveness floors are waived by design; safety is the test.
        assert scenario.min_success_rate == 0.0
        # Audit expectations track whether a compromise was injected.
        assert scenario.expect_audit_ok == (not compromises)
        if compromises:
            assert scenario.expect_detection_kinds == ("attestation-failure",)
        # Stateful conditions are lifted before the run ends.
        partitions = sum(isinstance(e, PartitionLink) for e in scenario.events)
        heals = sum(isinstance(e, HealLink) for e in scenario.events)
        assert partitions == heals
        crashes = sum(isinstance(e, CrashParty) for e in scenario.events)
        recoveries = sum(isinstance(e, RecoverParty) for e in scenario.events)
        assert crashes == recoveries
        # Concurrent scenarios carry an arrival process; serial ones do not.
        if scenario.concurrent:
            assert scenario.arrival_rate > 0 and scenario.service_time > 0
        if scenario.regions:
            assert len(scenario.regions) >= 2

    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_generated_scenarios_run_clean(self, seed):
        assert failing_invariants(synthesize_scenario(seed)) == ()


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        assert synthesize_scenario(7) == synthesize_scenario(7)

    def test_same_seed_byte_identical_report(self):
        from repro.sim.scenarios import ScenarioRunner

        scenario = synthesize_scenario(5)
        first = ScenarioRunner(scenario).run()
        second = ScenarioRunner(synthesize_scenario(5)).run()
        assert first.format() == second.format()
        assert (json.dumps(first.to_dict(), sort_keys=True)
                == json.dumps(second.to_dict(), sort_keys=True))

    def test_batch_is_a_pure_function_of_count_seed_base(self):
        assert synthesize_batch(6, 99) == synthesize_batch(6, 99)
        names = [s.name for s in synthesize_batch(3, 99)]
        assert names == ["synth-99-00", "synth-99-01", "synth-99-02"]

    def test_batch_targets_the_base_reports_dark_cells(self):
        # A base report covering almost everything leaves one reachable dark
        # cell; every batch scenario must aim at it.
        cells = sorted(all_cells())
        dark = ("fault", "compromise", "app", "prio")
        base = CoverageReport({"dense": frozenset(
            c for c in cells if c != dark and cell_reachable(c))})
        assert [c for c in base.uncovered() if cell_reachable(c)] == [dark]
        for scenario in synthesize_batch(2, 31, base=base):
            assert scenario.app == "prio"
            assert any(isinstance(e, CompromiseDomain) for e in scenario.events)


class TestTargeting:
    def test_target_for_cell_pins_exactly_two_dimensions(self):
        target = target_for_cell(("fault", "drop", "topology", "geo/4"))
        assert target == SynthesisTarget(fault="drop", topology="geo/4")
        assert target.phase is None and target.app is None

    def test_targeted_dimensions_are_honored(self):
        scenario = synthesize_scenario(11, SynthesisTarget(
            fault="compromise", phase="mid-migration",
            topology="geo/4", app="prio"))
        assert scenario.app == "prio"
        assert any(isinstance(e, CompromiseDomain) for e in scenario.events)
        assert any(isinstance(e, ReshardService) for e in scenario.events)
        assert scenario.regions  # geo layout
        assert not scenario.expect_audit_ok

    def test_mid_autoscale_target_installs_a_policy(self):
        scenario = synthesize_scenario(12, SynthesisTarget(
            phase="mid-autoscale", app="keybackup"))
        assert scenario.concurrent
        assert any(isinstance(e, AutoscaleEnabled) for e in scenario.events)

    def test_mid_audit_target_schedules_a_midrun_audit(self):
        scenario = synthesize_scenario(13, SynthesisTarget(
            fault="crash", phase="mid-audit", app="threshold_sign"))
        assert any(isinstance(e, AuditNow) for e in scenario.events)

    @pytest.mark.parametrize("kind", INSTANT_KINDS)
    def test_instant_fault_during_audit_uses_the_epoch_auditor(self, kind):
        # These four cells used to be structurally dark; the epoch auditor's
        # networked bundle fetches made them reachable, so the generator now
        # grows an epoch and audits it over the wire with the rule installed.
        cell = ("fault", kind, "phase", "mid-audit")
        assert cell_reachable(cell)
        scenario = synthesize_scenario(1, target_for_cell(cell))
        assert scenario.rules  # the per-message rule is installed
        grow = [e for e in scenario.events if isinstance(e, ReshardService)]
        audit = [e for e in scenario.events if isinstance(e, AuditEpoch)]
        assert grow and audit
        assert grow[0].at_op < audit[0].at_op  # a bundle exists to fetch

    def test_every_cell_is_reachable(self):
        assert not [c for c in all_cells() if not cell_reachable(c)]


def _planted_scenario():
    """Six scheduled events hiding one real violation.

    The unannounced update breaks the end-of-run audit while the scenario
    *expects* a clean audit; the other five events are healed/recovered
    decoys a shrinker should strip away.
    """
    from repro.sim.scenarios import Scenario

    return Scenario(
        name="planted",
        app="keybackup",
        ops=8,
        seed=3,
        events=(
            PartitionLink(at_op=1, a="client", b="domain:0"),
            CrashParty(at_op=2, party="domain:2"),
            UnannouncedUpdate(at_op=3, domain_index=1),
            AuditNow(at_op=4),
            RecoverParty(at_op=5, party="domain:2"),
            HealLink(at_op=6, a="client", b="domain:0"),
        ),
        min_success_rate=0.0,
        expect_audit_ok=True,
    )


class TestShrinker:
    def test_planted_violation_shrinks_to_a_minimal_reproducer(self):
        scenario = _planted_scenario()
        baseline = failing_invariants(scenario)
        assert "audit-ends-as-expected" in baseline

        result = shrink(scenario)
        assert len(result.scenario.events) <= 2
        assert set(result.failing) & set(baseline)
        assert result.removed_events >= 4
        assert result.scenario.name == "planted-min"
        # Every survivor is load-bearing: removing it heals the scenario.
        for index in range(len(result.scenario.events)):
            without = dataclasses.replace(
                result.scenario,
                events=(result.scenario.events[:index]
                        + result.scenario.events[index + 1:]))
            assert not (set(failing_invariants(without)) & set(baseline))

    def test_shrink_refuses_a_healthy_scenario(self):
        healthy = synthesize_scenario(0)
        assert failing_invariants(healthy) == ()
        with pytest.raises(ValueError):
            shrink(healthy)

    def test_render_pinned_is_paste_ready(self):
        result = shrink(_planted_scenario())
        source = render_pinned(result.scenario, reason="planted audit break")
        assert source.startswith("# Pinned reproducer: planted audit break")
        assert "Scenario(" in source and source.endswith(")")
        assert "name='planted-min'" in source
        assert "UnannouncedUpdate" in source
        # Default fields stay out of the pin.
        assert "min_success_rate=0.0" in source  # non-default: floor waived
        assert "arrival_rate" not in source
        assert "regions" not in source
