"""Unit tests for the pairwise scenario-coverage model."""

import pytest

from repro.sim.coverage import (
    COVERAGE_APPS,
    DIMENSIONS,
    FAULT_KINDS,
    PHASES,
    TOPOLOGIES,
    CoverageRecorder,
    CoverageReport,
    all_cells,
    cell_id,
    topology_label,
)


class TestCellSpace:
    def test_total_is_sum_of_pairwise_products(self):
        # fault×phase + fault×topology + fault×app + phase×topology +
        # phase×app + topology×app
        expected = (7 * 5) + (7 * 7) + (7 * 4) + (5 * 7) + (5 * 4) + (7 * 4)
        assert len(all_cells()) == expected == 195

    def test_cells_are_normalized_to_canonical_dimension_order(self):
        order = list(DIMENSIONS)
        for dim_a, _, dim_b, _ in all_cells():
            assert order.index(dim_a) < order.index(dim_b)

    def test_cell_id_is_stable(self):
        assert cell_id(("fault", "drop", "app", "odoh")) == "fault=drop|app=odoh"

    def test_dimension_values(self):
        assert set(DIMENSIONS) == {"fault", "phase", "topology", "app"}
        assert DIMENSIONS["fault"] == FAULT_KINDS
        assert DIMENSIONS["phase"] == PHASES
        assert DIMENSIONS["topology"] == TOPOLOGIES
        assert DIMENSIONS["app"] == COVERAGE_APPS


class TestTopologyLabel:
    @pytest.mark.parametrize("shards,expected", [
        (1, "single/1"), (2, "single/2"), (3, "single/2"),
        (4, "single/4"), (7, "single/4"), (8, "single/8"), (12, "single/8"),
    ])
    def test_single_region_buckets_down(self, shards, expected):
        assert topology_label("single", shards) == expected

    def test_geo_needs_two_placements(self):
        assert topology_label("geo", 1) == "geo/2"
        assert topology_label("geo", 4) == "geo/4"

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            topology_label("multi-cloud", 2)


class TestCoverageRecorder:
    def test_deploying_covers_topology_app_pair(self):
        recorder = CoverageRecorder("prio", shards=4)
        assert ("topology", "single/4", "app", "prio") in recorder.cells

    def test_rule_firing_covers_fault_pairs_under_steady_state(self):
        recorder = CoverageRecorder("odoh")
        recorder.record("drop")
        assert ("fault", "drop", "phase", "steady-state") in recorder.cells
        assert ("fault", "drop", "topology", "single/1") in recorder.cells
        assert ("fault", "drop", "app", "odoh") in recorder.cells

    def test_unknown_kind_and_phase_rejected(self):
        recorder = CoverageRecorder("odoh")
        with pytest.raises(ValueError):
            recorder.record("bitflip")
        with pytest.raises(ValueError):
            recorder.phase("mid-apocalypse")
        with pytest.raises(ValueError):
            CoverageRecorder("notanapp")

    def test_phase_window_charges_faults_to_phase(self):
        recorder = CoverageRecorder("keybackup", shards=2)
        with recorder.phase("mid-migration"):
            recorder.record("drop")
        assert ("fault", "drop", "phase", "mid-migration") in recorder.cells
        assert ("phase", "mid-migration", "app", "keybackup") in recorder.cells
        # The window closed: later faults are steady-state again.
        recorder.record("delay")
        assert ("fault", "delay", "phase", "steady-state") in recorder.cells
        assert ("fault", "delay", "phase", "mid-migration") not in recorder.cells

    def test_entering_phase_re_records_active_stateful_faults(self):
        recorder = CoverageRecorder("keybackup")
        recorder.activate("partition")
        with recorder.phase("mid-audit"):
            pass
        assert ("fault", "partition", "phase", "mid-audit") in recorder.cells

    def test_deactivated_faults_are_not_re_recorded(self):
        recorder = CoverageRecorder("keybackup")
        recorder.activate("crash")
        recorder.deactivate("crash")
        with recorder.phase("mid-audit"):
            pass
        assert ("fault", "crash", "phase", "mid-audit") not in recorder.cells

    def test_record_active_false_defers_charging(self):
        recorder = CoverageRecorder("prio")
        recorder.activate("compromise")
        with recorder.phase("mid-autoscale", record_active=False):
            pass
        assert ("fault", "compromise", "phase",
                "mid-autoscale") not in recorder.cells
        recorder.record_active_under("mid-autoscale")
        assert ("fault", "compromise", "phase",
                "mid-autoscale") in recorder.cells

    def test_batch_flag_is_the_fallback_phase(self):
        recorder = CoverageRecorder("prio")
        recorder.batch_active(True)
        recorder.record("duplicate")
        assert ("fault", "duplicate", "phase", "mid-batch") in recorder.cells
        recorder.batch_active(False)
        recorder.record("duplicate")
        assert ("fault", "duplicate", "phase", "steady-state") in recorder.cells

    def test_explicit_phase_wins_over_batch_flag(self):
        recorder = CoverageRecorder("prio")
        recorder.batch_active(True)
        with recorder.phase("mid-migration"):
            recorder.record("drop")
        assert ("fault", "drop", "phase", "mid-migration") in recorder.cells

    def test_entering_batch_records_active_stateful_faults(self):
        recorder = CoverageRecorder("prio")
        recorder.activate("partition")
        recorder.batch_active(True)
        assert ("fault", "partition", "phase", "mid-batch") in recorder.cells

    def test_reshard_updates_topology(self):
        recorder = CoverageRecorder("keybackup", shards=2)
        recorder.set_shards(4)
        recorder.record("drop")
        assert ("fault", "drop", "topology", "single/4") in recorder.cells
        # The pre-reshard placement's deployment cell is retained.
        assert ("topology", "single/2", "app", "keybackup") in recorder.cells

    def test_note_rule_uses_rule_kind(self):
        from repro.sim.faults import DelayFault

        recorder = CoverageRecorder("odoh")
        recorder.note_rule(DelayFault(probability=1.0))
        assert ("fault", "delay", "app", "odoh") in recorder.cells


class TestCoverageReport:
    def test_score_and_marginals(self):
        recorder = CoverageRecorder("odoh")
        recorder.record("drop")
        report = CoverageReport({"one": frozenset(recorder.cells)})
        assert report.score == pytest.approx(len(recorder.cells) / 195)
        marginals = report.marginals()
        assert marginals["fault"]["drop"]["covered"] == 3
        assert marginals["fault"]["drop"]["possible"] == 16  # 5 + 7 + 4
        assert marginals["phase"]["mid-audit"]["covered"] == 0

    def test_merge_unions_cells(self):
        a = CoverageReport({"a": frozenset({("fault", "drop", "app", "odoh")})})
        b = CoverageReport({"b": frozenset({("fault", "delay", "app", "prio")})})
        merged = a.merge(b)
        assert len(merged.covered) == 2
        assert set(merged.per_scenario) == {"a", "b"}

    def test_uncovered_is_sorted_and_complements_covered(self):
        report = CoverageReport({"a": frozenset({("fault", "drop", "app", "odoh")})})
        dark = report.uncovered()
        assert dark == sorted(dark)
        assert len(dark) == 194
        assert ("fault", "drop", "app", "odoh") not in dark

    def test_to_dict_shape(self):
        report = CoverageReport({"a": frozenset({("fault", "drop", "app", "odoh")})})
        payload = report.to_dict()
        assert payload["cells_total"] == 195
        assert payload["cells_covered"] == 1
        assert payload["per_scenario"]["a"] == ["fault=drop|app=odoh"]
        assert "fault=drop|app=odoh" not in payload["uncovered"]

    def test_from_reports_reads_scenario_reports(self):
        from repro.sim.scenarios import Scenario, ScenarioReport

        scenario = Scenario(name="x", app="odoh")
        report = ScenarioReport(scenario=scenario, coverage_cells=frozenset(
            {("fault", "drop", "app", "odoh")}))
        coverage = CoverageReport.from_reports([report])
        assert coverage.per_scenario == {"x": frozenset(
            {("fault", "drop", "app", "odoh")})}


class TestRunnerIntegration:
    def test_run_records_cells_and_serializes_them(self):
        from repro.sim.faults import DropFault
        from repro.sim.scenarios import Scenario, ScenarioRunner

        scenario = Scenario(
            name="cov-smoke", app="odoh", ops=3, seed=7,
            rules=(DropFault(probability=0.4),),
            min_success_rate=0.0,
        )
        report = ScenarioRunner(scenario).run()
        assert ("topology", "single/1", "app", "odoh") in report.coverage_cells
        assert ("fault", "drop", "app", "odoh") in report.coverage_cells
        payload = report.to_dict()
        assert "fault=drop|app=odoh" in payload["coverage_cells"]

    def test_geo_reshard_traverses_both_placements(self):
        from repro.sim.faults import DelayFault, ReshardService
        from repro.sim.scenarios import Scenario, ScenarioRunner

        scenario = Scenario(
            name="cov-geo-grow", app="keybackup", ops=6, shards=2, seed=11,
            rules=(DelayFault(probability=0.5, delay_s=0.002),),
            events=(ReshardService(at_op=3, shards=4),),
            min_success_rate=0.0,
            regions=("us-east", "eu-west", "ap-south"),
        )
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok
        cells = report.coverage_cells
        assert ("topology", "geo/2", "app", "keybackup") in cells
        assert ("topology", "geo/4", "app", "keybackup") in cells
        assert ("phase", "mid-migration", "topology", "geo/2") in cells

    def test_audit_now_covers_mid_audit_with_active_fault(self):
        from repro.sim.faults import AuditNow, CrashParty, RecoverParty
        from repro.sim.scenarios import Scenario, ScenarioRunner

        scenario = Scenario(
            name="cov-audit", app="threshold_sign", ops=6, seed=13,
            events=(CrashParty(at_op=1, party="domain:3"),
                    AuditNow(at_op=2),
                    RecoverParty(at_op=4, party="domain:3")),
            min_success_rate=0.0,
        )
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok
        assert ("fault", "crash", "phase",
                "mid-audit") in report.coverage_cells
