"""Integration tests for the fault-injection scenario engine.

The core of the suite parametrizes over the default scenario matrix: every
application runs end to end under every class of adversarial network
condition, and the paper's safety invariants must hold in all of them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.package import CodePackage, DeveloperIdentity
from repro.net.rpc import RpcClient, RpcServer
from repro.net.transport import FaultDecision, Message, Network
from repro.sim.adversary import ScheduledCompromise
from repro.sim.faults import (
    CompromiseDomain,
    CrashParty,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    FinishReshard,
    PartitionLink,
    ReorderFault,
    ReshardService,
    UnannouncedUpdate,
)
from repro.sim.scenarios import (
    Scenario,
    ScenarioRunner,
    default_matrix,
    reshard_matrix,
    sharded_matrix,
)

MATRIX = default_matrix()


class TestMatrixShape:
    def test_matrix_is_broad_enough(self):
        """The default matrix covers >= 8 scenarios and all four applications."""
        assert len(MATRIX) >= 8
        assert {s.app for s in MATRIX} == {"keybackup", "threshold_sign", "prio", "odoh"}

    def test_matrix_covers_fault_taxonomy(self):
        """Every fault class from the taxonomy appears somewhere in the matrix."""
        rule_types = {type(rule) for s in MATRIX for rule in s.rules}
        event_types = {type(event) for s in MATRIX for event in s.events}
        assert {DropFault, DelayFault, ReorderFault, DuplicateFault} <= rule_types
        assert {PartitionLink, CrashParty, CompromiseDomain, UnannouncedUpdate} <= event_types

    def test_matrix_covers_sharded_deployments(self):
        """The fault taxonomy also runs against multi-shard service planes."""
        sharded = [s for s in sharded_matrix() if s.shards > 1]
        assert len(sharded) >= 4
        assert {s.app for s in sharded} >= {"keybackup", "threshold_sign",
                                            "prio", "odoh"}
        rule_types = {type(rule) for s in sharded for rule in s.rules}
        assert {DropFault, DelayFault, ReorderFault, DuplicateFault} <= rule_types
        # And the sharded family is part of the default sweep.
        assert {s.name for s in sharded} <= {s.name for s in MATRIX}

    def test_matrix_covers_live_resharding(self):
        """Every app reshards 2 -> 4 live, under each named fault family."""
        reshards = reshard_matrix()
        assert {s.app for s in reshards} == {"keybackup", "threshold_sign",
                                             "prio", "odoh"}
        for scenario in reshards:
            grows = [e for e in scenario.events if isinstance(e, ReshardService)]
            assert len(grows) == 1 and scenario.shards == 2 and grows[0].shards == 4
        event_types = {type(e) for s in reshards for e in s.events}
        rule_types = {type(rule) for s in reshards for rule in s.rules}
        # The migration itself is attacked: loss, a crash mid-handoff, a
        # partition during migration, and a compromised source.
        assert DropFault in rule_types
        assert {CrashParty, PartitionLink, CompromiseDomain,
                FinishReshard} <= event_types
        assert {s.name for s in reshards} <= {s.name for s in MATRIX}

    def test_scenario_names_unique(self):
        names = [s.name for s in MATRIX]
        assert len(names) == len(set(names))

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", app="not-an-app")
        with pytest.raises(ValueError):
            Scenario(name="x", app="prio", ops=0)
        with pytest.raises(ValueError):
            Scenario(name="x", app="prio", min_success_rate=1.5)
        with pytest.raises(ValueError):
            Scenario(name="x", app="prio", shards=0)


@pytest.mark.parametrize("scenario", MATRIX, ids=[s.name for s in MATRIX])
def test_scenario_safety_and_liveness(scenario):
    """Every matrix scenario keeps its safety invariants and liveness floor."""
    report = ScenarioRunner(scenario).run()
    failed = [r for r in report.invariants if not r.ok]
    assert not failed, f"invariants failed: {[(r.name, r.detail) for r in failed]}"
    assert report.liveness_ok, (
        f"success rate {report.success_rate:.2f} below floor "
        f"{scenario.min_success_rate:.2f}; failures: {report.failures}"
    )
    assert report.audit_ok == scenario.expect_audit_ok
    for kind in scenario.expect_detection_kinds:
        assert kind in report.detected_kinds
    if any(isinstance(event, ReshardService) for event in scenario.events):
        checked = {r.name for r in report.invariants}
        # The epoch must commit, and the app-level conservation invariant
        # (zero lost or duplicated records, or its app-specific equivalent)
        # must have been checked, not skipped.
        assert "reshard-epoch-committed" in checked
        conservation = {"keybackup": "reshard-conserves-records",
                        "odoh": "reshard-conserves-records",
                        "prio": "aggregate-matches-accepted-submissions",
                        "threshold_sign": "reshard-preserves-signing"}
        assert conservation[scenario.app] in checked, checked
        # The first scheduled transition committed at the width it asked
        # for, whichever direction it pointed.
        first_event = next(event for event in scenario.events
                           if isinstance(event, ReshardService))
        assert report.reshards
        assert report.reshards[0].new_shard_count == first_event.shards


class TestDeterminism:
    def test_same_seed_same_report(self):
        """One scenario replayed with the same seed produces identical output."""
        scenario = next(s for s in MATRIX if s.name == "keybackup-lossy-network")
        first = ScenarioRunner(scenario).run()
        second = ScenarioRunner(scenario).run()
        assert first.format() == second.format()
        assert first.to_dict() == second.to_dict()

    def test_different_seed_changes_fault_pattern(self):
        base = next(s for s in MATRIX if s.name == "keybackup-lossy-network")
        reseeded = Scenario(
            name=base.name, app=base.app, ops=base.ops, seed=base.seed + 1000,
            rules=base.rules, rpc_attempts=base.rpc_attempts,
            min_success_rate=base.min_success_rate,
        )
        first = ScenarioRunner(base).run()
        second = ScenarioRunner(reseeded).run()
        # Different seeds drop different messages; safety must hold regardless.
        assert second.all_invariants_ok
        assert (first.messages_dropped, first.retries) != (second.messages_dropped,
                                                           second.retries)

    @pytest.mark.slow
    def test_sweep_example_runs_clean(self):
        """The example sweep exits 0 and prints the deterministic summary line."""
        repo_root = Path(__file__).resolve().parents[2]
        result = subprocess.run(
            [sys.executable, str(repo_root / "examples" / "scenario_sweep.py"), "7"],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "ALL SAFETY INVARIANTS HELD" in result.stdout


class TestReshardScenarios:
    def test_crash_mid_handoff_pins_keys_then_drains_them(self):
        """The crash scenario exercises the full pin-and-drain lifecycle:
        the crashed source defeats part of the migration (keys stay pinned,
        routed to their old shard), and the FinishReshard event after
        recovery moves them — deterministically, per the scenario seed."""
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-reshard-crash-mid-handoff")
        report = ScenarioRunner(scenario).run()
        grow, drain = report.reshards
        assert grow.pending >= 1, "the crash was expected to pin at least one key"
        assert drain.migrated_keys >= 1 and not drain.failed_keys
        assert report.all_invariants_ok

    def test_partition_during_migration_pins_keys_then_drains_them(self):
        scenario = next(s for s in MATRIX
                        if s.name == "odoh-reshard-partition-during-migration")
        report = ScenarioRunner(scenario).run()
        grow, drain = report.reshards
        assert grow.pending >= 1
        assert drain.migrated_keys >= 1 and not drain.failed_keys
        assert report.all_invariants_ok

    def test_context_records_a_reshard_failure_instead_of_crashing(self):
        """A reshard the faults defeat is a scenario outcome: the context
        records the error (and the committed report, when migration already
        moved records) and the run continues to its invariants."""
        from repro.sim.adversary import ScheduledCompromise
        from repro.sim.scenarios.apps import make_driver
        from repro.sim.scenarios.runner import ScenarioContext

        driver = make_driver("keybackup", 2022, 4, shards=2)
        for op_index in range(4):
            driver.step(op_index)

        def exploding_migrate(plane, source, target, keys):
            raise RuntimeError("boom")

        driver.plane.migrator.migrate = exploding_migrate
        ctx = ScenarioContext(None, driver.deployment, driver,
                              ScheduledCompromise(driver.deployment),
                              "client", plane=driver.plane)
        ctx.reshard(4)  # must not raise
        assert ctx.reshard_errors and "boom" in ctx.reshard_errors[0]
        # The epoch committed with every moving key pinned — nothing lost.
        assert driver.plane.epoch == 1
        assert ctx.reshard_reports[0].failed_keys
        invariants = driver.finish(ctx)
        assert all(result.ok for result in invariants), [
            (result.name, result.detail) for result in invariants if not result.ok]

    def test_compromise_targets_a_nonprimary_shard(self):
        """CompromiseDomain(shard_index=N) breaches the named shard's TEE,
        and the fleet-wide audit catches it."""
        from repro.sim.adversary import ScheduledCompromise
        from repro.sim.scenarios.apps import make_driver
        from repro.sim.scenarios.runner import ScenarioContext

        driver = make_driver("keybackup", 2022, 2, shards=2)
        ctx = ScenarioContext(None, driver.deployment, driver,
                              ScheduledCompromise(driver.deployment),
                              "client", plane=driver.plane)
        ctx.compromise(1, shard_index=1)
        assert driver.plane.shards[1].domains[1].enclave.memory.breached
        assert not driver.plane.shards[0].domains[1].enclave.memory.breached
        ok, kinds = driver.audit_outcome()
        assert not ok and "attestation-failure" in kinds

    def test_reshard_scenario_replays_identically(self):
        scenario = next(s for s in MATRIX if s.name == "keybackup-reshard-lossy")
        first = ScenarioRunner(scenario).run()
        second = ScenarioRunner(scenario).run()
        assert first.format() == second.format()
        assert first.to_dict() == second.to_dict()


class TestElasticScenarios:
    def test_matrix_covers_elasticity(self):
        """The elastic family exercises both directions and the autoscaler."""
        from repro.sim.faults import AutoscaleEnabled, ShrinkService
        from repro.sim.scenarios import elastic_matrix

        elastic = elastic_matrix()
        event_types = {type(e) for s in elastic for e in s.events}
        assert {ShrinkService, AutoscaleEnabled} <= event_types
        assert {s.name for s in elastic} <= {s.name for s in MATRIX}

    def test_round_trip_returns_to_original_width(self):
        """2 -> 4 -> 2 under concurrent load: both epochs commit, the
        retired shards fully drain, and nothing is lost either way."""
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-elastic-round-trip")
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok, [
            (r.name, r.detail) for r in report.invariants if not r.ok]
        widths = [r.new_shard_count for r in report.reshards]
        assert widths == [4, 2]
        shrink = report.reshards[1]
        assert not shrink.failed_keys, "shrink left keys pinned to dead shards"
        assert report.success_rate == 1.0, report.failures

    def test_shrink_crash_pins_records_then_finish_drains(self):
        """A source crash during evacuation pins keys instead of losing
        them; FinishReshard after recovery completes the drain."""
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-shrink-crash-during-evacuation")
        report = ScenarioRunner(scenario).run()
        shrink, drain = report.reshards
        assert shrink.new_shard_count == 2
        assert shrink.pending >= 1, "the crash was expected to pin records"
        assert drain.migrated_keys >= 1 and not drain.failed_keys
        assert report.all_invariants_ok

    def test_flash_crowd_grows_then_shrinks_back(self):
        """The autoscaler reacts to the observed p99/queue depth — grows
        during the spike, shrinks after it subsides — without flapping."""
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-autoscale-flash-crowd")
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok, [
            (r.name, r.detail) for r in report.invariants if not r.ok]
        fired = [d for d in report.autoscale_decisions if d.get("fired")]
        actions = [d["action"] for d in fired]
        assert "grow" in actions and "shrink" in actions
        # Cooldown + hysteresis: one growth episode, one shrink episode.
        assert len(fired) == 2, fired
        assert report.final_shards == scenario.shards
        grow_time = next(d["time_s"] for d in fired if d["action"] == "grow")
        shrink_time = next(d["time_s"] for d in fired if d["action"] == "shrink")
        assert grow_time < shrink_time

    def test_diurnal_wave_scales_both_ways_twice(self):
        """Two load peaks produce two grow/shrink cycles; conservation
        holds for prio's unkeyed accumulators across every fold."""
        scenario = next(s for s in MATRIX
                        if s.name == "prio-autoscale-diurnal-wave")
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok, [
            (r.name, r.detail) for r in report.invariants if not r.ok]
        fired = [d for d in report.autoscale_decisions if d.get("fired")]
        actions = [d["action"] for d in fired]
        assert actions.count("grow") >= 2 and actions.count("shrink") >= 2
        assert report.final_shards == scenario.shards


class TestAuditScenarios:
    def test_matrix_covers_epoch_auditing(self):
        """The audit family fetches bundles over the network and includes a
        forged epoch; the checked-in pinned scenarios ride in the sweep."""
        from repro.sim.faults import AuditEpoch, ForgeEpochDigest
        from repro.sim.scenarios import audit_matrix, pinned_matrix

        audit = audit_matrix()
        event_types = {type(e) for s in audit for e in s.events}
        assert {AuditEpoch, ForgeEpochDigest} <= event_types
        assert {s.name for s in audit} <= {s.name for s in MATRIX}
        pinned = pinned_matrix()
        assert pinned, "pinned module lost its scenarios"
        assert all(s.name.startswith("pinned-") for s in pinned)
        assert {s.name for s in pinned} <= {s.name for s in MATRIX}

    def test_live_audit_verifies_bundles_over_the_network(self):
        """Mid-run the auditor fetches every published bundle via RPC and
        each one verifies from the artifact alone."""
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-epoch-audit-live")
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok, [
            (r.name, r.detail) for r in report.invariants if not r.ok]
        assert report.epoch_audits, "the AuditEpoch event fetched nothing"
        assert all(a["fetched"] and a["ok"] for a in report.epoch_audits), (
            report.epoch_audits)
        bundles = next(r for r in report.invariants
                       if r.name == "epoch-bundles-verify")
        assert bundles.ok, bundles.detail

    def test_forged_epoch_is_provably_rejected(self):
        """A coordinator-signed but digest-rewritten bundle fails exactly on
        digest conservation, while the honest epoch keeps verifying."""
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-forged-epoch-detected")
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok, [
            (r.name, r.detail) for r in report.invariants if not r.ok]
        assert "forged-epoch" in report.detected_kinds
        rejected = [a for a in report.epoch_audits
                    if a["forged"] and a["fetched"] and not a["ok"]]
        assert rejected, report.epoch_audits
        assert all(a["failing"] == ["digest-conservation"] for a in rejected)
        honest = [a for a in report.epoch_audits
                  if not a["forged"] and a["fetched"]]
        assert honest and all(a["ok"] for a in honest)

    def test_lossy_fetch_still_audits_via_retries(self):
        """Bundle fetches ride the at-most-once RPC layer, so a lossy
        network costs retries, not verification coverage."""
        scenario = next(s for s in MATRIX
                        if s.name == "odoh-epoch-audit-lossy-fetch")
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok, [
            (r.name, r.detail) for r in report.invariants if not r.ok]
        assert report.epoch_audits
        assert all(a["ok"] for a in report.epoch_audits if a["fetched"])

    def test_shrink_epochs_audit_like_grow_epochs(self):
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-shrink-epoch-audit")
        report = ScenarioRunner(scenario).run()
        assert report.all_invariants_ok, [
            (r.name, r.detail) for r in report.invariants if not r.ok]
        assert report.epoch_audits
        assert all(a["fetched"] and a["ok"] for a in report.epoch_audits)

    def test_audit_scenario_replays_identically(self):
        scenario = next(s for s in MATRIX
                        if s.name == "keybackup-forged-epoch-detected")
        first = ScenarioRunner(scenario).run()
        second = ScenarioRunner(scenario).run()
        assert first.epoch_audits == second.epoch_audits
        assert first.detected_kinds == second.detected_kinds


class TestTransportFaults:
    def test_fault_hook_drop(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        network.add_fault_hook(lambda m: FaultDecision(drop=True))
        alice.send("bob", b"x")
        assert network.run_until_idle() == 0
        assert network.stats.messages_dropped == 1
        assert bob.receive() is None

    def test_fault_hook_duplicate(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        network.add_fault_hook(lambda m: FaultDecision(duplicates=2))
        alice.send("bob", b"x")
        assert network.run_until_idle() == 3
        assert network.stats.messages_duplicated == 2

    def test_fault_hook_delay_reorders(self):
        """A delayed message is overtaken under delivery-time ordering."""
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")

        def delay_first_only(message: Message):
            return FaultDecision(extra_delay=1.0) if message.payload == b"first" else None

        network.add_fault_hook(delay_first_only)
        alice.send("bob", b"first")
        alice.send("bob", b"second")
        network.run_until_idle()
        assert bob.receive().payload == b"second"
        assert bob.receive().payload == b"first"

    def test_remove_fault_hook(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        hook = lambda m: FaultDecision(drop=True)  # noqa: E731
        network.add_fault_hook(hook)
        network.remove_fault_hook(hook)
        alice.send("bob", b"x")
        assert network.run_until_idle() == 1
        assert bob.receive().payload == b"x"

    def test_crash_and_recover(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        network.crash("bob")
        assert network.is_down("bob")
        alice.send("bob", b"lost")
        assert network.run_until_idle() == 0
        network.recover("bob")
        alice.send("bob", b"found")
        assert network.run_until_idle() == 1
        assert bob.receive().payload == b"found"


class TestRpcHardening:
    def _pair(self):
        network = Network()
        server = RpcServer(network.endpoint("server"))
        client = RpcClient(network, network.endpoint("client"), "server")
        return network, server, client

    def test_retry_after_drop_executes_handler_once(self):
        network, server, client = self._pair()
        calls = []
        server.register("incr", lambda params: calls.append(1) or len(calls))
        dropped = []

        def drop_first_request(message: Message):
            if message.destination == "server" and not dropped:
                dropped.append(message)
                return FaultDecision(drop=True)
            return None

        network.add_fault_hook(drop_first_request)
        assert client.call_with_retry("incr", attempts=3) == 1
        assert len(calls) == 1
        assert client.retries == 1

    def test_duplicate_request_answered_from_cache(self):
        network, server, client = self._pair()
        calls = []
        server.register("incr", lambda params: calls.append(1) or len(calls))
        network.add_fault_hook(lambda m: FaultDecision(duplicates=1)
                               if m.destination == "server" else None)
        assert client.call_with_retry("incr", attempts=2) == 1
        assert len(calls) == 1
        assert server.duplicates_answered == 1

    def test_malformed_frame_dropped_not_fatal(self):
        network, server, client = self._pair()
        server.register("ping", lambda params: "pong")
        network.endpoint("garbage-source").send("server", b"\x00\x00\x00\x05abc")
        network.run_until_idle()
        assert server.malformed_frames == 1
        assert client.call("ping") == "pong"


class TestScheduledCompromise:
    def _deployment(self):
        developer = DeveloperIdentity("sched-dev")
        deployment = Deployment("sched", developer, DeploymentConfig(num_domains=4))
        package = CodePackage("app", "1.0.0", "python",
                              "def init(config):\n    return {}\n"
                              "def handle(method, params, state):\n    return {'ok': True}\n")
        deployment.publish_and_install(package)
        return deployment

    def test_schedule_tracks_history_and_outcome(self):
        deployment = self._deployment()
        schedule = ScheduledCompromise(deployment)
        assert schedule.breached_count() == 1  # the developer's own domain 0
        schedule.compromise(1, at_op=3)
        assert schedule.compromised_domain_ids == [deployment.domains[1].domain_id]
        assert schedule.breached_count() == 2
        assert schedule.below_threshold(3)
        assert not schedule.below_threshold(2)

    def test_routed_invoke_travels_over_the_network(self):
        deployment = self._deployment()
        network = Network()
        deployment.route_via_network(network)
        before = network.stats.messages_sent
        result = deployment.invoke(1, "anything", {})
        assert result["value"] == {"ok": True}
        assert network.stats.messages_sent > before
        deployment.unroute()
        baseline = network.stats.messages_sent
        deployment.invoke(1, "anything", {})
        assert network.stats.messages_sent == baseline
