"""Unit tests for workload generation, metrics, and adversary scenarios."""

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.package import CodePackage, DeveloperIdentity
from repro.sim.adversary import DeveloperCompromise, VendorExploit
from repro.sim.metrics import _percentile, summarize
from repro.sim.workload import WorkloadGenerator


class TestWorkloadGenerator:
    def test_reproducible_with_same_seed(self):
        a, b = WorkloadGenerator(seed=5), WorkloadGenerator(seed=5)
        assert a.messages(10) == b.messages(10)
        assert WorkloadGenerator(1).messages(3) != WorkloadGenerator(2).messages(3)

    def test_message_sizes(self):
        messages = WorkloadGenerator().messages(5, size=16)
        assert all(len(m) == 16 for m in messages)

    def test_secrets_bit_length(self):
        secrets = WorkloadGenerator().secrets(20, bits=128)
        assert all(0 <= s < 2**128 for s in secrets)

    def test_user_ids_format(self):
        ids = WorkloadGenerator().user_ids(5)
        assert len(ids) == 5
        assert all(uid.startswith("user-") for uid in ids)

    def test_telemetry_values_bounded(self):
        values = WorkloadGenerator().telemetry_values(100, 3, 9)
        assert all(3 <= v <= 9 for v in values)

    def test_dns_queries_shape(self):
        queries = WorkloadGenerator().dns_queries(10)
        assert len(queries) == 10
        assert all("." in q for q in queries)


class TestMetrics:
    def test_summary_statistics(self):
        stats = summarize([0.001, 0.002, 0.003, 0.004, 0.010])
        assert stats.count == 5
        assert stats.minimum == 0.001
        assert stats.maximum == 0.010
        assert stats.mean == pytest.approx(0.004)
        assert stats.median == 0.003
        assert stats.p95 == 0.010
        assert stats.mean_ms() == pytest.approx(4.0)

    def test_single_sample(self):
        stats = summarize([0.5])
        assert stats.mean == stats.median == stats.p95 == stats.p99 == 0.5
        assert stats.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_p99_tracks_the_tail(self):
        # 50 fast samples and one slow one: p95 skips the outlier at this
        # sample size (nearest rank 49 of 51), p99 must report it.
        samples = [0.001] * 50 + [1.0]
        stats = summarize(samples)
        assert stats.p95 == 0.001
        assert stats.p99 == 1.0
        assert stats.p99_ms() == pytest.approx(1000.0)
        assert stats.to_dict()["p99"] == 1.0

    def test_percentile_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert _percentile([7.0], fraction) == 7.0

    def test_percentile_with_ties(self):
        ordered = [1.0, 2.0, 2.0, 2.0, 3.0]
        assert _percentile(ordered, 0.5) == 2.0
        assert _percentile(ordered, 0.75) == 2.0
        assert _percentile(ordered, 0.99) == 3.0

    def test_percentile_tiny_samples_nearest_rank(self):
        # Nearest-rank on two samples: the 50th percentile is the first
        # value, anything above falls to the second; never an interpolation.
        assert _percentile([1.0, 9.0], 0.5) == 1.0
        assert _percentile([1.0, 9.0], 0.51) == 9.0
        assert _percentile([1.0, 9.0], 0.99) == 9.0
        assert _percentile([1.0, 2.0, 30.0], 0.99) == 30.0

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            _percentile([], 0.5)

    def test_overhead_vs(self):
        baseline = summarize([0.010] * 3)
        slower = summarize([0.015] * 3)
        assert slower.overhead_vs(baseline) == pytest.approx(50.0)

    def test_overhead_vs_zero_baseline(self):
        # None (JSON null), never float("inf") — see LatencyStats.overhead_vs.
        assert summarize([1.0]).overhead_vs(summarize([0.0])) is None


PYTHON_STATE_APP = """
def init(config):
    return {"secret": "user-key-material"}

def handle(method, params, state):
    return {"ok": True}
"""


def make_deployment(num_domains=3):
    developer = DeveloperIdentity("adversary-test-developer")
    deployment = Deployment("adversary-test", developer,
                            DeploymentConfig(num_domains=num_domains))
    package = CodePackage("stateful-app", "1.0.0", "python", PYTHON_STATE_APP)
    deployment.publish_and_install(package)
    return deployment


class TestDeveloperCompromise:
    def test_only_developer_domain_breached(self):
        deployment = make_deployment()
        outcome = DeveloperCompromise(deployment).attempt_memory_extraction(["anything"])
        assert outcome.breached_count == 1
        assert deployment.domains[0].domain_id in outcome.domains_breached
        assert len(outcome.domains_resisted) == 2

    def test_breached_domain_state_extracted(self):
        deployment = make_deployment()
        outcome = DeveloperCompromise(deployment).attempt_memory_extraction([])
        developer_domain = deployment.domains[0].domain_id
        assert outcome.extracted_values[developer_domain]["secret"] == "user-key-material"

    def test_cannot_defeat_threshold_two(self):
        deployment = make_deployment()
        assert not DeveloperCompromise(deployment).can_recover_secret(threshold=2)
        assert DeveloperCompromise(deployment).can_recover_secret(threshold=1)

    def test_exploited_enclave_becomes_readable(self):
        deployment = make_deployment()
        deployment.domains[1].compromise()
        outcome = DeveloperCompromise(deployment).attempt_memory_extraction(["anything"])
        assert outcome.breached_count == 2


class TestVendorExploit:
    def test_exploit_hits_only_one_vendor(self):
        deployment = make_deployment(num_domains=5)
        outcome = VendorExploit(deployment).exploit("aws-nitro-sim")
        assert outcome.breached_count == 2  # the two Nitro-style domains
        assert len(outcome.domains_resisted) == 2  # the two SGX-style domains

    def test_defeats_application_depends_on_heterogeneity(self):
        heterogeneous = make_deployment(num_domains=5)
        # 5 domains, 2 on the exploited vendor -> 3 honest remain.
        assert not VendorExploit(heterogeneous).defeats_application("aws-nitro-sim",
                                                                    honest_required=3)
        assert VendorExploit(heterogeneous).defeats_application("aws-nitro-sim",
                                                                honest_required=4)
