"""Unit and property tests for the WVM assembler and interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AssemblerError,
    FuelExhaustedError,
    MemoryLimitError,
    SandboxEscapeError,
    WvmTrapError,
)
from repro.sandbox.wvm.assembler import assemble
from repro.sandbox.wvm.instructions import Opcode
from repro.sandbox.wvm.module import WvmFunction, WvmModule
from repro.sandbox.wvm.vm import HostFunction, WvmInstance, WvmLimits


def run(source: str, entry: str, args, limits=None, host=None) -> int:
    module = assemble(source)
    instance = WvmInstance(module, limits or WvmLimits(), host or {})
    return instance.invoke(entry, list(args))


ADD_PROGRAM = """
func add(params=2, locals=2) export
    load 0
    load 1
    add
    halt
endfunc
"""


class TestAssembler:
    def test_assemble_and_run_simple_program(self):
        assert run(ADD_PROGRAM, "add", [2, 3]) == 5

    def test_comments_and_blank_lines_ignored(self):
        source = "; leading comment\n" + ADD_PROGRAM + "\n; trailing comment\n"
        assert run(source, "add", [7, 8]) == 15

    def test_labels_resolve(self):
        source = """
        func first_nonzero(params=2, locals=2) export
            load 0
            jnz take_first
            load 1
            halt
        take_first:
            load 0
            halt
        endfunc
        """
        assert run(source, "first_nonzero", [0, 9]) == 9
        assert run(source, "first_nonzero", [4, 9]) == 4

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("func f(params=0, locals=0) export\n    frobnicate\nendfunc")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("func f(params=0, locals=0) export\n    jmp nowhere\nendfunc")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(
                "func f(params=0, locals=0) export\nx:\nx:\n    halt\nendfunc"
            )

    def test_missing_endfunc_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("func f(params=0, locals=0) export\n    halt")

    def test_instruction_outside_function_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("push 1")

    def test_module_without_exports_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("func f(params=0, locals=0)\n    halt\nendfunc")

    def test_operand_arity_enforced(self):
        with pytest.raises(AssemblerError):
            assemble("func f(params=0, locals=0) export\n    add 3\nendfunc")
        with pytest.raises(AssemblerError):
            assemble("func f(params=0, locals=0) export\n    push\nendfunc")

    def test_call_by_function_name(self):
        source = """
        func helper(params=1, locals=1)
            load 0
            push 10
            mul
            ret
        endfunc
        func main(params=1, locals=1) export
            load 0
            call helper
            halt
        endfunc
        """
        assert run(source, "main", [7]) == 70

    def test_locals_must_include_params(self):
        with pytest.raises(AssemblerError):
            WvmFunction("bad", num_params=3, num_locals=1, code=tuple())


class TestModuleSerialization:
    def test_round_trip(self):
        module = assemble(ADD_PROGRAM)
        restored = WvmModule.from_bytes(module.to_bytes())
        assert restored == module
        assert WvmInstance(restored).invoke("add", [1, 2]) == 3

    def test_digest_stable_and_content_sensitive(self):
        module = assemble(ADD_PROGRAM)
        assert module.digest() == assemble(ADD_PROGRAM).digest()
        other = assemble(ADD_PROGRAM.replace("add", "sub").replace("func sub", "func add")
                         .replace('"add"', '"add"'))
        assert module.digest() != other.digest()

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(AssemblerError):
            WvmModule.from_bytes(b"not a module")

    def test_export_listing_and_lookup(self):
        module = assemble(ADD_PROGRAM)
        assert module.export_names() == ["add"]
        with pytest.raises(AssemblerError):
            module.function_index("missing")
        with pytest.raises(AssemblerError):
            module.function(10)


class TestInterpreter:
    def test_arithmetic_operations(self):
        source = """
        func calc(params=2, locals=2) export
            load 0
            load 1
            mul
            load 0
            load 1
            sub
            add
            halt
        endfunc
        """
        # a*b + (a-b)
        assert run(source, "calc", [7, 3]) == 21 + 4

    def test_division_and_modulo(self):
        source = """
        func f(params=2, locals=2) export
            load 0
            load 1
            div
            load 0
            load 1
            mod
            add
            halt
        endfunc
        """
        assert run(source, "f", [17, 5]) == 3 + 2

    def test_division_by_zero_traps(self):
        source = "func f(params=0, locals=0) export\n push 1\n push 0\n div\n halt\nendfunc"
        with pytest.raises(WvmTrapError):
            run(source, "f", [])

    def test_comparisons(self):
        source = """
        func f(params=2, locals=2) export
            load 0
            load 1
            lt
            halt
        endfunc
        """
        assert run(source, "f", [1, 2]) == 1
        assert run(source, "f", [2, 1]) == 0

    def test_bitwise_and_shifts(self):
        source = """
        func f(params=1, locals=1) export
            load 0
            push 1
            shl
            push 255
            and
            halt
        endfunc
        """
        assert run(source, "f", [0b1011]) == (0b1011 << 1) & 255

    def test_stack_underflow_traps(self):
        source = "func f(params=0, locals=0) export\n add\n halt\nendfunc"
        with pytest.raises(WvmTrapError):
            run(source, "f", [])

    def test_wrong_argument_count_rejected(self):
        with pytest.raises(WvmTrapError):
            run(ADD_PROGRAM, "add", [1])

    def test_non_integer_argument_rejected(self):
        with pytest.raises(SandboxEscapeError):
            run(ADD_PROGRAM, "add", [1, "two"])

    def test_memory_store_load(self):
        source = """
        func f(params=1, locals=1) export
            push 10
            load 0
            mstore
            push 10
            mload
            halt
        endfunc
        """
        assert run(source, "f", [200]) == 200

    def test_memory_bounds_checked(self):
        source = "func f(params=0, locals=0) export\n push 999999\n mload\n halt\nendfunc"
        with pytest.raises(MemoryLimitError):
            run(source, "f", [], limits=WvmLimits(memory_bytes=64))

    def test_msize(self):
        source = "func f(params=0, locals=0) export\n msize\n halt\nendfunc"
        assert run(source, "f", [], limits=WvmLimits(memory_bytes=128)) == 128

    def test_fuel_exhaustion(self):
        infinite_loop = """
        func spin(params=0, locals=0) export
        top:
            jmp top
        endfunc
        """
        with pytest.raises(FuelExhaustedError):
            run(infinite_loop, "spin", [], limits=WvmLimits(max_fuel=1000))

    def test_fuel_accounting_reported(self):
        module = assemble(ADD_PROGRAM)
        instance = WvmInstance(module)
        instance.invoke("add", [1, 2])
        assert instance.fuel_used > 0
        assert instance.fuel_remaining == instance.limits.max_fuel - instance.fuel_used

    def test_call_depth_limit(self):
        source = """
        func recurse(params=0, locals=0) export
            call recurse
            halt
        endfunc
        """
        with pytest.raises(WvmTrapError):
            run(source, "recurse", [], limits=WvmLimits(max_call_depth=10))

    def test_unknown_hostcall_is_escape_error(self):
        source = "func f(params=0, locals=0) export\n push 1\n hostcall 99\n halt\nendfunc"
        with pytest.raises(SandboxEscapeError):
            run(source, "f", [])

    def test_hostcall_dispatch(self):
        source = "func f(params=1, locals=1) export\n load 0\n hostcall 5\n halt\nendfunc"
        host = {5: HostFunction("triple", 1, lambda x: x * 3)}
        assert run(source, "f", [14], host=host) == 42

    def test_falling_off_function_end_traps(self):
        source = "func f(params=0, locals=0) export\n push 1\n pop\nendfunc"
        with pytest.raises(WvmTrapError):
            run(source, "f", [])

    def test_ret_from_entry_function_returns_value(self):
        source = "func f(params=1, locals=1) export\n load 0\n ret\nendfunc"
        assert run(source, "f", [77]) == 77

    def test_stack_overflow_guard(self):
        source = """
        func f(params=0, locals=0) export
        top:
            push 1
            jmp top
        endfunc
        """
        with pytest.raises((WvmTrapError, FuelExhaustedError)):
            run(source, "f", [], limits=WvmLimits(max_stack_depth=64, max_fuel=10_000))

    def test_local_index_out_of_range(self):
        source = "func f(params=0, locals=1) export\n load 5\n halt\nendfunc"
        with pytest.raises(WvmTrapError):
            run(source, "f", [])


@settings(max_examples=40, deadline=None)
@given(a=st.integers(min_value=-(2**64), max_value=2**64), b=st.integers(min_value=-(2**64), max_value=2**64))
def test_property_add_program_matches_python(a, b):
    assert run(ADD_PROGRAM, "add", [a, b]) == a + b
