"""Unit tests for the bundled WVM programs and the executor interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bilinear import BLS_SCALAR_ORDER, BilinearGroup
from repro.crypto.bls import BlsThresholdScheme
from repro.errors import SandboxError
from repro.sandbox.executor import Executor
from repro.sandbox.native import NativeExecutor
from repro.sandbox.programs import (
    bls_share_module,
    fibonacci_module,
    modexp_module,
)
from repro.sandbox.wvm.vm import WvmLimits
from repro.sandbox.wvm_executor import WvmExecutor

GROUP = BilinearGroup()


class TestModexpProgram:
    @pytest.mark.parametrize(
        "base,exponent,modulus",
        [(2, 10, 1000), (3, 0, 7), (0, 5, 13), (7, 128, 101), (123456789, 65537, 2**61 - 1)],
    )
    def test_matches_python_pow(self, base, exponent, modulus):
        executor = WvmExecutor(modexp_module())
        result = executor.invoke("modexp", [base, exponent, modulus])
        assert result.value == pow(base, exponent, modulus)
        assert result.fuel_used > 0

    @settings(max_examples=30, deadline=None)
    @given(
        base=st.integers(min_value=0, max_value=2**128),
        exponent=st.integers(min_value=0, max_value=2**20),
        modulus=st.integers(min_value=2, max_value=2**128),
    )
    def test_property_matches_python_pow(self, base, exponent, modulus):
        executor = WvmExecutor(modexp_module(), limits=WvmLimits(max_fuel=50_000_000))
        assert executor.invoke("modexp", [base, exponent, modulus]).value == pow(
            base, exponent, modulus
        )


class TestFibonacciProgram:
    def test_known_values(self):
        executor = WvmExecutor(fibonacci_module())
        values = [executor.invoke("fibonacci", [n]).value for n in range(10)]
        assert values == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]


class TestBlsShareProgram:
    def test_scalar_mul_matches_modular_multiplication(self):
        executor = WvmExecutor(bls_share_module())
        scalar, base = 0xDEADBEEF, 0xC0FFEE
        result = executor.invoke("scalar_mul", [scalar, base, BLS_SCALAR_ORDER])
        assert result.value == (scalar * base) % BLS_SCALAR_ORDER

    def test_bls_share_matches_native_threshold_share(self):
        """The sandboxed program must produce the same share a native signer would."""
        scheme = BlsThresholdScheme(2, 3)
        _, shares = scheme.keygen(seed=b"sandbox-equivalence")
        message = b"transfer 10 BTC"
        message_int = int.from_bytes(message, "big")

        executor = WvmExecutor(bls_share_module())
        for share in shares:
            sandboxed = executor.invoke(
                "bls_share", [message_int, len(message), share.value, BLS_SCALAR_ORDER]
            )
            native = scheme.sign_share(share, message)
            assert sandboxed.value == native.signature.element.exponent

    def test_combined_signature_from_sandboxed_shares_verifies(self):
        scheme = BlsThresholdScheme(2, 3)
        public_key, shares = scheme.keygen(seed=b"sandbox-combine")
        message = b"custody withdrawal"
        message_int = int.from_bytes(message, "big")
        executor = WvmExecutor(bls_share_module())

        from repro.crypto.bilinear import G1Element
        from repro.crypto.bls import BlsSignature, BlsSignatureShare

        partials = []
        for share in shares[:2]:
            value = executor.invoke(
                "bls_share", [message_int, len(message), share.value, BLS_SCALAR_ORDER]
            ).value
            partials.append(BlsSignatureShare(share.index, BlsSignature(G1Element(value))))
        combined = scheme.combine(partials)
        assert scheme.verify(public_key, message, combined)

    def test_fuel_scales_with_scalar_size(self):
        executor = WvmExecutor(bls_share_module())
        small = executor.invoke("scalar_mul", [3, 5, BLS_SCALAR_ORDER]).fuel_used
        large = executor.invoke(
            "scalar_mul", [BLS_SCALAR_ORDER - 2, 5, BLS_SCALAR_ORDER]
        ).fuel_used
        assert large > small * 10


class TestExecutors:
    def test_executor_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().invoke("x", [])
        assert Executor().describe() == {"name": "abstract"}

    def test_native_executor_registration_and_invoke(self):
        executor = NativeExecutor()
        executor.register("double", lambda x: 2 * x)
        result = executor.invoke("double", [21])
        assert result.value == 42
        assert result.fuel_used == 0
        assert result.environment == "native"
        assert executor.entry_names() == ["double"]

    def test_native_executor_unknown_entry(self):
        with pytest.raises(SandboxError):
            NativeExecutor().invoke("missing", [])

    def test_wvm_executor_describe(self):
        executor = WvmExecutor(modexp_module())
        description = executor.describe()
        assert description["name"] == "wvm-sandbox"
        assert len(description["module_digest"]) == 64

    def test_wvm_executor_accumulates_fuel(self):
        executor = WvmExecutor(fibonacci_module())
        executor.invoke("fibonacci", [10])
        executor.invoke("fibonacci", [10])
        assert executor.total_fuel_used > 0

    def test_native_and_sandboxed_results_agree(self):
        """The same operation under both environments yields identical values."""
        def native_scalar_mul(scalar, base, modulus):
            accumulator = 0
            while scalar:
                if scalar & 1:
                    accumulator = (accumulator + base) % modulus
                base = (base + base) % modulus
                scalar >>= 1
            return accumulator

        native = NativeExecutor({"scalar_mul": native_scalar_mul})
        sandboxed = WvmExecutor(bls_share_module())
        args = [987654321, 123456789, BLS_SCALAR_ORDER]
        assert native.invoke("scalar_mul", args).value == sandboxed.invoke("scalar_mul", args).value
