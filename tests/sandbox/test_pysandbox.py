"""Unit tests for the restricted Python sandbox."""

import pytest

from repro.errors import SandboxError, SandboxEscapeError
from repro.sandbox.pysandbox import PythonSandbox, SandboxPolicy

COUNTER_APP = """
def init(config):
    return {"count": config.get("start", 0)}

def handle(method, params, state):
    if method == "increment":
        state["count"] = state["count"] + params.get("by", 1)
        return state["count"]
    if method == "read":
        return state["count"]
    raise ValueError("unknown method: " + method)
"""

KEY_STORE_APP = """
def init(config):
    return {"shares": {}}

def handle(method, params, state):
    if method == "store":
        state["shares"][params["user"]] = params["share"]
        return True
    if method == "fetch":
        return state["shares"].get(params["user"])
    raise ValueError("unknown method")
"""


class TestLoading:
    def test_loads_and_initializes(self):
        sandbox = PythonSandbox(COUNTER_APP, config={"start": 5})
        assert sandbox.invoke("read", {}) == 5

    def test_missing_handle_rejected(self):
        with pytest.raises(SandboxError):
            PythonSandbox("x = 1")

    def test_missing_init_defaults_to_empty_state(self):
        sandbox = PythonSandbox("def handle(method, params, state):\n    return state")
        assert sandbox.invoke("anything", {}) == {}

    def test_syntax_error_rejected(self):
        with pytest.raises(SandboxError):
            PythonSandbox("def handle(method, params state):\n    return 1")

    def test_init_failure_rejected(self):
        source = "def init(config):\n    raise ValueError('nope')\ndef handle(m, p, s):\n    return 1"
        with pytest.raises(SandboxError):
            PythonSandbox(source)

    def test_source_size_limit(self):
        big = "# " + "x" * 1024 + "\ndef handle(m, p, s):\n    return 1"
        with pytest.raises(SandboxError):
            PythonSandbox(big, policy=SandboxPolicy(max_source_bytes=100))


class TestContainment:
    def test_import_statement_rejected(self):
        with pytest.raises(SandboxEscapeError):
            PythonSandbox("import os\ndef handle(m, p, s):\n    return 1")

    def test_dunder_import_rejected(self):
        with pytest.raises(SandboxEscapeError):
            PythonSandbox("def handle(m, p, s):\n    return __import__('os').getcwd()")

    def test_open_rejected(self):
        with pytest.raises(SandboxEscapeError):
            PythonSandbox("def handle(m, p, s):\n    return open('/etc/passwd').read()")

    def test_eval_rejected(self):
        with pytest.raises(SandboxEscapeError):
            PythonSandbox("def handle(m, p, s):\n    return eval('1+1')")

    def test_subclass_walk_rejected(self):
        source = "def handle(m, p, s):\n    return ().__class__.__bases__[0].__subclasses__()"
        with pytest.raises(SandboxEscapeError):
            PythonSandbox(source)

    def test_non_plain_data_result_rejected(self):
        sandbox = PythonSandbox("def handle(m, p, s):\n    return lambda: 1")
        with pytest.raises(SandboxEscapeError):
            sandbox.invoke("x", {})

    def test_result_size_limit(self):
        sandbox = PythonSandbox(
            "def handle(m, p, s):\n    return [0] * 100000",
            policy=SandboxPolicy(max_result_bytes=1000),
        )
        with pytest.raises(SandboxError):
            sandbox.invoke("x", {})

    def test_parameters_must_be_plain_data(self):
        sandbox = PythonSandbox(COUNTER_APP)
        with pytest.raises(SandboxError):
            sandbox.invoke("increment", {"by": object()})


class TestInvocation:
    def test_stateful_behaviour(self):
        sandbox = PythonSandbox(COUNTER_APP)
        assert sandbox.invoke("increment", {"by": 3}) == 3
        assert sandbox.invoke("increment", {"by": 4}) == 7
        assert sandbox.invoke("read", {}) == 7
        assert sandbox.invocations == 3

    def test_application_exception_wrapped(self):
        sandbox = PythonSandbox(COUNTER_APP)
        with pytest.raises(SandboxError, match="unknown method"):
            sandbox.invoke("explode", {})

    def test_key_store_round_trip(self):
        sandbox = PythonSandbox(KEY_STORE_APP)
        assert sandbox.invoke("store", {"user": "alice", "share": b"\x01\x02"}) is True
        assert sandbox.invoke("fetch", {"user": "alice"}) == b"\x01\x02"
        assert sandbox.invoke("fetch", {"user": "bob"}) is None

    def test_parameter_isolation(self):
        """Mutating the params inside the app must not affect the caller's object."""
        source = """
def handle(method, params, state):
    params["mutated"] = True
    return params
"""
        sandbox = PythonSandbox(source)
        original = {"value": 1}
        result = sandbox.invoke("x", original)
        assert "mutated" not in original
        assert result["mutated"] is True
