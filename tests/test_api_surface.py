"""Smoke tests for the public API surface.

These tests guard the package's import structure: everything advertised in the
subpackage ``__all__`` lists must be importable from the documented location,
so downstream users can rely on the paths README.md and the examples use.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.crypto",
    "repro.wire",
    "repro.net",
    "repro.enclave",
    "repro.sandbox",
    "repro.transparency",
    "repro.core",
    "repro.service",
    "repro.apps",
    "repro.sim",
]


class TestPackageMetadata:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} is missing a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"


class TestDocumentedEntryPoints:
    def test_readme_quickstart_path(self):
        """The exact imports used in README.md's quickstart must keep working."""
        from repro.core.client import AuditingClient
        from repro.core.deployment import Deployment, DeploymentConfig
        from repro.core.package import CodePackage, DeveloperIdentity
        from repro.sandbox.programs import bls_share_source

        developer = DeveloperIdentity("readme")
        deployment = Deployment("readme", developer, DeploymentConfig(num_domains=2))
        package = CodePackage("bls-custody", "1.0.0", "wvm", bls_share_source())
        deployment.publish_and_install(package)
        assert AuditingClient(deployment.vendor_registry).audit_deployment(deployment).ok

    def test_error_hierarchy_single_root(self):
        from repro import errors

        exception_types = [
            getattr(errors, name) for name in errors.__all__
            if isinstance(getattr(errors, name), type)
        ]
        assert all(issubclass(exc, errors.ReproError) for exc in exception_types)

    def test_public_docstrings_on_core_classes(self):
        from repro.core.client import AuditingClient
        from repro.core.deployment import Deployment
        from repro.core.framework import TrustDomainFramework
        from repro.core.trust_domain import TrustDomain
        from repro.service import HashRing, ServiceClient, ServiceSpec, ShardedService

        for cls in (AuditingClient, Deployment, TrustDomainFramework, TrustDomain,
                    ServiceSpec, ShardedService, ServiceClient, HashRing):
            assert cls.__doc__
            public_methods = [
                attr for name, attr in vars(cls).items()
                if callable(attr) and not name.startswith("_")
            ]
            assert all(method.__doc__ for method in public_methods), cls


class TestServicePlaneSurface:
    """The service-plane redesign's API surface, pinned.

    The redesign moved the four apps onto `repro.service`; these tests make
    sure the new exports stay importable from the documented locations AND
    that the legacy per-app constructors (the pre-redesign surface every
    existing test, example, and scenario driver uses) keep working unchanged.
    """

    def test_service_exports(self):
        from repro.service import (  # noqa: F401
            HashRing,
            PackageBinding,
            ServiceClient,
            ServiceSpec,
            ShardedService,
        )
        from repro.service.spec import PackageBinding as SpecBinding
        from repro.net.rpc import PendingRpcBatch, ServiceTimeModel  # noqa: F401
        from repro.core.deployment import PendingInvokeBatch  # noqa: F401
        from repro.errors import ServiceSpecError  # noqa: F401

        assert SpecBinding is PackageBinding

    def test_split_phase_invoke_surface(self):
        from repro.core.deployment import Deployment
        from repro.net.rpc import RpcClient, RpcServer

        assert callable(Deployment.begin_invoke_batch)
        assert callable(Deployment.set_service_time)
        assert callable(RpcClient.begin_many)
        assert "service_model" in RpcServer.__init__.__code__.co_varnames

    def test_legacy_app_constructors_still_work(self):
        """The exact pre-redesign constructor shapes, with their attributes."""
        from repro.apps import (
            CustodyDeployment,
            KeyBackupDeployment,
            ObliviousDnsDeployment,
            PrivateAggregationDeployment,
        )
        from repro.core.deployment import Deployment
        from repro.service import ShardedService

        services = [
            KeyBackupDeployment(num_domains=3, threshold=2),
            PrivateAggregationDeployment(num_servers=2, max_value=10),
            ObliviousDnsDeployment(records={"a.example.org": "192.0.2.1"}),
            CustodyDeployment(threshold=2, num_signers=3, keygen_seed=b"apisurfc"),
        ]
        for service in services:
            # The legacy single-deployment handle AND the new plane coexist.
            assert isinstance(service.deployment, Deployment)
            assert isinstance(service.plane, ShardedService)
            assert service.plane.primary is service.deployment
            assert service.plane.num_shards == 1

    def test_legacy_clients_expose_session_and_auditing_client(self):
        from repro.apps import KeyBackupClient, KeyBackupDeployment
        from repro.core.client import AuditingClient
        from repro.service import ServiceClient

        client = KeyBackupClient(KeyBackupDeployment(num_domains=2, threshold=2),
                                 audit_before_use=False)
        assert isinstance(client.session, ServiceClient)
        assert isinstance(client.auditing_client, AuditingClient)

    def test_apps_accept_shards_keyword(self):
        from repro.apps import KeyBackupDeployment, PrivateAggregationDeployment

        assert KeyBackupDeployment(num_domains=2, shards=2).plane.num_shards == 2
        assert PrivateAggregationDeployment(num_servers=2, shards=3).num_shards == 3
