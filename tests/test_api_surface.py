"""Smoke tests for the public API surface.

These tests guard the package's import structure: everything advertised in the
subpackage ``__all__`` lists must be importable from the documented location,
so downstream users can rely on the paths README.md and the examples use.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.crypto",
    "repro.wire",
    "repro.net",
    "repro.enclave",
    "repro.sandbox",
    "repro.transparency",
    "repro.core",
    "repro.apps",
    "repro.sim",
]


class TestPackageMetadata:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} is missing a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"


class TestDocumentedEntryPoints:
    def test_readme_quickstart_path(self):
        """The exact imports used in README.md's quickstart must keep working."""
        from repro.core.client import AuditingClient
        from repro.core.deployment import Deployment, DeploymentConfig
        from repro.core.package import CodePackage, DeveloperIdentity
        from repro.sandbox.programs import bls_share_source

        developer = DeveloperIdentity("readme")
        deployment = Deployment("readme", developer, DeploymentConfig(num_domains=2))
        package = CodePackage("bls-custody", "1.0.0", "wvm", bls_share_source())
        deployment.publish_and_install(package)
        assert AuditingClient(deployment.vendor_registry).audit_deployment(deployment).ok

    def test_error_hierarchy_single_root(self):
        from repro import errors

        exception_types = [
            getattr(errors, name) for name in errors.__all__
            if isinstance(getattr(errors, name), type)
        ]
        assert all(issubclass(exc, errors.ReproError) for exc in exception_types)

    def test_public_docstrings_on_core_classes(self):
        from repro.core.client import AuditingClient
        from repro.core.deployment import Deployment
        from repro.core.framework import TrustDomainFramework
        from repro.core.trust_domain import TrustDomain

        for cls in (AuditingClient, Deployment, TrustDomainFramework, TrustDomain):
            assert cls.__doc__
            public_methods = [
                attr for name, attr in vars(cls).items()
                if callable(attr) and not name.startswith("_")
            ]
            assert all(method.__doc__ for method in public_methods), cls
