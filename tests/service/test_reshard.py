"""Tests for live resharding: ring stability properties, the epoch router's
fail-safe guarantees, the migration coordinator, and the scatter negative
paths the migration drivers rely on."""

import pytest

from repro.errors import (
    InvalidReshardError,
    KeyMigratingError,
    ReshardError,
    ServiceSpecError,
)
from repro.net.latency import lan_profile
from repro.net.transport import FaultDecision, Network
from repro.service import (
    HashRing,
    MigrationOutcome,
    RingDiff,
    ServiceSpec,
    ShardedService,
    ShardMigrator,
)
from repro.core.deployment import Deployment
from repro.core.package import CodePackage, DeveloperIdentity

COUNTER_APP = '''
def init(config):
    previous = config.get("previous_state")
    if previous:
        return previous
    return {"items": {}}

def handle(method, params, state):
    if method == "put":
        state["items"][params["key"]] = params["value"]
        return {"stored": True}
    if method == "get":
        return {"value": state["items"].get(params["key"])}
    if method == "keys":
        return {"keys": sorted(state["items"].keys())}
    if method == "pop":
        return {"removed": state["items"].pop(params["key"], None) is not None}
    raise ValueError("unknown method: " + method)
'''


def make_plane(shards=2, domains=1, name="resvc", **spec_kwargs):
    package = CodePackage(name, "1.0.0", "python", COUNTER_APP)
    spec = ServiceSpec(name=name, packages=(package,), domains_per_shard=domains,
                       shard_count=shards, include_developer_domain=False,
                       **spec_kwargs)
    return spec.synthesize(DeveloperIdentity(f"{name}-dev"))


class CounterMigrator(ShardMigrator):
    """Moves the counter app's items between shards (domain 0 holds them)."""

    def shard_keys(self, plane, shard_index):
        return plane.invoke_on_shard(shard_index, 0, "keys", {})["value"]["keys"]

    def migrate(self, plane, source, target, keys):
        outcome = MigrationOutcome()
        for key in keys:
            value = plane.invoke_on_shard(source, 0, "get",
                                          {"key": key})["value"]["value"]
            plane.invoke_on_shard(target, 0, "put", {"key": key, "value": value})
            plane.invoke_on_shard(source, 0, "pop", {"key": key})
            outcome.moved.append(key)
            outcome.records_moved += 1
        return outcome


# ---------------------------------------------------------------------------
# HashRing stability properties
# ---------------------------------------------------------------------------

class TestRingProperties:
    KEYS = [f"key-{i}" for i in range(2000)]

    @pytest.mark.parametrize("shard_count", [2, 3, 4, 7])
    def test_growing_moves_about_one_over_n_plus_one(self, shard_count):
        """N -> N+1 moves ~1/(N+1) of keys, far from a modulo reshuffle."""
        ring = HashRing(shard_count)
        diff = ring.diff(ring.grow(shard_count + 1), self.KEYS)
        expected = 1.0 / (shard_count + 1)
        assert diff.moved_fraction <= expected * 1.6 + 0.02, (
            f"{shard_count}->{shard_count + 1} moved {diff.moved_fraction:.2%}, "
            f"expected about {expected:.2%}"
        )
        assert diff.moved_fraction > 0
        # Every move lands on the new shard — existing arcs never trade keys.
        assert all(target == shard_count for _, _, target in diff.moved)

    @pytest.mark.parametrize("shard_count", [2, 4, 8])
    def test_spread_stays_under_docstring_bound(self, shard_count):
        """The largest shard carries < 1.6x the mean at 128 vnodes."""
        ring = HashRing(shard_count, vnodes=128)
        counts = ring.distribution(f"user-{i}" for i in range(20000))
        mean = sum(counts) / len(counts)
        assert max(counts) < 1.6 * mean, counts

    def test_distinct_salts_give_uncorrelated_placements(self):
        """Two services' rings place the same keys independently."""
        a = HashRing(4, salt=b"repro/service/alpha")
        b = HashRing(4, salt=b"repro/service/beta")
        agreements = sum(1 for key in self.KEYS
                         if a.shard_for(key) == b.shard_for(key))
        # Independent placement agrees ~1/4 of the time; anything close to
        # half would mean the salts are correlated.
        assert 0.15 < agreements / len(self.KEYS) < 0.40

    def test_diff_requires_matching_salts(self):
        with pytest.raises(ValueError):
            HashRing(2, salt=b"a").diff(HashRing(3, salt=b"b"), ["k"])

    def test_grow_preserves_vnodes_and_salt(self):
        ring = HashRing(2, vnodes=64, salt=b"custom")
        grown = ring.grow(5)
        assert (grown.shard_count, grown.vnodes, grown.salt) == (5, 64, b"custom")

    def test_diff_groups_by_route(self):
        ring = HashRing(2)
        diff = ring.diff(ring.grow(4), self.KEYS[:500])
        routes = diff.by_route()
        assert sum(len(keys) for keys in routes.values()) == diff.moved_count
        assert all(source in (0, 1) and target in (2, 3)
                   for source, target in routes)

    def test_empty_diff(self):
        ring = HashRing(3)
        diff = ring.diff(ring.grow(4), [])
        assert diff.moved_fraction == 0.0 and diff.moved_count == 0
        assert isinstance(diff, RingDiff)


class TestRingShrinkProperties:
    """Mirror-image stability: the diff properties hold for shrinks too."""

    KEYS = [f"key-{i}" for i in range(2000)]

    @pytest.mark.parametrize("shard_count,retire", [(3, 1), (4, 2), (8, 3)])
    def test_shrinking_moves_about_k_over_n(self, shard_count, retire):
        """N -> N-k moves ~k/N of keys — only what the retired shards owned."""
        ring = HashRing(shard_count)
        survivors = shard_count - retire
        diff = ring.diff(ring.shrink(survivors), self.KEYS)
        expected = retire / shard_count
        assert diff.moved_fraction <= expected * 1.6 + 0.02, (
            f"{shard_count}->{survivors} moved {diff.moved_fraction:.2%}, "
            f"expected about {expected:.2%}"
        )
        assert diff.moved_fraction > 0

    def test_only_retired_shards_lose_keys(self):
        """Every moved key leaves a retired shard and lands on a survivor."""
        ring = HashRing(4)
        diff = ring.diff(ring.shrink(2), self.KEYS)
        assert diff.source_shards() == {2, 3}
        assert diff.target_shards() <= {0, 1}
        # Keys on surviving shards never trade places between survivors.
        for key in self.KEYS:
            if ring.shard_for(key) < 2:
                assert ring.shrink(2).shard_for(key) == ring.shard_for(key)

    def test_grow_then_shrink_round_trips_placement(self):
        """grow∘shrink is the identity on routing for every key."""
        ring = HashRing(2)
        round_tripped = ring.grow(5).shrink(2)
        assert all(round_tripped.shard_for(key) == ring.shard_for(key)
                   for key in self.KEYS)

    def test_shrunk_ring_equals_fresh_ring(self):
        """Shrinking reproduces exactly the ring a smaller service builds."""
        shrunk = HashRing(6, vnodes=64, salt=b"custom").shrink(3)
        fresh = HashRing(3, vnodes=64, salt=b"custom")
        assert (shrunk.shard_count, shrunk.vnodes, shrunk.salt) == (3, 64, b"custom")
        assert all(shrunk.shard_for(key) == fresh.shard_for(key)
                   for key in self.KEYS[:500])

    def test_shrink_salt_decorrelation(self):
        """Differently salted rings retire different slices of the keyspace."""
        moved_sets = []
        for salt in (b"repro/service/alpha", b"repro/service/beta"):
            ring = HashRing(4, salt=salt)
            diff = ring.diff(ring.shrink(2), self.KEYS)
            moved_sets.append({key for key, _, _ in diff.moved})
        overlap = len(moved_sets[0] & moved_sets[1]) / len(moved_sets[0])
        # Independent ~50% samples overlap ~50%; near 1.0 would mean the
        # salts correlate retirement.
        assert 0.3 < overlap < 0.7, overlap

    def test_resize_direction_validation(self):
        ring = HashRing(4)
        with pytest.raises(ValueError):
            ring.shrink(0)
        with pytest.raises(ValueError):
            ring.shrink(4)
        with pytest.raises(ValueError):
            ring.shrink(5)
        with pytest.raises(ValueError):
            ring.grow(4)
        with pytest.raises(ValueError):
            ring.grow(3)
        assert ring.resize(4).shard_count == 4  # resize itself is unopinionated


# ---------------------------------------------------------------------------
# Epoch router + coordinator
# ---------------------------------------------------------------------------

class TestLiveReshard:
    def _loaded_plane(self, keys, shards=2):
        plane = make_plane(shards=shards)
        plane.migrator = CounterMigrator()
        for key in keys:
            plane.invoke(key, 0, "put", {"key": key, "value": f"v-{key}"})
        return plane

    def test_reshard_moves_minimal_keys_and_flips_epoch(self):
        keys = [f"key-{i}" for i in range(40)]
        plane = self._loaded_plane(keys)
        before = {key: plane.shard_for(key) for key in keys}
        report = plane.reshard(4)
        assert report.ok and plane.epoch == 1 and plane.num_shards == 4
        assert report.new_shard_count == 4
        # Unmoved keys kept their placement; every key's record is readable
        # from its new owner.
        for key in keys:
            after = plane.shard_for(key)
            if after == before[key]:
                continue
            assert after >= 2  # moves only land on grown shards
        for key in keys:
            value = plane.invoke(key, 0, "get", {"key": key})["value"]["value"]
            assert value == f"v-{key}"
        assert report.diff.moved_count == report.migrated_keys > 0

    def test_degenerate_transitions_raise_typed_error_untouched(self):
        """Same-count, zero, and negative targets fail before anything moves."""
        plane = self._loaded_plane(["a", "b"])

        class CountingMigrator(CounterMigrator):
            enumerations = 0

            def shard_keys(self, plane, shard_index):
                type(self).enumerations += 1
                return super().shard_keys(plane, shard_index)

        plane.migrator = CountingMigrator()
        for degenerate in (2, 0, -1):
            with pytest.raises(InvalidReshardError):
                plane.reshard(degenerate)
        # Validation rejected the requests before enumerating a single shard;
        # the plane is untouched.
        assert CountingMigrator.enumerations == 0
        assert plane.epoch == 0 and plane.num_shards == 2
        # A plane adopted without a spec cannot reshard at all.
        package = CodePackage("bare", "1.0.0", "python", COUNTER_APP)
        deployment = Deployment("bare", DeveloperIdentity("bare-dev"))
        deployment.publish_and_install(package)
        adopted = ShardedService.adopt(deployment)
        with pytest.raises(ReshardError):
            adopted.reshard(3)

    def test_moving_keys_fail_safely_during_migration(self):
        """Mid-migration, a moving key's routing raises instead of guessing."""
        plane = self._loaded_plane([f"key-{i}" for i in range(10)])
        plane.begin_epoch(["key-3"])
        with pytest.raises(KeyMigratingError):
            plane.shard_for("key-3")
        # Scatter isolates the refusal to the moving key's own call.
        outcomes = plane.scatter([("key-3", 0, "get", {"key": "key-3"}),
                                  ("key-4", 0, "get", {"key": "key-4"})])
        assert isinstance(outcomes[0], KeyMigratingError)
        assert outcomes[1]["value"]["value"] == "v-key-4"
        plane.commit_epoch(plane.ring)
        assert plane.shard_for("key-3") in range(plane.num_shards)

    def test_failed_migration_pins_key_then_finish_drains_it(self):
        """A key whose records cannot move keeps routing to its old shard."""
        keys = [f"key-{i}" for i in range(30)]
        plane = self._loaded_plane(keys)
        moved = plane.ring.diff(plane.ring.grow(4), keys).moved
        victim = moved[0][0]

        class FlakyMigrator(CounterMigrator):
            def migrate(self, plane, source, target, keys):
                outcome = super().migrate(plane, source, target,
                                          [k for k in keys if k != victim])
                if victim in keys:
                    outcome.failed[victim] = "injected migration failure"
                return outcome

        plane.migrator = FlakyMigrator()
        report = plane.reshard(4)
        assert not report.ok and victim in report.failed_keys
        assert plane.pending_migration_keys == 1
        # The pinned key still routes to the shard that holds its records.
        assert plane.invoke(victim, 0, "get",
                            {"key": victim})["value"]["value"] == f"v-{victim}"
        # Draining with a healthy migrator moves it and drops the override.
        plane.migrator = CounterMigrator()
        drain = plane.finish_reshard()
        assert drain.migrated_keys == 1 and plane.pending_migration_keys == 0
        assert plane.shard_for(victim) == plane.ring.shard_for(victim)
        assert plane.invoke(victim, 0, "get",
                            {"key": victim})["value"]["value"] == f"v-{victim}"

    def test_planning_failure_rolls_back_and_retry_reuses_spare_shards(self):
        """An abort before any record moves restores the old epoch, and a
        retry must reuse the parked shards (their network endpoints are
        already registered — synthesizing twins would collide)."""
        keys = [f"key-{i}" for i in range(12)]
        plane = self._loaded_plane(keys)
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=1)

        class UnenumerableMigrator(CounterMigrator):
            def shard_keys(self, plane, shard_index):
                raise ReshardError("shard unreachable")

        plane.migrator = UnenumerableMigrator()
        with pytest.raises(ReshardError):
            plane.reshard(4)
        # Old epoch intact: two shards, old ring, no keys stuck mid-move,
        # and the synthesized shards parked for reuse.
        assert plane.epoch == 0 and plane.num_shards == 2
        assert plane.ring.shard_count == 2 and not plane._moving
        assert sorted(plane._spare_shards) == [2, 3]
        for key in keys:
            assert plane.invoke(key, 0, "get",
                                {"key": key})["value"]["value"] == f"v-{key}"
        # Retry with a healthy migrator succeeds on the same network.
        plane.migrator = CounterMigrator()
        report = plane.reshard(4)
        assert report.ok and plane.epoch == 1 and plane.num_shards == 4
        assert not plane._spare_shards
        for key in keys:
            assert plane.invoke(key, 0, "get",
                                {"key": key})["value"]["value"] == f"v-{key}"

    def test_migrator_crash_mid_migration_commits_and_pins(self):
        """Once records may have moved there is no rollback: the epoch
        commits, completed routes keep their new owner, and everything the
        crash left behind is pinned to its source — zero lost records."""
        keys = [f"key-{i}" for i in range(30)]
        plane = self._loaded_plane(keys)

        class ExplodesOnSecondRoute(CounterMigrator):
            calls = 0

            def migrate(self, plane, source, target, keys):
                type(self).calls += 1
                if type(self).calls > 1:
                    raise RuntimeError("boom")
                return super().migrate(plane, source, target, keys)

        plane.migrator = ExplodesOnSecondRoute()
        with pytest.raises(ReshardError) as excinfo:
            plane.reshard(4)
        report = excinfo.value.report
        assert plane.epoch == 1 and plane.num_shards == 4
        assert report.migrated_keys > 0 and report.failed_keys
        assert plane.pending_migration_keys == len(report.failed_keys)
        # Every key — moved, pinned, or untouched — is still readable.
        for key in keys:
            assert plane.invoke(key, 0, "get",
                                {"key": key})["value"]["value"] == f"v-{key}"
        plane.migrator = CounterMigrator()
        drain = plane.finish_reshard()
        assert drain.migrated_keys == len(report.failed_keys)
        assert plane.pending_migration_keys == 0

    def test_stale_source_records_are_cleaned_on_finish(self):
        """A moved key whose source cleanup was lost stays authoritative on
        the target (never pinned back to a partially deleted source) and is
        cleaned up by finish_reshard()."""
        keys = [f"key-{i}" for i in range(30)]
        plane = self._loaded_plane(keys)
        cleaned = []

        class LeakyMigrator(CounterMigrator):
            def migrate(self, plane, source, target, keys):
                # Copy without deleting: every key moves but leaves a stale
                # source copy behind.
                outcome = MigrationOutcome()
                for key in keys:
                    value = plane.invoke_on_shard(
                        source, 0, "get", {"key": key})["value"]["value"]
                    plane.invoke_on_shard(target, 0, "put",
                                          {"key": key, "value": value})
                    outcome.moved.append(key)
                    outcome.records_moved += 1
                outcome.stale = list(keys)
                return outcome

            def cleanup(self, plane, shard_index, keys):
                for key in keys:
                    plane.invoke_on_shard(shard_index, 0, "pop", {"key": key})
                cleaned.extend(keys)
                return list(keys)

        plane.migrator = LeakyMigrator()
        report = plane.reshard(4)
        assert not report.ok and report.stale_keys and not report.failed_keys
        assert len(plane.pending_cleanups()) == len(report.stale_keys)
        # Moved keys route to their ring owner (the target), not the source.
        for key in report.stale_keys:
            assert plane.shard_for(key) == plane.ring.shard_for(key) >= 2
        drain = plane.finish_reshard()
        assert sorted(cleaned) == sorted(report.stale_keys)
        assert not plane.pending_cleanups() and drain.migrated_keys == 0
        # After cleanup, exactly one shard holds each stale key's record.
        for key in report.stale_keys:
            holders = [
                shard_index for shard_index in range(plane.num_shards)
                if plane.invoke_on_shard(shard_index, 0, "get",
                                         {"key": key})["value"]["value"] is not None
            ]
            assert holders == [plane.ring.shard_for(key)]

    def test_resharded_plane_joins_network_and_service_times(self):
        plane = self._loaded_plane([f"key-{i}" for i in range(16)])
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=2)
        plane.set_service_time(0.001)
        report = plane.reshard(4)
        assert report.ok
        # Grown shards are routed on the same network with the same model;
        # an invoke against one crosses the wire.
        grown = plane.shards[3]
        assert grown._rpc_clients is not None
        before = network.stats.messages_sent
        plane.invoke_on_shard(3, 0, "get", {"key": "?"})
        assert network.stats.messages_sent > before
        assert all(server.service_model is not None
                   and server.service_model.per_request == 0.001
                   for server in grown._servers)


# ---------------------------------------------------------------------------
# Live shrink: evacuate -> verify -> commit -> retire
# ---------------------------------------------------------------------------

class TestLiveShrink:
    def _loaded_plane(self, keys, shards=4):
        plane = make_plane(shards=shards)
        plane.migrator = CounterMigrator()
        for key in keys:
            plane.invoke(key, 0, "put", {"key": key, "value": f"v-{key}"})
        return plane

    def test_clean_shrink_evacuates_and_detaches(self):
        keys = [f"key-{i}" for i in range(40)]
        plane = self._loaded_plane(keys, shards=4)
        before = {key: plane.shard_for(key) for key in keys}
        report = plane.reshard(2)
        assert report.ok and plane.epoch == 1 and plane.num_shards == 2
        assert report.new_shard_count == 2
        assert len(report.retired) == 2 and not report.draining
        assert plane.draining_shards() == []
        assert sorted(plane._spare_shards) == [2, 3]
        # Survivors kept their keys; only retiring shards' keys moved, and
        # every record is readable from its new owner.
        for key in keys:
            after = plane.shard_for(key)
            if before[key] < 2:
                assert after == before[key]
            else:
                assert after < 2
            value = plane.invoke(key, 0, "get", {"key": key})["value"]["value"]
            assert value == f"v-{key}"
        assert report.diff.moved_count == report.migrated_keys > 0
        # The retired shards' queues are genuinely gone from the plane: no
        # scatter route, no queue-depth surface.
        assert sorted(plane.max_queue_depth_per_shard()) == [0, 1]
        with pytest.raises(ServiceSpecError):
            plane.scatter_to_shards([(2, 0, "get", {"key": "k"})])

    def test_failed_evacuation_pins_key_and_keeps_shard_draining(self):
        """A defeated evacuation leaves the retiring shard attached and
        routed (via the override) until finish_reshard() drains it."""
        keys = [f"key-{i}" for i in range(30)]
        plane = self._loaded_plane(keys, shards=3)
        victim = next(key for key in keys if plane.shard_for(key) == 2)

        class FlakyMigrator(CounterMigrator):
            def migrate(self, plane, source, target, keys):
                outcome = super().migrate(plane, source, target,
                                          [k for k in keys if k != victim])
                if victim in keys:
                    outcome.failed[victim] = "injected evacuation failure"
                return outcome

        plane.migrator = FlakyMigrator()
        report = plane.reshard(2)
        assert not report.ok and victim in report.failed_keys
        # The retiring shard still holds the victim's records, so it stays
        # attached — out of the ring but draining.
        assert plane.ring.shard_count == 2 and plane.num_shards == 3
        assert plane.draining_shards() == [2]
        assert report.draining == [plane.shards[2].name] and not report.retired
        assert plane.shard_for(victim) == 2
        assert plane.invoke(victim, 0, "get",
                            {"key": victim})["value"]["value"] == f"v-{victim}"
        # Another reshard is refused while the drain is outstanding.
        with pytest.raises(InvalidReshardError):
            plane.reshard(4)
        # Healing the migrator and draining moves the victim and finally
        # detaches the shard.
        plane.migrator = CounterMigrator()
        drain = plane.finish_reshard()
        assert drain.migrated_keys == 1
        assert drain.retired == [report.draining[0]] and not drain.draining
        assert plane.num_shards == 2 and plane.draining_shards() == []
        assert plane.shard_for(victim) == plane.ring.shard_for(victim) < 2
        assert plane.invoke(victim, 0, "get",
                            {"key": victim})["value"]["value"] == f"v-{victim}"

    def test_verification_pins_records_the_migrator_never_saw(self):
        """A record hidden from the evacuation plan is caught by the
        post-evacuation re-enumeration and pinned, never stranded."""
        keys = [f"key-{i}" for i in range(30)]
        plane = self._loaded_plane(keys, shards=4)
        hidden = next(key for key in keys if plane.shard_for(key) == 3)

        class AmnesiacMigrator(CounterMigrator):
            hid_once = False

            def shard_keys(self, plane, shard_index):
                enumerated = super().shard_keys(plane, shard_index)
                if (shard_index == 3 and not type(self).hid_once
                        and hidden in enumerated):
                    type(self).hid_once = True
                    return [k for k in enumerated if k != hidden]
                return enumerated

        plane.migrator = AmnesiacMigrator()
        report = plane.reshard(2)
        assert not report.ok and hidden in report.failed_keys
        assert "verification" in report.failed_keys[hidden]
        # The hidden record's shard is still attached and still routed.
        assert 3 in plane.draining_shards()
        assert plane.invoke(hidden, 0, "get",
                            {"key": hidden})["value"]["value"] == f"v-{hidden}"
        plane.migrator = CounterMigrator()
        plane.finish_reshard()
        assert plane.num_shards == 2
        for key in keys:
            assert plane.invoke(key, 0, "get",
                                {"key": key})["value"]["value"] == f"v-{key}"

    def test_unverifiable_shard_is_never_detached_blind(self):
        """A retiring shard whose re-enumeration fails cannot be proven
        empty, so it drains instead of detaching on the spot."""
        keys = [f"key-{i}" for i in range(20)]
        plane = self._loaded_plane(keys, shards=4)

        class UnverifiableMigrator(CounterMigrator):
            planned_tail = False

            def shard_keys(self, plane, shard_index):
                if shard_index == 3:
                    if type(self).planned_tail:
                        raise RuntimeError("shard unreachable for verification")
                    type(self).planned_tail = True
                return super().shard_keys(plane, shard_index)

        plane.migrator = UnverifiableMigrator()
        report = plane.reshard(2)
        # Every record actually evacuated, but shard 3 cannot prove it — it
        # (and everything before it, tail-first rule) stays attached.
        assert report.ok and not report.retired
        assert plane.draining_shards() == [2, 3]
        plane.migrator = CounterMigrator()
        drain = plane.finish_reshard()
        assert len(drain.retired) == 2 and plane.num_shards == 2

    def test_grow_after_shrink_reuses_parked_shards_on_the_network(self):
        """2 -> 4 -> 2 -> 4 keeps working on one network: detached shards'
        endpoints stay registered, so the re-grow must reattach the parked
        deployments — and placement round-trips for unmoved keys."""
        keys = [f"key-{i}" for i in range(24)]
        plane = self._loaded_plane(keys, shards=2)
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=2)
        original = {key: plane.shard_for(key) for key in keys}

        grow = plane.reshard(4)
        assert grow.ok and plane.num_shards == 4
        grown_names = {shard.name for shard in plane.shards[2:]}

        shrink = plane.reshard(2)
        assert shrink.ok and plane.num_shards == 2 and plane.epoch == 2
        assert sorted(plane._spare_shards) == [2, 3]
        # Shrinking back restores the original placement for every key.
        for key in keys:
            assert plane.shard_for(key) == original[key]

        regrow = plane.reshard(4)
        assert regrow.ok and plane.num_shards == 4 and plane.epoch == 3
        assert not plane._spare_shards
        # The re-grown shards are the parked objects, live on the network.
        assert {shard.name for shard in plane.shards[2:]} == grown_names
        assert all(shard._rpc_clients is not None for shard in plane.shards)
        for key in keys:
            assert plane.invoke(key, 0, "get",
                                {"key": key})["value"]["value"] == f"v-{key}"


# ---------------------------------------------------------------------------
# Scatter negative paths (what the migration drivers lean on)
# ---------------------------------------------------------------------------

class TestScatterNegativePaths:
    def test_empty_call_list_returns_empty(self):
        plane = make_plane(shards=2)
        assert plane.scatter_to_shards([]) == []
        assert plane.scatter([]) == []

    def test_out_of_range_shard_index_rejected(self):
        plane = make_plane(shards=2)
        with pytest.raises(ServiceSpecError):
            plane.scatter_to_shards([(2, 0, "get", {"key": "k"})])
        with pytest.raises(ServiceSpecError):
            plane.scatter_to_shards([(-1, 0, "get", {"key": "k"})])

    def test_per_call_failure_isolation_over_lossy_network(self):
        """Calls the network eats fail alone; co-batched calls still land."""
        plane = make_plane(shards=2)
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=1)
        doomed = plane.shards[1].domains[0].domain_id

        def drop_to_shard_one(message):
            if message.destination == doomed:
                return FaultDecision(drop=True)
            return None

        network.add_fault_hook(drop_to_shard_one)
        outcomes = plane.scatter_to_shards([
            (0, 0, "put", {"key": "a", "value": 1}),
            (1, 0, "put", {"key": "b", "value": 2}),
            (0, 0, "put", {"key": "c", "value": 3}),
        ])
        assert outcomes[0]["value"]["stored"] and outcomes[2]["value"]["stored"]
        assert isinstance(outcomes[1], Exception)
        network.remove_fault_hook(drop_to_shard_one)
        # The healthy shard's state took the writes; the lost one took none.
        assert plane.invoke_on_shard(0, 0, "get", {"key": "a"})["value"]["value"] == 1
        assert plane.invoke_on_shard(1, 0, "get", {"key": "b"})["value"]["value"] is None
