"""Tests for the unified service plane: spec synthesis, routing, scatter,
the session facade, and the capacity-model mechanics it depends on."""

import pytest

from repro.apps.keybackup import KEY_BACKUP_APP_SOURCE
from repro.core.deployment import Deployment
from repro.core.package import CodePackage, DeveloperIdentity
from repro.errors import MisbehaviorDetected, ServiceSpecError
from repro.net.latency import lan_profile
from repro.net.rpc import RpcClient, RpcServer, ServiceTimeModel
from repro.net.transport import Network
from repro.service import (
    HashRing,
    PackageBinding,
    ServiceClient,
    ServiceSpec,
    ShardedService,
)

COUNTER_APP = '''
def init(config):
    previous = config.get("previous_state")
    if previous:
        return previous
    return {"count": 0, "items": {}}

def handle(method, params, state):
    if method == "put":
        state["items"][params["key"]] = params["value"]
        state["count"] = state["count"] + 1
        return {"stored": True}
    if method == "get":
        return {"value": state["items"].get(params["key"]), "count": state["count"]}
    if method == "boom":
        raise ValueError("boom")
    raise ValueError("unknown method: " + method)
'''


def make_plane(shards=2, domains=2, name="svc", **spec_kwargs):
    package = CodePackage(name, "1.0.0", "python", COUNTER_APP)
    spec = ServiceSpec(name=name, packages=(PackageBinding(package),),
                       domains_per_shard=domains, shard_count=shards,
                       **spec_kwargs)
    return spec.synthesize(DeveloperIdentity(f"{name}-dev"))


class TestHashRing:
    def test_deterministic_and_in_range(self):
        ring = HashRing(4)
        again = HashRing(4)
        keys = [f"user-{i}" for i in range(200)]
        placements = [ring.shard_for(key) for key in keys]
        assert placements == [again.shard_for(key) for key in keys]
        assert set(placements) <= set(range(4))

    def test_every_shard_gets_work(self):
        ring = HashRing(4)
        counts = ring.distribution(f"user-{i}" for i in range(500))
        assert all(count > 0 for count in counts)
        # Consistent hashing is imbalanced but not pathological: the largest
        # shard stays well under half the keyspace. (This imbalance is why a
        # 4-shard deployment yields ~3x, not 4x — the slowest shard gates.)
        assert max(counts) < 250

    def test_resharding_moves_a_bounded_fraction(self):
        keys = [f"user-{i}" for i in range(1000)]
        before = [HashRing(4).shard_for(key) for key in keys]
        after = [HashRing(5).shard_for(key) for key in keys]
        moved = sum(1 for a, b in zip(before, after) if a != b)
        # Growing 4 → 5 shards should move roughly 1/5 of the keys, nothing
        # like the ~4/5 a modulo scheme would reshuffle.
        assert moved < 450

    def test_key_types_and_rejection(self):
        ring = HashRing(3)
        assert ring.shard_for(b"bytes-key") in range(3)
        assert ring.shard_for(12345) in range(3)
        with pytest.raises(TypeError):
            ring.shard_for(3.14)
        with pytest.raises(ValueError):
            HashRing(0)


class TestServiceSpec:
    def test_rejects_invalid_shapes(self):
        with pytest.raises(ServiceSpecError):
            ServiceSpec(name="")
        with pytest.raises(ServiceSpecError):
            ServiceSpec(name="x", shard_count=0)
        with pytest.raises(ServiceSpecError):
            ServiceSpec(name="x", domains_per_shard=0)
        with pytest.raises(ServiceSpecError):
            ServiceSpec(name="x", domains_per_shard=2, threshold=3)
        with pytest.raises(ServiceSpecError):
            ServiceSpec(name="x", service_time_per_request=-1.0)
        package = CodePackage("x", "1.0.0", "python", COUNTER_APP)
        with pytest.raises(ServiceSpecError):
            ServiceSpec(name="x", domains_per_shard=2,
                        packages=(PackageBinding(package, domains=(5,)),))

    def test_synthesize_builds_attested_shards_on_one_clock(self):
        plane = make_plane(shards=3, domains=2)
        assert plane.num_shards == 3
        assert [shard.name for shard in plane.shards] == ["svc-s0", "svc-s1", "svc-s2"]
        assert all(shard.clock is plane.clock for shard in plane.shards)
        # Single-shard specs keep the plain name (the legacy deployment name).
        assert make_plane(shards=1).primary.name == "svc"

    def test_every_shard_passes_a_full_audit(self):
        plane = make_plane(shards=2)
        reports = ServiceClient(plane, audit_policy="never").audit()
        assert len(reports) == 2 and all(report.ok for report in reports)

    def test_bound_packages_install_per_domain(self):
        alpha = CodePackage("alpha", "1.0.0", "python", COUNTER_APP)
        beta = CodePackage("beta", "1.0.0", "python", COUNTER_APP)
        spec = ServiceSpec(name="split", domains_per_shard=2, shard_count=2,
                           include_developer_domain=False,
                           packages=(PackageBinding(alpha, domains=(0,)),
                                     PackageBinding(beta, domains=(1,))))
        plane = spec.synthesize(DeveloperIdentity("split-dev"))
        for shard in plane.shards:
            assert shard.domains[0].invoke_application("put", {"key": "k", "value": 1})
            assert shard.domains[1].invoke_application("get", {"key": "k"})
            # Both packages are published in the shard's registry, and each
            # domain runs its own bound application digest.
            assert set(shard.registry.digests()) == {alpha.digest(), beta.digest()}

    def test_spec_service_time_reaches_routed_servers(self):
        plane = make_plane(shards=1, service_time_per_request=0.001)
        network = Network(clock=plane.clock)
        servers = plane.route_via_network(network, attempts=1)
        assert all(server.service_model.per_request == 0.001
                   for server in servers.values())


class TestShardedServiceRouting:
    def test_keyed_invoke_lands_on_owning_shard(self):
        plane = make_plane(shards=3)
        keys = [f"user-{i}" for i in range(30)]
        for key in keys:
            plane.invoke(key, 0, "put", {"key": key, "value": key})
        for key in keys:
            owner = plane.shard_for(key)
            result = plane.invoke_on_shard(owner, 0, "get", {"key": key})
            assert result["value"]["value"] == key
        counts = [
            shard.invoke(0, "get", {"key": "?"})["value"]["count"]
            for shard in plane.shards
        ]
        assert sum(counts) == len(keys)
        assert all(count > 0 for count in counts)

    def test_scatter_returns_outcomes_in_call_order(self):
        plane = make_plane(shards=2)
        calls = [(f"user-{i}", 0, "put", {"key": f"user-{i}", "value": i})
                 for i in range(40)]
        outcomes = plane.scatter(calls)
        assert all(outcome["value"]["stored"] for outcome in outcomes)
        reads = plane.scatter([(f"user-{i}", 0, "get", {"key": f"user-{i}"})
                               for i in range(40)])
        assert [read["value"]["value"] for read in reads] == list(range(40))

    def test_scatter_isolates_per_call_failures(self):
        plane = make_plane(shards=2)
        outcomes = plane.scatter([
            ("a", 0, "put", {"key": "a", "value": 1}),
            ("b", 0, "boom", {}),
            ("c", 0, "put", {"key": "c", "value": 2}),
        ])
        assert outcomes[0]["value"]["stored"] and outcomes[2]["value"]["stored"]
        assert isinstance(outcomes[1], Exception)

    def test_adopt_wraps_a_legacy_deployment(self):
        package = CodePackage("legacy", "1.0.0", "python", COUNTER_APP)
        deployment = Deployment("legacy", DeveloperIdentity("legacy-dev"))
        deployment.publish_and_install(package)
        plane = ShardedService.adopt(deployment)
        assert plane.primary is deployment and plane.num_shards == 1
        assert plane.invoke("any-key", 0, "put", {"key": "k", "value": 9})


class TestCapacityModel:
    """The two mechanisms shard scaling rests on, pinned individually."""

    def test_service_model_is_a_serial_queue(self):
        network = Network()
        server_endpoint = network.endpoint("server")
        server = RpcServer(server_endpoint,
                           service_model=ServiceTimeModel(per_request=0.01))
        server.register("work", lambda params: params)
        client = RpcClient(network, network.endpoint("client"), "server")
        started = network.clock.now()
        client.call_many([("work", i) for i in range(5)])
        # 5 requests at 10 ms each through one serial queue: ≥ 50 ms of
        # simulated time must have passed before the responses left.
        assert network.clock.now() - started >= 0.05
        assert server.busy_until >= 0.05

    def test_batched_invoke_charges_per_inner_call(self):
        plane = make_plane(shards=1, domains=1, service_time_per_request=0.01)
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=1)
        started = plane.clock.now()
        outcomes = plane.scatter([(f"k{i}", 0, "put", {"key": f"k{i}", "value": i})
                                  for i in range(8)])
        assert all(not isinstance(outcome, Exception) for outcome in outcomes)
        # One invoke_many payload, but 8 application calls: the serial queue
        # must charge 8 × 10 ms, not one envelope's worth.
        assert plane.clock.now() - started >= 0.08

    def test_scatter_overlaps_shards_in_sim_time(self):
        """The scatter-before-pump property: shards serve concurrently.

        The same work is pushed through one shard and through four; with a
        serial per-request service time the four-shard plane must finish in
        well under the single shard's simulated time. If someone pumps the
        network between per-shard sends, this collapses to ~1x and fails.
        """
        def sim_time(shards):
            plane = make_plane(shards=shards, domains=1,
                               service_time_per_request=0.002)
            network = Network(clock=plane.clock, default_latency=lan_profile())
            plane.route_via_network(network, attempts=1)
            started = plane.clock.now()
            outcomes = plane.scatter([
                (f"user-{i}", 0, "put", {"key": f"user-{i}", "value": i})
                for i in range(128)
            ])
            assert all(not isinstance(outcome, Exception) for outcome in outcomes)
            return plane.clock.now() - started

        assert sim_time(1) / sim_time(4) >= 2.0


class TestServiceClient:
    def test_audit_policies(self):
        plane = make_plane(shards=2)
        audits = {"count": 0}

        def counting_audit():
            audits["count"] += 1
            return ["ok"]

        always = ServiceClient(plane, audit_policy="always",
                               audit_fn=counting_audit)
        always.checkpoint()
        always.checkpoint()
        assert audits["count"] == 2

        audits["count"] = 0
        once = ServiceClient(plane, audit_policy="once", audit_fn=counting_audit)
        once.checkpoint()
        once.checkpoint()
        assert audits["count"] == 1

        audits["count"] = 0
        never = ServiceClient(plane, audit_policy="never", audit_fn=counting_audit)
        never.checkpoint()
        assert audits["count"] == 0

        with pytest.raises(ServiceSpecError):
            ServiceClient(plane, audit_policy="sometimes")

    def test_keyed_checkpoint_audits_only_the_touched_shard(self):
        """Under 'always', a keyed op re-audits its one shard, not the fleet."""
        plane = make_plane(shards=4)
        session = ServiceClient(plane, audit_policy="always")
        audited = []
        session.auditing_client.audit_or_raise = (
            lambda shard: audited.append(shard.name) or True
        )
        key = "user-42"
        session.checkpoint(key)
        assert audited == [plane.shards[plane.shard_for(key)].name]
        session.checkpoint()  # keyless (batch) checkpoints still cover the fleet
        assert len(audited) == 1 + plane.num_shards

    def test_audit_detects_misbehavior_on_any_shard(self):
        plane = make_plane(shards=2)
        rogue = CodePackage("svc", "6.6.6", "python", COUNTER_APP)
        developer = plane.shards[1].developer
        manifest = developer.sign_update(rogue, plane.shards[1].current_sequence + 1)
        # Installed on one domain of shard 1 only — never published to the
        # registry, so the audit's release-log cross-check must catch it.
        plane.shards[1].install_on_domain(0, manifest, rogue)
        session = ServiceClient(plane, audit_policy="always")
        with pytest.raises(MisbehaviorDetected):
            session.checkpoint()

    def test_invoke_failover_skips_dead_domains(self):
        plane = make_plane(shards=1, domains=3)
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=1)
        session = ServiceClient(plane, audit_policy="never")
        for domain_index in range(3):
            session.invoke("k", domain_index, "put", {"key": "k", "value": domain_index})
        network.crash(plane.primary.domains[0].domain_id)
        answers = session.invoke_failover("k", range(3), "get", {"key": "k"}, need=2)
        assert [domain_index for domain_index, _ in answers] == [1, 2]

    def test_accepts_bare_deployment(self):
        package = CodePackage("bare", "1.0.0", "python", COUNTER_APP)
        deployment = Deployment("bare", DeveloperIdentity("bare-dev"))
        deployment.publish_and_install(package)
        session = ServiceClient(deployment, audit_policy="once")
        session.checkpoint()
        assert session.invoke("k", 0, "put", {"key": "k", "value": 1})


class TestShardedAppsEndToEnd:
    """The four apps on a multi-shard plane, through their public clients."""

    def test_keybackup_round_trip_across_shards(self):
        from repro.apps.keybackup import KeyBackupClient, KeyBackupDeployment

        service = KeyBackupDeployment(num_domains=3, threshold=2, shards=3)
        client = KeyBackupClient(service, audit_before_use=False)
        items = [(f"user-{i}", 1000 + i) for i in range(24)]
        receipts = client.backup_keys(items)
        assert all(not isinstance(receipt, Exception) for receipt in receipts)
        recovered = client.recover_keys([user for user, _ in items])
        assert recovered == [secret for _, secret in items]
        assert {service.plane.shard_for(user) for user, _ in items} == {0, 1, 2}

    def test_prio_aggregates_across_shards(self):
        from repro.apps.prio import PrivateAggregationClient, PrivateAggregationDeployment

        service = PrivateAggregationDeployment(num_servers=2, max_value=50, shards=2)
        client = PrivateAggregationClient(service, audit_before_use=False)
        values = list(range(30))
        assert all(outcome is True for outcome in client.submit_many(values))
        assert service.aggregate() == {"sum": sum(values), "submissions": 30}

    def test_prio_independent_sessions_spread_across_shards(self):
        """Regression: distinct clients must not all route to one shard.

        Submission keys are counter-based; without a session-unique tag every
        fresh client's first submission would hash identically and the whole
        fleet's load would land on a single shard.
        """
        from repro.apps.prio import PrivateAggregationClient, PrivateAggregationDeployment

        service = PrivateAggregationDeployment(num_servers=2, max_value=50, shards=4)
        first_submission_shards = set()
        for _ in range(16):
            client = PrivateAggregationClient(service, audit_before_use=False)
            first_submission_shards.add(
                service.plane.shard_for(client._next_submission_key())
            )
        assert len(first_submission_shards) > 1

    def test_odoh_resolves_across_shards(self):
        from repro.apps.odoh import ObliviousDnsClient, ObliviousDnsDeployment

        records = {f"host{i}.example.net": f"10.9.{i}.1" for i in range(12)}
        service = ObliviousDnsDeployment(records=records, shards=2)
        client = ObliviousDnsClient(service, audit_before_use=False)
        responses = client.resolve_many(sorted(records))
        assert all(response.found and response.address == records[response.name]
                   for response in responses)
        assert service.resolver_observations()["resolved"] == 12

    def test_custody_signs_across_shards(self):
        from repro.apps.threshold_sign import CustodyClient, CustodyDeployment

        service = CustodyDeployment(threshold=2, num_signers=3,
                                    keygen_seed=b"planseed", shards=2)
        client = CustodyClient(service, audit_before_use=False)
        messages = [f"tx-{i}".encode() for i in range(6)]
        transactions = client.sign_transactions(messages)
        assert all(client.verify(transaction) for transaction in transactions)


class TestRegionPlacement:
    def test_shard_region_rotates_round_robin(self):
        plane = make_plane(shards=4, regions=("us-east", "eu-west"))
        assert [plane.region_of(i) for i in range(4)] == [
            "us-east", "eu-west", "us-east", "eu-west"]
        # Shards a live reshard grows later follow the same rotation.
        assert plane.spec.shard_region(4) == "us-east"
        assert plane.spec.shard_region(5) == "eu-west"

    def test_single_region_spec_has_no_placement(self):
        plane = make_plane(shards=2)
        assert plane.region_of(0) is None
        assert plane.spec.shard_region(1) is None

    def test_region_names_validated(self):
        with pytest.raises(ServiceSpecError):
            make_plane(shards=2, regions=("us-east", ""))

    def test_apply_latency_map_needs_named_regions(self):
        from repro.net.latency import geo_profile

        plane = make_plane(shards=2)
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=1)
        with pytest.raises(ServiceSpecError):
            plane.apply_latency_map(network, geo_profile())

    @staticmethod
    def _sent_delay(network, source, destination):
        """One-way delivery time the network just charged a probe message.

        The probe is left queued (never delivered) so no RPC handler runs;
        each (source, destination) pair is probed at most once.
        """
        network.send(source, destination, b"")
        for _, _, message in network._queue:
            if message.source == source and message.destination == destination:
                return message.deliver_at - message.sent_at
        raise AssertionError("probe was not queued")

    def test_cross_region_delivery_times_are_pinned(self):
        from repro.net.latency import geo_profile

        plane = make_plane(shards=4, regions=("us-east", "eu-west"))
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=1)
        plane.apply_latency_map(network, geo_profile())

        east = plane.shards[0].domains[0].domain_id   # shard 0: us-east
        west = plane.shards[1].domains[0].domain_id   # shard 1: eu-west
        east2 = plane.shards[2].domains[1].domain_id  # shard 2: us-east again

        # The transatlantic route is asymmetric, exactly per the geo map.
        assert self._sent_delay(network, east, west) == pytest.approx(0.038)
        assert self._sent_delay(network, west, east) == pytest.approx(0.042)
        # Same-region cross-shard traffic keeps the network's LAN default.
        assert self._sent_delay(network, east, east2) == pytest.approx(
            lan_profile().sample(0))
        # Migration traffic (shard client endpoints) pays the WAN cost too.
        client0 = f"{plane.shards[0].name}-client"
        assert self._sent_delay(
            network, client0, west) == pytest.approx(0.038)

    def test_geo_scenario_pays_wan_cost_on_migration_traffic(self):
        import dataclasses

        from repro.sim.faults import ReshardService
        from repro.sim.scenarios import Scenario, ScenarioRunner

        single = Scenario(name="lat-single", app="keybackup", ops=4,
                          shards=2, seed=5,
                          events=(ReshardService(at_op=2, shards=4),))
        geo = dataclasses.replace(single, name="lat-geo",
                                  regions=("us-east", "eu-west"))
        single_report = ScenarioRunner(single).run()
        geo_report = ScenarioRunner(geo).run()
        assert single_report.all_invariants_ok
        assert geo_report.all_invariants_ok
        # The geo run moved the same records over cross-region links, so the
        # same workload takes strictly longer in simulated time — by at least
        # one transatlantic one-way hop.
        assert (geo_report.sim_elapsed_s
                >= single_report.sim_elapsed_s + 0.038)
