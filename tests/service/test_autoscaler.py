"""Tests for the elastic control loop: hysteresis, operator gates, and the
reconciliation census around autoscaler-driven reshards."""

import pytest

from repro.net.latency import lan_profile
from repro.net.transport import Network
from repro.service import (
    Autoscaler,
    AutoscalerPolicy,
    CooldownGate,
    HeartbeatGate,
    ReconciliationGate,
    percentile,
)

from tests.service.test_reshard import CounterMigrator, make_plane

POLICY = AutoscalerPolicy(
    p99_high_s=0.5, queue_high=16, p99_low_s=0.05, queue_low=1,
    min_shards=2, max_shards=8, cooldown_s=5.0,
    breach_streak=2, clear_streak=3,
)


def loaded_plane(n_keys=24, shards=2):
    plane = make_plane(shards=shards, name="autosvc")
    plane.migrator = CounterMigrator()
    for i in range(n_keys):
        plane.invoke(f"key-{i}", 0, "put", {"key": f"key-{i}", "value": i})
    return plane


class TestPercentile:
    def test_empty_window_is_silence(self):
        assert percentile([], 0.99) is None

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.99) == 99
        assert percentile(values, 0.50) == 50
        assert percentile(values, 1.0) == 100
        assert percentile([7.0], 0.99) == 7.0

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestPolicyValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(p99_high_s=0.1, p99_low_s=0.1)
        with pytest.raises(ValueError):
            AutoscalerPolicy(queue_high=2, queue_low=2)

    def test_bounds_and_factors(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_shards=0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_shards=4, max_shards=2)
        with pytest.raises(ValueError):
            AutoscalerPolicy(grow_factor=1.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(breach_streak=0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(sample_interval_s=0.0)


class TestHysteresis:
    def test_single_breach_holds(self):
        scaler = Autoscaler(loaded_plane(), POLICY)
        decision = scaler.observe(p99_s=2.0)
        assert decision.action == "hold" and not decision.fired
        assert scaler.plane.num_shards == 2

    def test_band_samples_reset_the_streak(self):
        """p99 between the thresholds breaks a breach streak — no flapping
        on a workload hovering near the trigger."""
        scaler = Autoscaler(loaded_plane(), POLICY)
        scaler.observe(p99_s=2.0)        # breach 1/2
        scaler.observe(p99_s=0.2)        # in the band: reset
        decision = scaler.observe(p99_s=2.0)  # breach 1/2 again
        assert decision.action == "hold"
        assert scaler.plane.num_shards == 2

    def test_sustained_breach_grows_and_reconciles(self):
        plane = loaded_plane()
        scaler = Autoscaler(plane, POLICY)
        scaler.observe(p99_s=2.0)
        decision = scaler.observe(p99_s=2.0)
        assert decision.action == "grow" and decision.fired
        assert decision.from_shards == 2 and decision.to_shards == 4
        assert plane.num_shards == 4 and plane.epoch == 1
        assert decision.reconciliation.allowed, decision.reconciliation.reason
        assert decision.report.ok
        # Every record is still readable after the autoscaler's move.
        for i in range(24):
            value = plane.invoke(f"key-{i}", 0, "get",
                                 {"key": f"key-{i}"})["value"]["value"]
            assert value == i

    def test_calm_streak_shrinks_back(self):
        plane = loaded_plane(shards=4)
        scaler = Autoscaler(plane, POLICY)
        for _ in range(2):
            scaler.observe(p99_s=0.01)
        decision = scaler.observe(p99_s=0.01)
        assert decision.action == "shrink" and decision.fired
        assert plane.num_shards == 2 and plane.ring.shard_count == 2
        assert decision.reconciliation.allowed
        assert len(decision.report.retired) == 2

    def test_bounds_hold_at_the_edges(self):
        plane = loaded_plane(shards=2)
        policy = AutoscalerPolicy(min_shards=2, max_shards=2,
                                  breach_streak=1, clear_streak=1)
        scaler = Autoscaler(plane, policy)
        assert scaler.observe(p99_s=9.0).action == "hold"   # at max
        assert scaler.observe(p99_s=0.0).action == "hold"   # at min
        assert plane.num_shards == 2 and plane.epoch == 0


class TestGates:
    def test_cooldown_blocks_then_clears(self):
        plane = loaded_plane()
        scaler = Autoscaler(plane, POLICY)
        scaler.observe(p99_s=2.0)
        assert scaler.observe(p99_s=2.0).fired        # grow 2 -> 4
        # Immediately calm: the shrink decision is ready but the cooldown
        # gate refuses it — the move is recorded, not fired.
        for _ in range(2):
            scaler.observe(p99_s=0.01)
        gated = scaler.observe(p99_s=0.01)
        assert gated.action == "shrink" and not gated.fired
        assert gated.gated_by is not None
        assert gated.gated_by.gate == "cooldown"
        assert plane.num_shards == 4
        # Once the cooldown elapses the held streak fires at the next sample.
        plane.clock.advance(POLICY.cooldown_s)
        fired = scaler.observe(p99_s=0.01)
        assert fired.action == "shrink" and fired.fired
        assert plane.num_shards == 2

    def test_heartbeat_blocks_reshard_into_a_partition(self):
        plane = loaded_plane()
        network = Network(clock=plane.clock, default_latency=lan_profile())
        plane.route_via_network(network, attempts=2)
        crashed = plane.shards[1].domains[0].domain_id
        network.crash(crashed)
        scaler = Autoscaler(plane, POLICY)
        scaler.observe(p99_s=2.0)
        gated = scaler.observe(p99_s=2.0)
        assert gated.action == "grow" and not gated.fired
        assert gated.gated_by.gate == "heartbeat"
        assert crashed in gated.gated_by.reason
        assert plane.num_shards == 2 and plane.epoch == 0
        # Recovery clears the gate; the still-held breach streak fires.
        network.recover(crashed)
        fired = scaler.observe(p99_s=2.0)
        assert fired.fired and plane.num_shards == 4

    def test_heartbeat_gate_trivially_healthy_in_process(self):
        result = HeartbeatGate().check(loaded_plane())
        assert result.allowed and "in-process" in result.reason

    def test_cooldown_gate_unit(self):
        plane = loaded_plane()
        gate = CooldownGate(2.0)
        assert gate.check(plane).allowed          # never fired before
        gate.record(plane.clock.now())
        assert not gate.check(plane).allowed
        plane.clock.advance(2.001)
        assert gate.check(plane).allowed
        with pytest.raises(ValueError):
            CooldownGate(-1.0)


class TestReconciliationGate:
    def test_census_maps_keys_to_holders(self):
        plane = loaded_plane(n_keys=10)
        census = ReconciliationGate().census(plane)
        assert len(census) == 10
        assert all(len(holders) == 1 for holders in census.values())

    def test_verify_flags_lost_and_duplicated(self):
        gate = ReconciliationGate()
        before = {"a": [0], "b": [1], "c": [0]}
        clean = {"a": [0], "b": [0], "c": [1], "d": [1]}  # d: new arrival
        assert gate.verify(before, clean).allowed
        lost = {"a": [0], "c": [1]}
        verdict = gate.verify(before, lost)
        assert not verdict.allowed and "lost" in verdict.reason
        duplicated = {"a": [0], "b": [1], "c": [0, 2]}
        verdict = gate.verify(before, duplicated)
        assert not verdict.allowed and "double-owned" in verdict.reason


class TestDecisionRecords:
    def test_every_sample_leaves_a_decision(self):
        scaler = Autoscaler(loaded_plane(), POLICY)
        for p99 in (0.01, 2.0, 2.0, 0.2):
            scaler.observe(p99_s=p99)
        assert len(scaler.decisions) == 4 and len(scaler.samples) == 4
        fired = [d for d in scaler.decisions if d.fired]
        assert len(fired) == 1 and fired[0].action == "grow"
        assert scaler.reshard_reports == [fired[0].report]
        payload = fired[0].to_dict()
        assert payload["fired"] and payload["action"] == "grow"
        assert payload["reconciled"] is True

    def test_silent_window_counts_as_calm(self):
        """No completed requests is idleness, not an outage signal."""
        plane = loaded_plane(shards=4)
        scaler = Autoscaler(plane, POLICY)
        for _ in range(2):
            scaler.observe(p99_s=None)
        assert scaler.observe(p99_s=None).fired
        assert plane.num_shards == 2
