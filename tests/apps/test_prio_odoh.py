"""Tests for the Prio-style aggregation and ODoH-style DNS applications."""

import pytest

from repro.apps.odoh import ObliviousDnsClient, ObliviousDnsDeployment
from repro.apps.prio import (
    FIELD_MODULUS,
    PrivateAggregationClient,
    PrivateAggregationDeployment,
)
from repro.errors import ApplicationError
from repro.sim.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def aggregation_service():
    return PrivateAggregationDeployment(num_servers=2, max_value=100)


@pytest.fixture(scope="module")
def dns_service():
    return ObliviousDnsDeployment(records={
        "host1.example.com": "192.0.2.10",
        "host2.example.com": "192.0.2.20",
    })


class TestPrivateAggregation:
    def test_sum_matches_submitted_values(self, aggregation_service):
        aggregation_service.reset()
        client = PrivateAggregationClient(aggregation_service)
        values = [5, 17, 23, 42, 0, 99]
        for value in values:
            client.submit(value)
        aggregate = aggregation_service.aggregate()
        assert aggregate["sum"] == sum(values)
        assert aggregate["submissions"] == len(values)

    def test_individual_values_hidden_from_each_server(self, aggregation_service):
        """No single server's accumulator reveals the submitted values."""
        aggregation_service.reset()
        client = PrivateAggregationClient(aggregation_service, audit_before_use=False)
        client.submit(7)
        partials = [
            aggregation_service.deployment.invoke(i, "read_partial_sum", {})["value"]["partial_sum"]
            for i in range(aggregation_service.num_servers)
        ]
        # The shares are random field elements; neither equals the value, but
        # together they reconstruct it.
        assert all(partial != 7 for partial in partials)
        assert sum(partials) % FIELD_MODULUS == 7

    def test_out_of_range_value_rejected(self, aggregation_service):
        client = PrivateAggregationClient(aggregation_service, audit_before_use=False)
        with pytest.raises(ApplicationError):
            client.submit(101)
        with pytest.raises(ApplicationError):
            client.submit(-1)

    def test_many_clients_with_workload_generator(self, aggregation_service):
        aggregation_service.reset()
        workload = WorkloadGenerator(seed=7)
        values = workload.telemetry_values(50, 0, 100)
        client = PrivateAggregationClient(aggregation_service, audit_before_use=False)
        for value in values:
            client.submit(value)
        assert aggregation_service.aggregate()["sum"] == sum(values)

    def test_reset_clears_accumulators(self, aggregation_service):
        client = PrivateAggregationClient(aggregation_service, audit_before_use=False)
        client.submit(3)
        aggregation_service.reset()
        assert aggregation_service.aggregate() == {"sum": 0, "submissions": 0}

    def test_requires_two_servers(self):
        with pytest.raises(ApplicationError):
            PrivateAggregationDeployment(num_servers=1)

    def test_audit_passes(self, aggregation_service):
        client = PrivateAggregationClient(aggregation_service)
        assert client.audit().ok


class TestObliviousDns:
    def test_resolution_round_trip(self, dns_service):
        client = ObliviousDnsClient(dns_service)
        response = client.resolve("host1.example.com")
        assert response.found
        assert response.address == "192.0.2.10"

    def test_missing_name(self, dns_service):
        client = ObliviousDnsClient(dns_service, audit_before_use=False)
        response = client.resolve("missing.example.com")
        assert not response.found
        assert response.address is None

    def test_proxy_never_sees_query_names(self, dns_service):
        """The proxy's entire observable state contains no query names."""
        client = ObliviousDnsClient(dns_service, audit_before_use=False)
        client.resolve("host2.example.com")
        proxy_domain = dns_service.deployment.domains[0]
        proxy_state = proxy_domain.framework._python_sandbox.state
        from repro.wire.codec import encode

        assert b"host2.example.com" not in encode(proxy_state)
        assert proxy_state["forwarded"] >= 1

    def test_resolver_counts_queries(self, dns_service):
        before = dns_service.resolver_observations()["resolved"]
        ObliviousDnsClient(dns_service, audit_before_use=False).resolve("host1.example.com")
        assert dns_service.resolver_observations()["resolved"] == before + 1

    def test_proxy_counts_forwarded(self, dns_service):
        before = dns_service.proxy_observations()["forwarded"]
        ObliviousDnsClient(dns_service, audit_before_use=False).resolve("host1.example.com")
        assert dns_service.proxy_observations()["forwarded"] == before + 1

    def test_audit_passes(self, dns_service):
        client = ObliviousDnsClient(dns_service)
        proxy_report, resolver_report = client.audit()
        assert proxy_report.ok and resolver_report.ok

    def test_load_more_records(self, dns_service):
        assert dns_service.load_records({"new.example.org": "198.51.100.7"}) == 1
        client = ObliviousDnsClient(dns_service, audit_before_use=False)
        assert client.resolve("new.example.org").address == "198.51.100.7"

    def test_tampered_envelope_rejected(self, dns_service):
        from repro.crypto.keys import SigningKey
        from repro.crypto.hashes import hkdf, hmac_sha256
        from repro.crypto.secp256k1 import SECP256K1
        from repro.wire.codec import encode

        ephemeral = SigningKey.generate()
        shared = SECP256K1.multiply(dns_service.resolver_public_key.point, ephemeral.scalar)
        key = hkdf(SECP256K1.encode_point(shared), info=b"repro/odoh/key", length=32)
        plaintext = encode({"name": "host1.example.com", "padding": b"\x00" * 16})
        stream = hkdf(key, info=b"repro/odoh/query-stream", length=len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        envelope = {
            "ciphertext": ciphertext,
            "ephemeral_key": ephemeral.verifying_key().to_bytes(),
            "tag": hmac_sha256(key, ciphertext + b"tampered"),
        }
        with pytest.raises(ApplicationError):
            dns_service.handle_query(envelope)

    def test_hot_shared_key_survives_cache_size_inserts(self):
        """Regression: a re-used ephemeral key must survive eviction pressure.

        The shared-key cache used to evict in pure FIFO insertion order, so a
        hot key — one the resolver kept deriving the same ECDH secret for on
        every query — aged out after ``cache_size`` inserts of *other* keys
        no matter how recently it was used, silently re-paying the point
        multiplication on the hottest path. The cache is LRU now: a key
        touched between inserts must still be resident after ``cache_size``
        strangers arrive, and derivation must not have re-run for it.
        """
        from repro.crypto.keys import SigningKey
        from repro.crypto.secp256k1 import SECP256K1

        service = ObliviousDnsDeployment(records={"a.example.com": "192.0.2.1"})
        service._shared_key_cache_size = 8
        cache_size = service._shared_key_cache_size

        hot = SigningKey.generate().verifying_key().to_bytes()
        hot_key = service._shared_key(hot)
        for index in range(cache_size):
            stranger = SECP256K1.encode_point(
                SECP256K1.multiply(SECP256K1.generator, 1000 + index))
            service._shared_key(stranger)
            # The re-use that must refresh recency: same bytes object back
            # means the cached entry answered, not a fresh derivation.
            assert service._shared_key(hot) is hot_key
        assert hot in service._shared_key_cache
        assert len(service._shared_key_cache) <= cache_size
