"""Tests for the BLS threshold-signing custody application (§5)."""

import pytest

from repro.apps.threshold_sign import CustodyClient, CustodyDeployment
from repro.crypto.bls import bls_verify
from repro.errors import ApplicationError


@pytest.fixture(scope="module")
def service():
    return CustodyDeployment(threshold=2, num_signers=3, keygen_seed=b"custody-tests")


class TestSigning:
    def test_sign_and_verify(self, service):
        client = CustodyClient(service)
        transaction = client.sign_transaction(b"transfer 10 BTC to cold storage")
        assert client.verify(transaction)
        assert len(transaction.signer_indices) == 2

    def test_signature_verifies_under_group_key_directly(self, service):
        client = CustodyClient(service)
        transaction = client.sign_transaction(b"payout batch 7")
        assert bls_verify(service.group_public_key, transaction.message, transaction.signature)

    def test_any_signer_subset_produces_same_signature(self, service):
        client = CustodyClient(service, audit_before_use=False)
        first = client.sign_transaction(b"same message", signer_indices=[1, 2])
        second = client.sign_transaction(b"same message", signer_indices=[2, 3])
        third = client.sign_transaction(b"same message", signer_indices=[1, 3])
        assert first.signature == second.signature == third.signature

    def test_wrong_message_does_not_verify(self, service):
        client = CustodyClient(service)
        transaction = client.sign_transaction(b"authorized")
        assert not service.scheme.verify(service.group_public_key, b"forged",
                                         transaction.signature)

    def test_too_few_signers_rejected(self, service):
        client = CustodyClient(service, audit_before_use=False)
        with pytest.raises(ApplicationError):
            client.sign_transaction(b"m", signer_indices=[1])

    def test_empty_message_signs(self, service):
        client = CustodyClient(service, audit_before_use=False)
        assert client.verify(client.sign_transaction(b""))

    def test_audit_before_signing(self, service):
        client = CustodyClient(service, audit_before_use=True)
        assert client.audit().ok


class TestKeyManagement:
    def test_no_single_domain_holds_the_whole_key(self, service):
        """Each signer domain holds only its share; no share equals the key."""
        shares = [service.share_for_signer(i) for i in (1, 2, 3)]
        assert len({s.value for s in shares}) == 3
        # Reconstructing from one share is information-theoretically impossible;
        # here we simply confirm no share verifies as the full signing key.
        from repro.crypto.bls import bls_sign

        message = b"probe"
        for share in shares:
            forged = bls_sign(share.value, message)
            assert not bls_verify(service.group_public_key, message, forged)

    def test_unknown_signer_rejected(self, service):
        with pytest.raises(ApplicationError):
            service.share_for_signer(99)

    def test_dkg_mode_produces_working_keys(self):
        dkg_service = CustodyDeployment(threshold=2, num_signers=3, use_dkg=True,
                                        keygen_seed=b"dkg-custody")
        client = CustodyClient(dkg_service, audit_before_use=False)
        transaction = client.sign_transaction(b"dkg-signed withdrawal")
        assert client.verify(transaction)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ApplicationError):
            CustodyDeployment(threshold=0, num_signers=2)
        with pytest.raises(ApplicationError):
            CustodyDeployment(threshold=5, num_signers=2)

    def test_signature_share_goes_through_sandbox(self, service):
        """The per-domain signing path reports sandbox fuel, proving it ran in the WVM."""
        share = service.share_for_signer(1)
        from repro.crypto.bilinear import BLS_SCALAR_ORDER

        result = service.deployment.invoke(1, "bls_share",
                                           [12345, 2, share.value, BLS_SCALAR_ORDER])
        assert result["fuel_used"] > 0
