"""Tests for the secret-key backup application (Figure 1)."""

import pytest

from repro.apps.keybackup import KeyBackupClient, KeyBackupDeployment
from repro.errors import ApplicationError, MisbehaviorDetected, SandboxError


@pytest.fixture(scope="module")
def service():
    return KeyBackupDeployment(num_domains=3, threshold=2)


class TestBackupAndRecovery:
    def test_backup_and_recover(self, service):
        client = KeyBackupClient(service)
        secret = 0x1234567890ABCDEF
        receipt = client.backup_key("alice", secret)
        assert receipt.num_domains == 3
        assert client.recover_key("alice") == secret

    def test_recover_from_any_threshold_subset(self, service):
        client = KeyBackupClient(service)
        secret = 9876543210
        client.backup_key("bob", secret)
        assert client.recover_key("bob", [0, 2]) == secret
        assert client.recover_key("bob", [1, 2]) == secret

    def test_bytes_round_trip(self, service):
        client = KeyBackupClient(service)
        secret = b"\x07" * 32
        client.backup_key("carol", secret)
        assert client.recover_key_bytes("carol") == secret

    def test_unknown_user_recovery_fails(self, service):
        client = KeyBackupClient(service)
        with pytest.raises(ApplicationError):
            client.recover_key("nobody")

    def test_double_backup_rejected(self, service):
        client = KeyBackupClient(service)
        client.backup_key("dave", 42)
        with pytest.raises(SandboxError):
            client.backup_key("dave", 43)

    def test_delete_backup(self, service):
        client = KeyBackupClient(service)
        client.backup_key("erin", 777)
        assert client.delete_backup("erin") == 3
        with pytest.raises(ApplicationError):
            client.recover_key("erin")

    def test_too_few_domains_for_recovery(self, service):
        client = KeyBackupClient(service)
        client.backup_key("frank", 1)
        with pytest.raises(ApplicationError):
            client.recover_key("frank", [0])


class TestConfiguration:
    def test_minimum_domains_enforced(self):
        with pytest.raises(ApplicationError):
            KeyBackupDeployment(num_domains=1)

    def test_threshold_bounds_enforced(self):
        with pytest.raises(ApplicationError):
            KeyBackupDeployment(num_domains=3, threshold=1)
        with pytest.raises(ApplicationError):
            KeyBackupDeployment(num_domains=3, threshold=4)

    def test_default_threshold_is_all_domains(self):
        service = KeyBackupDeployment(num_domains=2)
        assert service.threshold == 2


class TestFigure1Scenario:
    def test_compromised_developer_cannot_recover_keys(self, service):
        """The paper's Figure 1: a compromised developer reaches only domain 0."""
        client = KeyBackupClient(service)
        client.backup_key("grace", 0xDEAD)
        outcome = service.simulate_developer_compromise()
        assert outcome["shares_recoverable"] == 1
        assert not outcome["key_recoverable"]
        assert len(outcome["resisted_domains"]) == 2

    def test_audit_runs_before_use(self, service):
        client = KeyBackupClient(service, audit_before_use=True)
        report = client.audit()
        assert report.ok

    def test_audit_failure_blocks_backup(self):
        """If a domain runs unpublished code, the client refuses to upload shares."""
        service = KeyBackupDeployment(num_domains=3, threshold=2)
        from repro.core.package import CodePackage

        rogue = CodePackage("key-backup", "6.6.6", "python",
                            "def handle(m, p, s):\n    return p")
        manifest = service.developer.sign_update(rogue, service.deployment.current_sequence + 1)
        service.deployment.install_on_domain(1, manifest, rogue)

        client = KeyBackupClient(service, audit_before_use=True)
        with pytest.raises(MisbehaviorDetected):
            client.backup_key("henry", 5)
