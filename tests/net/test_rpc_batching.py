"""Tests for the batched RPC layer and the RPC bugfixes that ride with it.

Covers the satellite checklist for the throughput PR: out-of-order response
matching, partial-batch retransmission under the PR-1 fault rules, at-most-once
dedup of a retransmitted batch, the unrelated-message requeue regression, and
the bounded completed-id set.
"""

import pytest

from repro.errors import RpcError, TimeoutError
from repro.net.rpc import BoundedIdSet, RpcClient, RpcServer
from repro.net.transport import Network
from repro.sim.faults import DropFault, DuplicateFault, FaultPlan, ReorderFault
from repro.wire.codec import decode, encode
from repro.wire.framing import frame_message, split_frames


def make_rpc_pair():
    network = Network()
    server_endpoint = network.endpoint("server")
    client_endpoint = network.endpoint("client")
    server = RpcServer(server_endpoint)
    client = RpcClient(network, client_endpoint, "server")
    return network, server, client


class TestCallMany:
    def test_batch_results_in_call_order(self):
        _, server, client = make_rpc_pair()
        server.register("add", lambda params: params["a"] + params["b"])
        calls = [("add", {"a": i, "b": 10 * i}) for i in range(20)]
        assert client.call_many(calls) == [11 * i for i in range(20)]
        assert server.requests_served == 20

    def test_batch_is_one_message_each_way(self):
        network, server, client = make_rpc_pair()
        server.register("echo", lambda params: params)
        client.call_many([("echo", i) for i in range(50)])
        assert network.stats.messages_sent == 2
        assert server.batches_served == 1

    def test_empty_batch(self):
        _, _, client = make_rpc_pair()
        assert client.call_many([]) == []

    def test_error_raises_by_default(self):
        _, server, client = make_rpc_pair()
        server.register("ok", lambda params: params)

        def explode(params):
            raise ValueError("boom")

        server.register("explode", explode)
        with pytest.raises(RpcError, match="boom"):
            client.call_many([("ok", 1), ("explode", None), ("ok", 2)])

    def test_return_errors_isolates_failures(self):
        _, server, client = make_rpc_pair()
        server.register("ok", lambda params: params)

        def explode(params):
            raise ValueError("boom")

        server.register("explode", explode)
        results = client.call_many(
            [("ok", 1), ("explode", None), ("ok", 2)], return_errors=True
        )
        assert results[0] == 1 and results[2] == 2
        assert isinstance(results[1], RpcError)

    def test_return_errors_interleaved_failures_keep_call_order(self):
        """Failures interleaved through a batch must not shift result pairing.

        Every odd-positioned call fails (server-side error) while the server
        also answers in reverse order, so any positional pairing — instead of
        id-based pairing — would misattribute errors to healthy calls.
        """
        network = Network()
        server_endpoint = network.endpoint("server")
        client_endpoint = network.endpoint("client")

        def reversed_flaky_responder(message):
            responses = []
            for frame in reversed(split_frames(message.payload)):
                request = decode(frame)
                value = request["params"]
                if value % 2 == 1:
                    envelope = {"id": request["id"], "error": f"reject {value}"}
                else:
                    envelope = {"id": request["id"], "result": value * 10}
                responses.append(frame_message(encode(envelope)))
            server_endpoint.send(message.source, b"".join(responses))

        server_endpoint.on_message = reversed_flaky_responder
        client = RpcClient(network, client_endpoint, "server")
        results = client.call_many([("check", i) for i in range(11)],
                                   return_errors=True)
        assert len(results) == 11
        for position, result in enumerate(results):
            if position % 2 == 1:
                assert isinstance(result, RpcError), (position, result)
                assert f"reject {position}" in str(result)
            else:
                assert result == position * 10, (position, result)

    def test_out_of_order_responses_match_by_id(self):
        """A server that answers a batch in reverse order must not confuse pairing."""
        network = Network()
        server_endpoint = network.endpoint("server")
        client_endpoint = network.endpoint("client")

        def reversed_responder(message):
            frames = split_frames(message.payload)
            responses = []
            for frame in reversed(frames):
                request = decode(frame)
                responses.append(frame_message(encode(
                    {"id": request["id"], "result": request["params"] * 2}
                )))
            server_endpoint.send(message.source, b"".join(responses))

        server_endpoint.on_message = reversed_responder
        client = RpcClient(network, client_endpoint, "server")
        assert client.call_many([("double", i) for i in range(10)]) == [
            2 * i for i in range(10)
        ]


class TestPartialBatchRetry:
    def test_only_unanswered_requests_are_retransmitted(self):
        """After a partial answer, the retry payload carries only pending ids."""
        network = Network()
        server_endpoint = network.endpoint("server")
        client_endpoint = network.endpoint("client")
        seen_batches = []

        def half_answering(message):
            frames = split_frames(message.payload)
            requests = [decode(frame) for frame in frames]
            seen_batches.append([request["id"] for request in requests])
            # First contact: answer only the even-positioned half of the batch.
            answerable = (requests[::2] if len(seen_batches) == 1 else requests)
            responses = [frame_message(encode({"id": r["id"], "result": r["params"]}))
                         for r in answerable]
            if responses:
                server_endpoint.send(message.source, b"".join(responses))

        server_endpoint.on_message = half_answering
        client = RpcClient(network, client_endpoint, "server")
        results = client.call_many([("echo", i) for i in range(10)], attempts=2)
        assert results == list(range(10))
        assert len(seen_batches) == 2
        # The second payload must contain exactly the five unanswered ids.
        assert seen_batches[1] == seen_batches[0][1::2]
        assert client.retries == 5

    def test_timeout_when_batch_never_answered(self):
        network = Network()
        network.endpoint("server")  # registered but never answers
        client = RpcClient(network, network.endpoint("client"), "server")
        with pytest.raises(TimeoutError):
            client.call_many([("ping", None)], attempts=2)

    def test_return_errors_turns_timeouts_into_instances(self):
        network = Network()
        server_endpoint = network.endpoint("server")
        client_endpoint = network.endpoint("client")

        first_id = []

        def answer_only_first(message):
            for frame in split_frames(message.payload):
                request = decode(frame)
                if not first_id:
                    first_id.append(request["id"])
                if request["id"] == first_id[0]:
                    server_endpoint.send(message.source, frame_message(encode(
                        {"id": request["id"], "result": "ok"}
                    )))

        server_endpoint.on_message = answer_only_first
        client = RpcClient(network, client_endpoint, "server")
        results = client.call_many([("a", None), ("b", None)], attempts=2,
                                   return_errors=True)
        assert results[0] == "ok"
        assert isinstance(results[1], TimeoutError)

    def test_batch_survives_fault_rules(self):
        """Drop/reorder/duplicate rules from the PR-1 taxonomy, at volume."""
        network, server, client = make_rpc_pair()
        server.register("echo", lambda params: params)
        plan = FaultPlan(rules=(DropFault(probability=0.15),
                                ReorderFault(probability=0.4, max_delay_s=0.01),
                                DuplicateFault(probability=0.3, copies=1)), seed=7)
        plan.install(network)
        calls = [("echo", i) for i in range(100)]
        assert client.call_many(calls, attempts=10) == list(range(100))
        # At-most-once: despite retransmissions and duplicated payloads, every
        # handler ran exactly once.
        assert server.requests_served == 100


class TestAtMostOnceBatches:
    def test_retransmitted_batch_answered_from_cache(self):
        network = Network()
        server_endpoint = network.endpoint("server")
        client_endpoint = network.endpoint("client")
        server = RpcServer(server_endpoint)
        executions = []
        server.register("record", lambda params: executions.append(params) or params)
        client = RpcClient(network, client_endpoint, "server")

        captured = []
        network.add_fault_hook(
            lambda message: captured.append(message.payload) or None
            if message.destination == "server" else None
        )
        assert client.call_many([("record", i) for i in range(8)]) == list(range(8))
        assert len(executions) == 8

        # An adversary (or a retry) delivers the identical batch payload again.
        client_endpoint.send("server", captured[0])
        network.run_until_idle()
        assert len(executions) == 8, "retransmitted batch re-executed handlers"
        assert server.duplicates_answered == 8
        # The duplicate answers are discarded by the duplicate-response filter.
        results = client.call_many([("record", 99)])
        assert results == [99]


class TestUnrelatedRequeueRegression:
    def test_multiframe_unrelated_message_requeued_once(self):
        """A parked batch for another caller must not multiply in the inbox."""
        network, server, client = make_rpc_pair()
        server.register("ping", lambda params: "pong")
        # Park one message carrying three response frames for ids nobody here
        # has completed — e.g. a batch destined for another client object
        # sharing this endpoint.
        unrelated = b"".join(
            frame_message(encode({"id": 999990 + i, "result": i})) for i in range(3)
        )
        client.endpoint.inbox.append(_fake_message(unrelated))
        assert client.call("ping") == "pong"
        copies = [message for message in client.endpoint.inbox
                  if message.payload == unrelated]
        assert len(copies) == 1, (
            f"unrelated multi-frame message requeued {len(copies)} times"
        )


def _fake_message(payload: bytes):
    from repro.net.transport import Message

    return Message(source="elsewhere", destination="client", payload=payload,
                   sent_at=0.0, deliver_at=0.0)


class TestBeginMany:
    def test_begin_sends_without_pumping(self):
        """begin_many puts the payload on the wire but delivers nothing."""
        network, server, client = make_rpc_pair()
        server.register("echo", lambda params: params)
        handle = client.begin_many([("echo", i) for i in range(5)])
        assert network.pending() == 1  # enqueued, undelivered
        assert handle.collect() == list(range(5))
        assert network.pending() == 0

    def test_collect_is_idempotent(self):
        _, server, client = make_rpc_pair()
        server.register("echo", lambda params: params)
        handle = client.begin_many([("echo", 7)])
        assert handle.collect() == [7]
        assert handle.collect() == [7]
        assert server.requests_served == 1

    def test_two_servers_overlap_in_sim_time(self):
        """Split-phase scatter: service time on two servers must overlap.

        Both batches go on the wire before the network runs, so two servers
        with 10 ms/request queues finish in ~N×10 ms, not ~2N×10 ms. This is
        the mechanism shard scaling rests on.
        """
        from repro.net.rpc import ServiceTimeModel

        network = Network()
        servers = []
        for name in ("alpha", "beta"):
            endpoint = network.endpoint(name)
            server = RpcServer(endpoint,
                               service_model=ServiceTimeModel(per_request=0.01))
            server.register("work", lambda params: params)
            servers.append(server)
        client_endpoint = network.endpoint("client")
        clients = [RpcClient(network, client_endpoint, name)
                   for name in ("alpha", "beta")]
        started = network.clock.now()
        handles = [client.begin_many([("work", i) for i in range(5)])
                   for client in clients]
        for handle in handles:
            assert handle.collect() == list(range(5))
        elapsed = network.clock.now() - started
        assert 0.05 <= elapsed < 0.1, elapsed  # overlapped, not serialized


class TestBoundedIdSet:
    def test_evicts_oldest_beyond_bound(self):
        ids = BoundedIdSet(maxlen=3)
        for value in range(5):
            ids.add(value)
        assert len(ids) == 3
        assert 0 not in ids and 1 not in ids
        assert all(value in ids for value in (2, 3, 4))

    def test_duplicate_add_does_not_grow(self):
        ids = BoundedIdSet(maxlen=2)
        ids.add("a")
        ids.add("a")
        ids.add("b")
        assert len(ids) == 2 and "a" in ids and "b" in ids

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            BoundedIdSet(maxlen=0)

    def test_completed_ids_bounded_under_sustained_traffic(self):
        """Soak: the per-endpoint completed-id record must not grow without bound."""
        network = Network()
        server_endpoint = network.endpoint("server")
        client_endpoint = network.endpoint("client")
        server = RpcServer(server_endpoint)
        server.register("echo", lambda params: params)
        # Install a small bound before the client materializes the default.
        client_endpoint.rpc_completed_ids = BoundedIdSet(maxlen=32)
        client = RpcClient(network, client_endpoint, "server")
        for i in range(200):
            assert client.call("echo", i) == i
        assert len(client_endpoint.rpc_completed_ids) <= 32

    def test_batched_traffic_also_bounded(self):
        network = Network()
        server_endpoint = network.endpoint("server")
        client_endpoint = network.endpoint("client")
        server = RpcServer(server_endpoint)
        server.register("echo", lambda params: params)
        client_endpoint.rpc_completed_ids = BoundedIdSet(maxlen=16)
        client = RpcClient(network, client_endpoint, "server")
        for _ in range(10):
            client.call_many([("echo", i) for i in range(10)])
        assert len(client_endpoint.rpc_completed_ids) <= 16
