"""Tests for the discrete-event scheduler and the observable service queue.

The event loop is what turns the transport's delivery heap into genuine
request concurrency: tasks yield on send/receive instead of pumping the
network, so overlapping ops, retransmission after loss, queueing, and
head-of-line blocking all become directly testable — deterministically.
"""

import random

import pytest

from repro.errors import SimulationError, TimeoutError
from repro.net.eventloop import EventLoop, Sleep, WaitBatch
from repro.net.rpc import RpcClient, RpcServer, ServiceQueue, ServiceTimeModel
from repro.net.transport import FaultDecision, Network


def make_rpc_pair(network=None):
    network = network or Network()
    server = RpcServer(network.endpoint("server"))
    client = RpcClient(network, network.endpoint("client"), "server")
    return network, server, client


class TestSleepScheduling:
    def test_sleeps_interleave_in_timestamp_order(self):
        network = Network()
        loop = EventLoop(network)
        events = []

        def task(name, naps):
            for nap in naps:
                yield Sleep(nap)
                events.append((round(network.clock.now(), 6), name))

        loop.spawn(task("a", [0.3, 0.3]))  # wakes at 0.3, 0.6
        loop.spawn(task("b", [0.2, 0.2]))  # wakes at 0.2, 0.4
        loop.run()
        assert events == [(0.2, "b"), (0.3, "a"), (0.4, "b"), (0.6, "a")]

    def test_start_at_delays_a_task_until_its_arrival_time(self):
        network = Network()
        loop = EventLoop(network)
        seen = []

        def task():
            seen.append(network.clock.now())
            yield Sleep(0.0)

        loop.spawn(task(), start_at=1.5)
        loop.run()
        assert seen == [1.5]

    def test_done_tasks_expose_results(self):
        loop = EventLoop(Network())

        def task():
            yield Sleep(0.01)
            return 42

        handle = loop.spawn(task())
        loop.run()
        assert handle.done and handle.result == 42


class TestWaitBatch:
    def test_wait_batch_resolves_an_rpc_without_manual_pumping(self):
        network, server, client = make_rpc_pair()
        server.register("add", lambda params: params["a"] + params["b"])
        results = []

        def task():
            batch = client.begin_many([("add", {"a": 2, "b": 3})])
            yield WaitBatch(batch)
            results.extend(batch.collect())

        loop = EventLoop(network)
        loop.spawn(task())
        loop.run()
        assert results == [5]

    def test_two_tasks_on_one_endpoint_get_their_own_responses(self):
        """Response routing is by request id, not by arrival order.

        Both tasks share one client endpoint (and therefore one inbox), so a
        broadcast or positional scheme would cross their answers.
        """
        network, server, client = make_rpc_pair()
        server.register("echo", lambda params: params)
        results = {}

        def task(tag):
            batch = client.begin_many([("echo", tag)])
            yield WaitBatch(batch)
            results[tag] = batch.collect()

        loop = EventLoop(network)
        loop.spawn(task("first"))
        loop.spawn(task("second"))
        loop.run()
        assert results == {"first": ["first"], "second": ["second"]}

    def test_timeout_wakes_the_task_to_retransmit(self):
        """A lost request is retransmitted after the wait times out, and the
        retry succeeds — the event-loop analogue of ``collect``'s retries."""
        network, server, client = make_rpc_pair()
        server.register("ping", lambda params: "pong")
        drops = {"remaining": 1}

        def drop_first(message):
            if message.destination == "server" and drops["remaining"] > 0:
                drops["remaining"] -= 1
                return FaultDecision(drop=True)
            return None

        network.add_fault_hook(drop_first)
        results = []

        def task():
            batch = client.begin_many([("ping", None)])
            yield from batch.wait_event(attempts=3, timeout=0.05)
            results.extend(batch.collect())

        loop = EventLoop(network)
        loop.spawn(task())
        loop.run()
        assert results == ["pong"]
        assert client.retries >= 1

    def test_exhausted_attempts_surface_timeouts_not_hangs(self):
        network, server, client = make_rpc_pair()
        server.register("ping", lambda params: "pong")
        network.add_fault_hook(lambda message: FaultDecision(drop=True)
                               if message.destination == "server" else None)
        outcomes = []

        def task():
            batch = client.begin_many([("ping", None)])
            yield from batch.wait_event(attempts=2, timeout=0.05)
            outcomes.extend(batch.collect(return_errors=True))

        loop = EventLoop(network)
        loop.spawn(task())
        loop.run()
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], TimeoutError)


class TestDeterminism:
    def _traced_run(self, seed):
        network, server, client = make_rpc_pair()
        server.register("echo", lambda params: params)
        loop = EventLoop(network, trace=True)
        rng = random.Random(seed)

        def task(index):
            yield Sleep(rng.uniform(0.0, 0.01))
            batch = client.begin_many([("echo", index)])
            yield WaitBatch(batch)
            batch.collect()

        for index in range(10):
            loop.spawn(task(index), name=f"op-{index}")
        loop.run()
        return loop.trace

    def test_same_seed_yields_an_identical_event_trace(self):
        assert self._traced_run(7) == self._traced_run(7)

    def test_different_seeds_diverge(self):
        assert self._traced_run(7) != self._traced_run(8)


class TestEventBudget:
    def test_runaway_loop_raises_instead_of_hanging(self):
        loop = EventLoop(Network(), max_events=50)

        def spinner():
            while True:
                yield Sleep(0.001)

        loop.spawn(spinner())
        with pytest.raises(SimulationError, match="exceeded 50 events"):
            loop.run()

    def test_unknown_command_is_rejected(self):
        loop = EventLoop(Network())

        def confused():
            yield "not a command"

        loop.spawn(confused())
        with pytest.raises(SimulationError, match="unsupported command"):
            loop.run()


class TestServiceQueue:
    def test_depth_tracks_units_on_the_serial_timeline(self):
        queue = ServiceQueue()
        assert queue.enqueue(0.0, 3, 0.3) == pytest.approx(0.3)
        # Units complete at 0.1, 0.2, 0.3 on the serial timeline.
        assert queue.depth(0.05) == 3
        assert queue.depth(0.15) == 2
        assert queue.depth(0.35) == 0
        assert queue.max_depth == 3
        assert queue.total_units == 3

    def test_busy_until_semantics_are_preserved(self):
        """A second arrival waits for the first to drain — the exact
        busy-until behavior the scatter-overlap pin depends on."""
        queue = ServiceQueue()
        queue.enqueue(0.0, 1, 0.1)
        # Arrives at 0.04 while the first request is still in service.
        assert queue.enqueue(0.04, 1, 0.1) == pytest.approx(0.16)
        assert queue.busy_until == pytest.approx(0.2)

    def test_head_of_line_blocking_charges_the_latecomer(self):
        queue = ServiceQueue()
        queue.enqueue(0.0, 10, 1.0)  # a heavy batch holds the head
        delay = queue.enqueue(0.0, 1, 0.01)  # a tiny request behind it
        assert delay == pytest.approx(1.01)
        assert queue.max_depth == 11

    def test_server_queue_depth_is_observable_under_concurrency(self):
        network, server, client = make_rpc_pair()
        server.service_model = ServiceTimeModel(per_request=0.01)
        server.register("work", lambda params: params)
        loop = EventLoop(network)

        def task(index):
            batch = client.begin_many([("work", index)])
            yield WaitBatch(batch)
            batch.collect()

        for index in range(5):
            loop.spawn(task(index))
        loop.run()
        # All five requests hit the wire together, so they pile up behind
        # the serial queue; by the end everything has drained.
        assert server.max_queue_depth >= 2
        assert server.queue_depth() == 0
        assert server.busy_until > 0.0
