"""Unit tests for the in-memory network transport."""

import pytest

from repro.errors import NetworkError, TransportClosedError
from repro.net.clock import SimClock
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.transport import FaultDecision, Network


class TestEndpointsAndDelivery:
    def test_send_and_receive(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        alice.send("bob", b"hi bob")
        assert network.run_until_idle() == 1
        message = bob.receive()
        assert message.payload == b"hi bob"
        assert message.source == "alice"
        assert bob.receive() is None

    def test_handler_invoked(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        seen = []
        bob.on_message = lambda m: seen.append(m.payload)
        alice.send("bob", b"one")
        alice.send("bob", b"two")
        network.run_until_idle()
        assert seen == [b"one", b"two"]

    def test_duplicate_address_rejected(self):
        network = Network()
        network.endpoint("x")
        with pytest.raises(NetworkError):
            network.endpoint("x")

    def test_unknown_destination_rejected(self):
        network = Network()
        alice = network.endpoint("alice")
        with pytest.raises(NetworkError):
            alice.send("nobody", b"hello?")

    def test_closed_endpoint_rejects_io(self):
        network = Network()
        alice = network.endpoint("alice")
        network.endpoint("bob")
        alice.close()
        with pytest.raises(TransportClosedError):
            alice.send("bob", b"x")
        with pytest.raises(TransportClosedError):
            alice.receive()

    def test_messages_to_closed_endpoint_dropped(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        alice.send("bob", b"x")
        bob.close()
        assert network.run_until_idle() == 0

    def test_addresses_listed(self):
        network = Network()
        network.endpoint("b")
        network.endpoint("a")
        assert network.addresses() == ["a", "b"]

    def test_pending_count(self):
        network = Network()
        alice = network.endpoint("alice")
        network.endpoint("bob")
        alice.send("bob", b"x")
        assert network.pending() == 1
        network.run_until_idle()
        assert network.pending() == 0


class TestLatencyAccounting:
    def test_clock_advances_by_link_latency(self):
        clock = SimClock()
        network = Network(clock=clock, default_latency=ConstantLatency(0.010))
        alice = network.endpoint("alice")
        network.endpoint("bob")
        alice.send("bob", b"x")
        network.run_until_idle()
        assert clock.now() == pytest.approx(0.010)

    def test_per_link_latency_override(self):
        clock = SimClock()
        network = Network(clock=clock)
        alice = network.endpoint("alice")
        network.endpoint("bob")
        network.set_link_latency("alice", "bob", ConstantLatency(0.5))
        alice.send("bob", b"x")
        network.run_until_idle()
        assert clock.now() == pytest.approx(0.5)

    def test_stats_collected(self):
        network = Network()
        alice = network.endpoint("alice")
        network.endpoint("bob")
        alice.send("bob", b"12345")
        alice.send("bob", b"678")
        network.run_until_idle()
        assert network.stats.messages_sent == 2
        assert network.stats.bytes_sent == 8
        assert network.stats.messages_delivered == 2
        assert network.stats.per_link[("alice", "bob")]["messages"] == 2


class TestPartitions:
    def test_partitioned_link_drops_traffic(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        network.partition("alice", "bob")
        alice.send("bob", b"lost")
        network.run_until_idle()
        assert bob.receive() is None

    def test_heal_restores_traffic(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        network.partition("alice", "bob")
        network.heal("alice", "bob")
        alice.send("bob", b"found")
        network.run_until_idle()
        assert bob.receive().payload == b"found"

    def test_partition_is_symmetric_by_default(self):
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        network.partition("alice", "bob")
        bob.send("alice", b"x")
        network.run_until_idle()
        assert alice.receive() is None


class TestConservation:
    """Every message that enters the network is counted exactly once.

    ``sent + duplicated == delivered + dropped (+ pending)`` — the identity
    the scenario runner asserts after every run. Each test here targets a
    path that used to leak from the accounting.
    """

    def test_clean_traffic_conserves(self):
        network = Network()
        alice = network.endpoint("alice")
        network.endpoint("bob")
        alice.send("bob", b"x")
        assert network.stats.conserved(pending=network.pending())
        network.run_until_idle()
        assert network.stats.conserved()

    def test_closed_destination_drop_is_recorded(self):
        """The delivery-time drop (endpoint closed after send) must count."""
        network = Network()
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        alice.send("bob", b"x")
        bob.close()
        network.run_until_idle()
        assert network.stats.messages_dropped == 1
        assert network.stats.conserved(), network.stats.conservation_detail()

    def test_downed_destination_drop_is_recorded(self):
        network = Network()
        alice = network.endpoint("alice")
        network.endpoint("bob")
        alice.send("bob", b"x")
        network.crash("bob")
        network.run_until_idle()
        assert network.stats.messages_dropped == 1
        assert network.stats.conserved(), network.stats.conservation_detail()

    def test_partitioned_send_counts_as_sent_and_dropped(self):
        network = Network()
        alice = network.endpoint("alice")
        network.endpoint("bob")
        network.partition("alice", "bob")
        alice.send("bob", b"x")
        assert network.stats.messages_sent == 1
        assert network.stats.messages_dropped == 1
        assert network.stats.conserved()

    def test_fault_dropped_send_charges_no_latency(self):
        """A message that never rode the wire must not inflate total_latency
        (it used to charge its sampled link latency despite being dropped)."""
        network = Network(default_latency=ConstantLatency(0.01))
        alice = network.endpoint("alice")
        network.endpoint("bob")
        network.add_fault_hook(lambda message: FaultDecision(drop=True))
        alice.send("bob", b"x")
        assert network.stats.messages_dropped == 1
        assert network.stats.total_latency == 0.0
        assert network.stats.conserved()

    def test_duplicate_copies_get_independent_delivery_times(self):
        """Fault-injected duplicates must not arrive in lockstep with the
        original: each copy samples its own link latency (they used to share
        one deliver_at, so reordering between copies was impossible)."""
        clock = SimClock()
        network = Network(clock=clock,
                          default_latency=UniformLatency(0.01, 0.05, seed=7))
        alice = network.endpoint("alice")
        bob = network.endpoint("bob")
        arrivals = []
        bob.on_message = lambda message: arrivals.append(clock.now())
        network.add_fault_hook(lambda message: FaultDecision(duplicates=2))
        alice.send("bob", b"x")
        network.run_until_idle()
        assert len(arrivals) == 3
        assert len(set(arrivals)) == 3
        assert network.stats.messages_duplicated == 2
        assert network.stats.conserved(), network.stats.conservation_detail()
