"""Unit tests for the simulated clock and latency models."""

import pytest

from repro.net.clock import SimClock
from repro.net.latency import (
    ConstantLatency,
    NoLatency,
    UniformLatency,
    lan_profile,
    vsock_profile,
    wan_profile,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now() == 1.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_only_moves_forward(self):
        clock = SimClock()
        clock.advance_to(3.0)
        clock.advance_to(1.0)
        assert clock.now() == 3.0

    def test_wall_time_monotonic(self):
        a = SimClock.wall_time()
        b = SimClock.wall_time()
        assert b >= a


class TestLatencyModels:
    def test_no_latency(self):
        assert NoLatency().sample(10**6) == 0.0

    def test_constant_latency_without_bandwidth(self):
        assert ConstantLatency(0.010).sample(10**6) == pytest.approx(0.010)

    def test_constant_latency_with_bandwidth(self):
        model = ConstantLatency(0.001, bandwidth_bps=1000)
        assert model.sample(500) == pytest.approx(0.001 + 0.5)

    def test_constant_latency_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)
        with pytest.raises(ValueError):
            ConstantLatency(0.0, bandwidth_bps=0)

    def test_uniform_latency_bounds(self):
        model = UniformLatency(0.001, 0.002, seed=1)
        for _ in range(100):
            assert 0.001 <= model.sample(0) <= 0.002

    def test_uniform_latency_reproducible(self):
        a = UniformLatency(0.0, 1.0, seed=7)
        b = UniformLatency(0.0, 1.0, seed=7)
        assert [a.sample(0) for _ in range(5)] == [b.sample(0) for _ in range(5)]

    def test_uniform_latency_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_profiles_ordering(self):
        size = 10_000
        assert vsock_profile().sample(size) < lan_profile().sample(size) < wan_profile().sample(size)

    def test_latency_model_base_is_abstract(self):
        from repro.net.latency import LatencyModel

        with pytest.raises(NotImplementedError):
            LatencyModel().sample(1)
