"""Unit tests for the simulated clock and latency models."""

import pytest

from repro.net.clock import SimClock
from repro.net.latency import (
    GEO_REGIONS,
    ConstantLatency,
    LatencyMap,
    NoLatency,
    UniformLatency,
    geo_profile,
    lan_profile,
    vsock_profile,
    wan_profile,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now() == 1.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_only_moves_forward(self):
        clock = SimClock()
        clock.advance_to(3.0)
        clock.advance_to(1.0)
        assert clock.now() == 3.0

    def test_wall_time_monotonic(self):
        a = SimClock.wall_time()
        b = SimClock.wall_time()
        assert b >= a


class TestLatencyModels:
    def test_no_latency(self):
        assert NoLatency().sample(10**6) == 0.0

    def test_constant_latency_without_bandwidth(self):
        assert ConstantLatency(0.010).sample(10**6) == pytest.approx(0.010)

    def test_constant_latency_with_bandwidth(self):
        model = ConstantLatency(0.001, bandwidth_bps=1000)
        assert model.sample(500) == pytest.approx(0.001 + 0.5)

    def test_constant_latency_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)
        with pytest.raises(ValueError):
            ConstantLatency(0.0, bandwidth_bps=0)

    def test_uniform_latency_bounds(self):
        model = UniformLatency(0.001, 0.002, seed=1)
        for _ in range(100):
            assert 0.001 <= model.sample(0) <= 0.002

    def test_uniform_latency_reproducible(self):
        a = UniformLatency(0.0, 1.0, seed=7)
        b = UniformLatency(0.0, 1.0, seed=7)
        assert [a.sample(0) for _ in range(5)] == [b.sample(0) for _ in range(5)]

    def test_uniform_latency_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_profiles_ordering(self):
        size = 10_000
        assert vsock_profile().sample(size) < lan_profile().sample(size) < wan_profile().sample(size)

    def test_latency_model_base_is_abstract(self):
        from repro.net.latency import LatencyModel

        with pytest.raises(NotImplementedError):
            LatencyModel().sample(1)


class TestLatencyMap:
    def test_region_names_must_be_unique_and_non_empty(self):
        with pytest.raises(ValueError):
            LatencyMap(("us-east", "us-east"))
        with pytest.raises(ValueError):
            LatencyMap(("us-east", ""))

    def test_pairs_are_directed_by_default(self):
        geo = LatencyMap(("a", "b"))
        fast = ConstantLatency(0.010)
        geo.set_pair("a", "b", fast)
        assert geo.model_for("a", "b") is fast
        # The reverse direction was not installed: generic WAN fallback.
        assert geo.model_for("b", "a") is geo.default

    def test_symmetric_pair_installs_both_directions(self):
        geo = LatencyMap(("a", "b"))
        fast = ConstantLatency(0.010)
        geo.set_pair("a", "b", fast, symmetric=True)
        assert geo.model_for("b", "a") is fast

    def test_same_region_traffic_uses_the_local_model(self):
        geo = LatencyMap(("a", "b"))
        assert geo.model_for("a", "a") is geo.local
        with pytest.raises(ValueError):
            geo.set_pair("a", "a", ConstantLatency(0.010))

    def test_unknown_regions_are_rejected(self):
        geo = LatencyMap(("a", "b"))
        with pytest.raises(ValueError):
            geo.model_for("a", "atlantis")
        with pytest.raises(ValueError):
            geo.set_pair("atlantis", "a", ConstantLatency(0.010))

    def test_rtt_sums_both_directions(self):
        geo = LatencyMap(("a", "b"))
        geo.set_pair("a", "b", ConstantLatency(0.010))
        geo.set_pair("b", "a", ConstantLatency(0.030))
        assert geo.rtt_s("a", "b") == pytest.approx(0.040)
        assert geo.rtt_s("a", "b") == geo.rtt_s("b", "a")


class TestGeoProfile:
    def test_regions(self):
        assert geo_profile().regions == GEO_REGIONS == (
            "us-east", "eu-west", "ap-south")

    def test_transatlantic_delivery_times_are_asymmetric(self):
        geo = geo_profile()
        assert geo.model_for("us-east", "eu-west").sample(0) == pytest.approx(0.038)
        assert geo.model_for("eu-west", "us-east").sample(0) == pytest.approx(0.042)
        assert geo.rtt_s("us-east", "eu-west") == pytest.approx(0.080)

    def test_long_haul_delivery_times(self):
        geo = geo_profile()
        assert geo.model_for("us-east", "ap-south").sample(0) == pytest.approx(0.095)
        assert geo.model_for("ap-south", "us-east").sample(0) == pytest.approx(0.105)
        assert geo.model_for("eu-west", "ap-south").sample(0) == pytest.approx(0.062)
        assert geo.model_for("ap-south", "eu-west").sample(0) == pytest.approx(0.068)

    def test_cross_region_bandwidth_charges_serialization(self):
        # 1 MB over the 1 Gbit/s transatlantic route adds 8 ms on the wire.
        model = geo_profile().model_for("us-east", "eu-west")
        assert model.sample(1_000_000) == pytest.approx(0.038 + 0.008)

    def test_same_region_stays_on_the_lan(self):
        geo = geo_profile()
        lan = geo.model_for("us-east", "us-east").sample(1000)
        assert lan == pytest.approx(lan_profile().sample(1000))
        assert lan < geo.model_for("us-east", "eu-west").sample(1000)
