"""Unit tests for the RPC layer and vsock-style proxy chain."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RpcError
from repro.net.clock import SimClock
from repro.net.rpc import BoundedIdSet, RpcClient, RpcServer
from repro.net.transport import Network
from repro.net.vsock import SocketHop, VsockProxyChain


def make_rpc_pair():
    network = Network()
    server_endpoint = network.endpoint("server")
    client_endpoint = network.endpoint("client")
    server = RpcServer(server_endpoint)
    client = RpcClient(network, client_endpoint, "server")
    return network, server, client


class TestRpc:
    def test_simple_call(self):
        _, server, client = make_rpc_pair()
        server.register("add", lambda params: params["a"] + params["b"])
        assert client.call("add", {"a": 2, "b": 3}) == 5

    def test_call_with_none_params(self):
        _, server, client = make_rpc_pair()
        server.register("ping", lambda params: "pong")
        assert client.call("ping") == "pong"

    def test_unknown_method(self):
        _, server, client = make_rpc_pair()
        with pytest.raises(RpcError):
            client.call("missing")

    def test_handler_exception_propagates_as_rpc_error(self):
        _, server, client = make_rpc_pair()

        def explode(params):
            raise ValueError("boom")

        server.register("explode", explode)
        with pytest.raises(RpcError, match="boom"):
            client.call("explode")

    def test_multiple_sequential_calls(self):
        _, server, client = make_rpc_pair()
        server.register("echo", lambda params: params)
        for i in range(10):
            assert client.call("echo", {"i": i}) == {"i": i}
        assert server.requests_served == 10

    def test_binary_payloads(self):
        _, server, client = make_rpc_pair()
        server.register("rev", lambda params: params[::-1])
        assert client.call("rev", b"\x01\x02\x03") == b"\x03\x02\x01"

    def test_registered_methods_listing(self):
        _, server, _ = make_rpc_pair()
        server.register("b", lambda p: p)
        server.register("a", lambda p: p)
        assert server.registered_methods() == ["a", "b"]

    def test_two_clients_one_server(self):
        network = Network()
        server_endpoint = network.endpoint("server")
        server = RpcServer(server_endpoint)
        server.register("whoami", lambda params: params["name"])
        client_a = RpcClient(network, network.endpoint("a"), "server")
        client_b = RpcClient(network, network.endpoint("b"), "server")
        assert client_a.call("whoami", {"name": "a"}) == "a"
        assert client_b.call("whoami", {"name": "b"}) == "b"


class TestVsock:
    def test_single_hop_round_trip(self):
        hop = SocketHop("test-hop")
        assert hop.forward(b"payload") == b"payload"
        assert hop.stats.forwarded_messages == 1
        assert hop.stats.forwarded_bytes == len(b"payload") + 4

    def test_large_payload_forwarded_in_chunks(self):
        hop = SocketHop("big")
        payload = b"\xab" * 100_000
        assert hop.forward(payload) == payload

    def test_chain_request_and_response(self):
        chain = VsockProxyChain.nitro_style()
        assert chain.request(b"req") == b"req"
        assert chain.respond(b"resp") == b"resp"
        assert chain.total_forwarded_messages == 4

    def test_round_trip_traverses_all_hops_twice(self):
        chain = VsockProxyChain.nitro_style()
        assert chain.round_trip(b"x") == b"x"
        for hop in chain.hops:
            assert hop.stats.forwarded_messages == 2

    def test_latency_charged_to_clock(self):
        clock = SimClock()
        chain = VsockProxyChain.nitro_style(clock=clock)
        chain.round_trip(b"x" * 1000)
        assert clock.now() > 0
        assert chain.total_simulated_latency == pytest.approx(clock.now())

    def test_empty_payload(self):
        hop = SocketHop("empty")
        assert hop.forward(b"") == b""


class TestBoundedIdSetProperties:
    """Property tests for the completed-id window behind duplicate filtering."""

    @settings(max_examples=100, deadline=None)
    @given(
        maxlen=st.integers(min_value=1, max_value=16),
        items=st.lists(st.integers(min_value=0, max_value=31), max_size=64),
    )
    def test_members_and_order_stay_in_lockstep(self, maxlen, items):
        """After ANY add sequence: len(_members) == len(_order) <= maxlen.

        The set and the eviction ring must never drift apart — a divergence
        means either a member that can no longer be evicted (unbounded
        memory) or a ring entry whose membership was already forgotten
        (premature re-admission of a duplicate response).
        """
        ids = BoundedIdSet(maxlen=maxlen)
        for item in items:
            ids.add(item)
            assert len(ids._members) == len(ids._order) <= maxlen
            assert set(ids._order) == ids._members
            assert item in ids

    @settings(max_examples=100, deadline=None)
    @given(
        maxlen=st.integers(min_value=1, max_value=8),
        items=st.lists(st.integers(min_value=0, max_value=15), max_size=48),
    )
    def test_exactly_the_most_recent_unique_items_remain(self, maxlen, items):
        """The survivors match a plain-list reference model of the window.

        Re-adding a *present* item is a no-op (it must not refresh recency —
        the window models completion time, not last-duplicate time), but an
        item evicted earlier may legitimately re-enter as a fresh addition.
        The reference model is a list trimmed to ``maxlen`` on every insert.
        """
        ids = BoundedIdSet(maxlen=maxlen)
        model: list = []
        for item in items:
            ids.add(item)
            if item not in model:
                model.append(item)
                if len(model) > maxlen:
                    model.pop(0)
        assert list(ids._order) == model
        assert ids._members == set(model)
