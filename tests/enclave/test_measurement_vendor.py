"""Unit tests for code measurement and the simulated vendor PKI."""

import pytest

from repro.enclave.measurement import Measurement, measure_code
from repro.enclave.vendor import HardwareVendor, VendorCertificate, VendorRegistry
from repro.errors import AttestationError


class TestMeasurement:
    def test_deterministic(self):
        assert measure_code(b"code") == measure_code(b"code")

    def test_different_code_different_digest(self):
        assert measure_code(b"a").digest != measure_code(b"b").digest

    def test_label_separates_measurements(self):
        assert measure_code(b"code", "v1") != measure_code(b"code", "v2")

    def test_matches(self):
        m = measure_code(b"framework", "fw")
        assert m.matches(b"framework")
        assert not m.matches(b"other")

    def test_code_size_recorded(self):
        assert measure_code(b"12345").code_size == 5

    def test_hex(self):
        m = measure_code(b"x")
        assert m.hex() == m.digest.hex()

    def test_dict_round_trip(self):
        m = measure_code(b"x", "label")
        assert Measurement.from_dict(m.to_dict()) == m

    def test_measurement_differs_from_plain_sha256(self):
        import hashlib

        assert measure_code(b"x").digest != hashlib.sha256(b"x").digest()


class TestVendor:
    def test_root_key_deterministic_by_name(self):
        assert HardwareVendor("v").root_public_key == HardwareVendor("v").root_public_key
        assert HardwareVendor("v").root_public_key != HardwareVendor("w").root_public_key

    def test_provision_device_returns_certified_key(self):
        vendor = HardwareVendor("aws-nitro-sim")
        device_key, certificate = vendor.provision_device("device-1")
        registry = VendorRegistry([vendor])
        certified = registry.verify_certificate(certificate)
        assert certified == device_key.verifying_key()

    def test_issued_devices_tracked(self):
        vendor = HardwareVendor("v")
        vendor.provision_device("a")
        vendor.provision_device("b")
        assert vendor.issued_devices() == ["a", "b"]

    def test_mark_compromised(self):
        vendor = HardwareVendor("v")
        assert not vendor.compromised
        vendor.mark_compromised()
        assert vendor.compromised


class TestVendorRegistry:
    def test_unknown_vendor_rejected(self):
        registry = VendorRegistry()
        with pytest.raises(AttestationError):
            registry.get("nope")

    def test_names(self):
        registry = VendorRegistry.default()
        assert registry.names() == ["aws-nitro-sim", "intel-sgx-sim"]

    def test_forged_certificate_rejected(self):
        vendor = HardwareVendor("real")
        impostor = HardwareVendor("real-impostor")
        _, certificate = impostor.provision_device("dev")
        forged = VendorCertificate(
            vendor_name="real",
            device_id=certificate.device_id,
            device_public_key=certificate.device_public_key,
            signature=certificate.signature,
        )
        registry = VendorRegistry([vendor])
        with pytest.raises(AttestationError):
            registry.verify_certificate(forged)

    def test_tampered_device_key_rejected(self):
        vendor = HardwareVendor("v")
        _, certificate = vendor.provision_device("dev")
        other_key, _ = vendor.provision_device("other")
        tampered = VendorCertificate(
            vendor_name=certificate.vendor_name,
            device_id=certificate.device_id,
            device_public_key=other_key.verifying_key().to_bytes(),
            signature=certificate.signature,
        )
        registry = VendorRegistry([vendor])
        with pytest.raises(AttestationError):
            registry.verify_certificate(tampered)

    def test_certificate_dict_round_trip(self):
        vendor = HardwareVendor("v")
        _, certificate = vendor.provision_device("dev")
        assert VendorCertificate.from_dict(certificate.to_dict()) == certificate
