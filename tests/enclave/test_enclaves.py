"""Unit tests for the simulated Nitro-style and SGX-style enclaves."""

import pytest

from repro.enclave.memory import EnclaveMemory
from repro.enclave.nitro import NitroAttestationDocument, NitroStyleEnclave
from repro.enclave.sealing import SealedBlob
from repro.enclave.sgx import SgxQuote, SgxStyleEnclave
from repro.enclave.tee import HardwareType
from repro.enclave.vendor import HardwareVendor
from repro.errors import (
    EnclaveCompromisedError,
    EnclaveError,
    SandboxEscapeError,
    SealingError,
)

FRAMEWORK_CODE = b"def framework(): pass  # version 1"


def make_nitro(enclave_id="nitro-0") -> NitroStyleEnclave:
    return NitroStyleEnclave(enclave_id, HardwareVendor("aws-nitro-sim"), FRAMEWORK_CODE)


def make_sgx(enclave_id="sgx-0") -> SgxStyleEnclave:
    return SgxStyleEnclave(enclave_id, HardwareVendor("intel-sgx-sim"), FRAMEWORK_CODE)


class TestEnclaveBasics:
    def test_info(self):
        enclave = make_nitro()
        info = enclave.info()
        assert info.hardware_type == HardwareType.NITRO
        assert info.vendor_name == "aws-nitro-sim"
        assert info.measurement.matches(FRAMEWORK_CODE)

    def test_loaded_code_readable(self):
        assert make_nitro().loaded_code() == FRAMEWORK_CODE

    def test_call_requires_entry_point(self):
        with pytest.raises(EnclaveError):
            make_nitro().call("ping")

    def test_call_dispatches_to_entry_point(self):
        enclave = make_nitro()
        enclave.set_entry_point(lambda method, *args: (method, args))
        assert enclave.call("echo", 1, 2) == ("echo", (1, 2))

    def test_compromised_enclave_refuses_calls(self):
        enclave = make_nitro()
        enclave.set_entry_point(lambda method: "ok")
        enclave.mark_compromised()
        with pytest.raises(EnclaveCompromisedError):
            enclave.call("anything")

    def test_hardware_types_differ(self):
        assert make_nitro().hardware_type != make_sgx().hardware_type


class TestEnclaveMemory:
    def test_isolated_memory_blocks_host_reads(self):
        enclave = make_nitro()
        enclave.memory.write("secret", b"\x01\x02")
        assert enclave.memory.read("secret") == b"\x01\x02"
        with pytest.raises(SandboxEscapeError):
            enclave.memory.host_read("secret")

    def test_breach_allows_host_reads(self):
        enclave = make_nitro()
        enclave.memory.write("secret", b"\x01")
        enclave.mark_compromised()
        assert enclave.memory.host_read("secret") == b"\x01"
        assert enclave.memory.breached

    def test_non_isolated_memory_allows_host_reads(self):
        memory = EnclaveMemory(isolated=False)
        memory.write("k", 1)
        assert memory.host_read("k") == 1

    def test_wipe_and_delete(self):
        memory = EnclaveMemory()
        memory.write("a", 1)
        memory.write("b", 2)
        memory.delete("a")
        assert memory.read("a") is None
        memory.wipe()
        assert memory.keys() == []

    def test_keys_listing(self):
        memory = EnclaveMemory()
        memory.write("b", 1)
        memory.write("a", 2)
        assert memory.keys() == ["a", "b"]


class TestSealing:
    def test_seal_unseal_round_trip(self):
        enclave = make_nitro()
        blob = enclave.seal(b"developer public key bytes")
        assert enclave.unseal(blob) == b"developer public key bytes"

    def test_other_device_cannot_unseal(self):
        blob = make_nitro("a").seal(b"secret")
        with pytest.raises(SealingError):
            make_nitro("b").unseal(blob)

    def test_different_measurement_cannot_unseal(self):
        vendor = HardwareVendor("aws-nitro-sim")
        original = NitroStyleEnclave("x", vendor, FRAMEWORK_CODE)
        blob = original.seal(b"secret")
        patched = NitroStyleEnclave("x", vendor, FRAMEWORK_CODE + b" patched")
        with pytest.raises(SealingError):
            patched.unseal(blob)

    def test_tampered_blob_rejected(self):
        enclave = make_nitro()
        blob = enclave.seal(b"payload")
        tampered = SealedBlob(blob.nonce, blob.ciphertext[:-1] + b"\x00", blob.tag)
        with pytest.raises(SealingError):
            enclave.unseal(tampered)

    def test_blob_serialization_round_trip(self):
        enclave = make_nitro()
        blob = enclave.seal(b"some state")
        restored = SealedBlob.from_bytes(blob.to_bytes())
        assert enclave.unseal(restored) == b"some state"

    def test_blob_too_short_rejected(self):
        with pytest.raises(SealingError):
            SealedBlob.from_bytes(b"\x00" * 4)

    def test_empty_plaintext(self):
        enclave = make_nitro()
        assert enclave.unseal(enclave.seal(b"")) == b""


class TestNitroAttestation:
    def test_document_fields(self):
        enclave = make_nitro()
        document = enclave.attest(b"nonce-123", user_data=b"app-digest")
        assert document.nonce == b"nonce-123"
        assert document.user_data == b"app-digest"
        assert document.measurement_digest() == enclave.measurement.digest
        assert document.module_id == enclave.device_id

    def test_document_dict_round_trip(self):
        document = make_nitro().attest(b"n")
        assert NitroAttestationDocument.from_dict(document.to_dict()) == document

    def test_missing_pcr0_raises(self):
        document = make_nitro().attest(b"n")
        broken = NitroAttestationDocument(
            module_id=document.module_id,
            pcrs={"1": b"\x00"},
            nonce=document.nonce,
            user_data=document.user_data,
            certificate=document.certificate,
            signature=document.signature,
        )
        from repro.errors import AttestationError

        with pytest.raises(AttestationError):
            broken.measurement_digest()

    def test_compromised_enclave_refuses_to_attest(self):
        enclave = make_nitro()
        enclave.mark_compromised()
        with pytest.raises(EnclaveCompromisedError):
            enclave.attest(b"n")


class TestSgxAttestation:
    def test_quote_fields(self):
        enclave = make_sgx()
        quote = enclave.attest(b"nonce", user_data=b"user-data")
        assert quote.mrenclave == enclave.measurement.digest
        assert quote.nonce == b"nonce"
        assert quote.report_data == SgxStyleEnclave.expected_report_data(b"user-data")
        assert quote.isv_svn == SgxStyleEnclave.isv_svn

    def test_quote_dict_round_trip(self):
        quote = make_sgx().attest(b"n")
        assert SgxQuote.from_dict(quote.to_dict()) == quote

    def test_mrsigner_depends_on_vendor(self):
        a = make_sgx("a").attest(b"n")
        other_vendor = SgxStyleEnclave("b", HardwareVendor("other-sgx"), FRAMEWORK_CODE)
        b = other_vendor.attest(b"n")
        assert a.mrsigner != b.mrsigner
