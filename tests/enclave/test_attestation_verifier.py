"""Unit tests for attestation verification and exploit campaigns."""

import pytest

from repro.enclave.attestation import AttestationVerifier
from repro.enclave.exploits import ExploitCampaign
from repro.enclave.measurement import measure_code
from repro.enclave.nitro import NitroAttestationDocument, NitroStyleEnclave
from repro.enclave.sgx import SgxQuote, SgxStyleEnclave
from repro.enclave.vendor import HardwareVendor, VendorRegistry
from repro.errors import AttestationError

FRAMEWORK_CODE = b"framework code v1"


def setup_pair():
    nitro_vendor = HardwareVendor("aws-nitro-sim")
    sgx_vendor = HardwareVendor("intel-sgx-sim")
    registry = VendorRegistry([nitro_vendor, sgx_vendor])
    nitro = NitroStyleEnclave("nitro-0", nitro_vendor, FRAMEWORK_CODE, code_label="framework")
    sgx = SgxStyleEnclave("sgx-0", sgx_vendor, FRAMEWORK_CODE, code_label="framework")
    verifier = AttestationVerifier(registry)
    return nitro, sgx, verifier


class TestNitroVerification:
    def test_valid_document_accepted(self):
        nitro, _, verifier = setup_pair()
        expected = measure_code(FRAMEWORK_CODE, "framework")
        document = nitro.attest(b"challenge", user_data=b"state")
        result = verifier.verify(document, b"challenge", expected, user_data=b"state")
        assert result.valid
        assert result.vendor_name == "aws-nitro-sim"
        assert result.measurement_digest == expected.digest

    def test_dict_form_accepted(self):
        nitro, _, verifier = setup_pair()
        document = nitro.attest(b"challenge")
        assert verifier.verify(document.to_dict(), b"challenge").valid

    def test_wrong_nonce_rejected(self):
        nitro, _, verifier = setup_pair()
        document = nitro.attest(b"challenge")
        result = verifier.verify(document, b"other-challenge")
        assert not result.valid
        assert "nonce" in result.reason

    def test_wrong_measurement_rejected(self):
        nitro, _, verifier = setup_pair()
        document = nitro.attest(b"c")
        expected = measure_code(b"some other code", "framework")
        result = verifier.verify(document, b"c", expected)
        assert not result.valid
        assert "measurement" in result.reason

    def test_wrong_user_data_rejected(self):
        nitro, _, verifier = setup_pair()
        document = nitro.attest(b"c", user_data=b"claimed-state")
        result = verifier.verify(document, b"c", user_data=b"different-state")
        assert not result.valid

    def test_untrusted_vendor_rejected(self):
        rogue_vendor = HardwareVendor("rogue-cloud")
        enclave = NitroStyleEnclave("rogue-0", rogue_vendor, FRAMEWORK_CODE)
        _, _, verifier = setup_pair()
        result = verifier.verify(enclave.attest(b"c"), b"c")
        assert not result.valid

    def test_tampered_signature_rejected(self):
        nitro, _, verifier = setup_pair()
        document = nitro.attest(b"c")
        forged = NitroAttestationDocument(
            module_id=document.module_id,
            pcrs=dict(document.pcrs, **{"0": b"\x00" * 32}),
            nonce=document.nonce,
            user_data=document.user_data,
            certificate=document.certificate,
            signature=document.signature,
        )
        result = verifier.verify(forged, b"c")
        assert not result.valid
        assert "signature" in result.reason

    def test_verify_or_raise(self):
        nitro, _, verifier = setup_pair()
        document = nitro.attest(b"c")
        assert verifier.verify_or_raise(document, b"c").valid
        with pytest.raises(AttestationError):
            verifier.verify_or_raise(document, b"wrong")


class TestSgxVerification:
    def test_valid_quote_accepted(self):
        _, sgx, verifier = setup_pair()
        expected = measure_code(FRAMEWORK_CODE, "framework")
        quote = sgx.attest(b"nonce", user_data=b"state")
        result = verifier.verify(quote, b"nonce", expected, user_data=b"state")
        assert result.valid
        assert result.vendor_name == "intel-sgx-sim"

    def test_report_data_mismatch_rejected(self):
        _, sgx, verifier = setup_pair()
        quote = sgx.attest(b"nonce", user_data=b"actual")
        result = verifier.verify(quote, b"nonce", user_data=b"claimed")
        assert not result.valid
        assert "report data" in result.reason

    def test_dict_form_accepted(self):
        _, sgx, verifier = setup_pair()
        quote = sgx.attest(b"n")
        assert verifier.verify(quote.to_dict(), b"n").valid

    def test_unknown_format_rejected(self):
        _, _, verifier = setup_pair()
        with pytest.raises(AttestationError):
            verifier.verify({"format": "tpm-quote"}, b"n")

    def test_unsupported_evidence_type_rejected(self):
        _, _, verifier = setup_pair()
        assert not verifier.verify(object(), b"n").valid


class TestExploitCampaign:
    def _enclaves(self):
        nitro_vendor = HardwareVendor("aws-nitro-sim")
        sgx_vendor = HardwareVendor("intel-sgx-sim")
        return [
            NitroStyleEnclave("nitro-0", nitro_vendor, FRAMEWORK_CODE),
            NitroStyleEnclave("nitro-1", nitro_vendor, FRAMEWORK_CODE),
            SgxStyleEnclave("sgx-0", sgx_vendor, FRAMEWORK_CODE),
        ]

    def test_vendor_exploit_is_correlated(self):
        enclaves = self._enclaves()
        campaign = ExploitCampaign(enclaves)
        report = campaign.exploit_vendor("aws-nitro-sim")
        assert report.compromised_count == 2
        assert report.unaffected_count == 1
        assert campaign.surviving_fraction() == pytest.approx(1 / 3)

    def test_heterogeneous_deployment_survives_single_vendor_exploit(self):
        enclaves = self._enclaves()
        campaign = ExploitCampaign(enclaves)
        campaign.exploit_vendor("intel-sgx-sim")
        # One honest (uncompromised) domain remains on the other vendor.
        assert campaign.surviving_fraction() > 0

    def test_single_exploit_affects_one_enclave(self):
        enclaves = self._enclaves()
        campaign = ExploitCampaign(enclaves)
        report = campaign.exploit_single("sgx-0")
        assert report.compromised_enclaves == ["sgx-0"]
        assert report.unaffected_count == 2

    def test_breaks_threshold(self):
        # Application with 3 domains needing at least 1 honest domain.
        assert not ExploitCampaign.breaks_threshold(3, 2, 1)
        assert ExploitCampaign.breaks_threshold(3, 3, 1)

    def test_surviving_fraction_empty(self):
        assert ExploitCampaign([]).surviving_fraction() == 1.0
