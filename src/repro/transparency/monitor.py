"""Log monitors.

A monitor is the third-party-auditor role the paper describes: it follows a
public log over time, verifies that every new tree head is consistent with the
previous one, inspects new entries, and raises alerts. Application developers
can also run monitors over their *own* deployments to detect compromise of
their publishing keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import LogConsistencyError
from repro.transparency.ct_log import CtLog, SignedTreeHead

__all__ = ["MonitorAlert", "LogMonitor"]


@dataclass(frozen=True)
class MonitorAlert:
    """One alert raised by a monitor."""

    kind: str
    detail: str
    tree_size: int


class LogMonitor:
    """Follows a CT-style log, checking consistency and inspecting new entries.

    Args:
        log: the log to follow (in a real deployment this would be an RPC
            client; the object only needs ``signed_tree_head``,
            ``consistency_proof``, ``entries`` and ``public_key``).
        entry_inspector: optional callable applied to every new entry; it may
            return an alert string to flag the entry (e.g. "release not
            announced by the developer").
    """

    def __init__(self, log: CtLog, entry_inspector: Callable[[bytes], str | None] | None = None):
        self.log = log
        self.entry_inspector = entry_inspector
        self.last_head: SignedTreeHead | None = None
        self.alerts: list[MonitorAlert] = []
        self.entries_seen = 0

    def poll(self) -> list[MonitorAlert]:
        """Fetch the current tree head, verify it, and inspect new entries.

        Returns the alerts raised by this poll (also appended to
        :attr:`alerts`).
        """
        new_alerts: list[MonitorAlert] = []
        head = self.log.signed_tree_head()
        if not head.verify(self.log.public_key):
            new_alerts.append(MonitorAlert("bad-signature", "tree head signature invalid",
                                           head.tree_size))
            self.alerts.extend(new_alerts)
            return new_alerts

        if self.last_head is not None:
            if head.tree_size < self.last_head.tree_size:
                new_alerts.append(MonitorAlert(
                    "truncation", "log shrank between polls", head.tree_size
                ))
            else:
                proof = self.log.consistency_proof(self.last_head.tree_size, head.tree_size)
                if not proof.verify(self.last_head.root_hash, head.root_hash):
                    new_alerts.append(MonitorAlert(
                        "inconsistency", "consistency proof failed between polls", head.tree_size
                    ))

        if not new_alerts:
            new_entries = self.log.entries()[self.entries_seen:head.tree_size]
            for offset, entry in enumerate(new_entries):
                if self.entry_inspector is not None:
                    verdict = self.entry_inspector(entry)
                    if verdict:
                        new_alerts.append(MonitorAlert(
                            "suspicious-entry", verdict, self.entries_seen + offset + 1
                        ))
            self.entries_seen = head.tree_size
            self.last_head = head

        self.alerts.extend(new_alerts)
        return new_alerts

    @property
    def healthy(self) -> bool:
        """True when no alert has ever been raised."""
        return not self.alerts
