"""A standalone auditor that verifies epoch bundles from the artifact alone.

The auditor is its own trust domain: it pins two public keys (the
coordinator's bundle-signing key and the epoch log's tree-head key) and takes
exactly one untrusted input, an :class:`~repro.transparency.epochs.
EpochArtifact`. It never talks to the coordinator to decide whether an epoch
is honest — everything it concludes follows from the artifact.

The :class:`VerificationReport` keeps a strict split between what the
artifact *proves* and what it merely *advises*:

proved  — ``signature-chain``: the bundle is signed by the pinned coordinator
          key and the tree head by the pinned log key;
          ``log-inclusion``: the signed bundle is a leaf of the log the tree
          head commits to;
          ``ring-transition``: both rings reconstruct from the bundle's
          deterministic parameters and every moved key lands on exactly the
          shard the new ring assigns it;
          ``digest-conservation``: each migration's Merkle root recomputes
          from its moved-key set, no key moves twice or is simultaneously
          pinned, and the per-pair counts sum to the claimed total;
          ``attestation-measurements``: every attached shard reports the
          independently computable framework measurement;
          ``spare-pool-delta``: shards provisioned/retired/draining are
          exactly the spec-derived names the transition implies.
advised — ``timing`` (the claimed duration is plausible) and
          ``operator-intent`` (the declared kind matches the transition's
          direction): believable, useful, but not provable from the artifact.

A forged epoch fails a *proved* check by name; advisory checks never reject.

Scaling: :meth:`AuditorService.checkpoint` signs an audit-once statement per
signed tree head, so clients verify one signature instead of re-verifying
every bundle; :func:`verify_checkpoint` is the O(1) client side, and batched
inclusion proofs (:meth:`CtLog.batch_inclusion_proof`) cover all of a
checkpoint's leaves at once. :meth:`AuditorService.gossip` feeds observed
tree heads into a :class:`~repro.transparency.gossip.GossipPool` so a log
that equivocates between the auditor and its clients yields split-view
evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import EpochBundleError
from repro.transparency.epochs import EpochArtifact, EpochBundle
from repro.wire.codec import encode

__all__ = ["CheckResult", "VerificationReport", "AuditCheckpoint",
           "AuditorService", "verify_checkpoint"]

# Cost accounting units for the audit benchmark: one unit per primitive
# verification operation (a signature check or a Merkle node hash). The point
# is not cycle accuracy but a deterministic, implementation-independent count
# that lets CI assert checkpointed audit cost grows sublinearly in clients.
SIGNATURE_COST = 1


@dataclass(frozen=True)
class CheckResult:
    """One named verification step: what it concluded and on what authority."""

    name: str
    kind: str  # "proved" | "advised"
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "ok": self.ok,
                "detail": self.detail}


@dataclass
class VerificationReport:
    """The auditor's structured verdict on one epoch artifact.

    ``ok`` follows the proved checks only: an advisory that looks odd is
    surfaced but can never reject an epoch, because the artifact cannot prove
    it either way.
    """

    service: str
    epoch: int
    kind: str
    leaf_index: int
    checks: list = field(default_factory=list)
    cost_units: int = 0

    @property
    def ok(self) -> bool:
        """Whether every *proved* check passed."""
        return all(check.ok for check in self.checks if check.kind == "proved")

    def failing(self) -> list:
        """Names of the proved checks that failed (what rejected the epoch)."""
        return [check.name for check in self.checks
                if check.kind == "proved" and not check.ok]

    def advisories(self) -> list:
        """Names of advisory checks that looked off (never grounds to reject)."""
        return [check.name for check in self.checks
                if check.kind == "advised" and not check.ok]

    def to_dict(self) -> dict:
        """JSON-safe form for report artifacts."""
        return {
            "service": self.service,
            "epoch": self.epoch,
            "kind": self.kind,
            "leaf_index": self.leaf_index,
            "ok": self.ok,
            "failing": self.failing(),
            "advisories": self.advisories(),
            "cost_units": self.cost_units,
            "checks": [check.to_dict() for check in self.checks],
        }

    def format(self) -> str:
        """A deterministic text summary (one line per check)."""
        lines = [f"epoch {self.epoch} ({self.kind}) of {self.service}: "
                 f"{'VERIFIED' if self.ok else 'REJECTED'}"]
        for check in self.checks:
            mark = "ok " if check.ok else "FAIL"
            lines.append(f"  [{mark}] {check.kind:7s} {check.name}"
                         + (f" — {check.detail}" if check.detail else ""))
        return "\n".join(lines)


@dataclass(frozen=True)
class AuditCheckpoint:
    """An audit-once statement: "I verified these epochs under this head."

    Signed by the auditor. A client holding the auditor's public key verifies
    this one signature instead of re-running bundle verification — O(1) work
    per epoch no matter how many clients share the checkpoint.
    """

    auditor: str
    log_id: str
    tree_size: int
    root_hash: bytes
    epochs: tuple[int, ...]
    leaf_indices: tuple[int, ...]
    all_ok: bool
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        """Canonical bytes the auditor signs."""
        return encode({
            "auditor": self.auditor,
            "log_id": self.log_id,
            "tree_size": self.tree_size,
            "root_hash": self.root_hash,
            "epochs": list(self.epochs),
            "leaf_indices": list(self.leaf_indices),
            "all_ok": self.all_ok,
        })

    def verify(self, auditor_key: VerifyingKey) -> bool:
        """Check the auditor's signature over this statement."""
        try:
            return auditor_key.verify(self.signed_payload(), self.signature)
        except Exception:
            return False

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "auditor": self.auditor,
            "log_id": self.log_id,
            "tree_size": self.tree_size,
            "root_hash": self.root_hash.hex(),
            "epochs": list(self.epochs),
            "leaf_indices": list(self.leaf_indices),
            "all_ok": self.all_ok,
            "signature": self.signature.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AuditCheckpoint":
        """Rebuild a checkpoint from untrusted :meth:`to_dict` output."""
        try:
            return cls(
                auditor=str(data["auditor"]),
                log_id=str(data["log_id"]),
                tree_size=int(data["tree_size"]),
                root_hash=bytes.fromhex(data["root_hash"]),
                epochs=tuple(int(e) for e in data["epochs"]),
                leaf_indices=tuple(int(i) for i in data["leaf_indices"]),
                all_ok=bool(data["all_ok"]),
                signature=bytes.fromhex(data["signature"]),
            )
        except Exception as exc:
            raise EpochBundleError(f"malformed audit checkpoint: {exc}") from exc


def verify_checkpoint(checkpoint: AuditCheckpoint,
                      auditor_key: VerifyingKey) -> bool:
    """The O(1) client side of audit-once: one signature check per epoch set."""
    return checkpoint.verify(auditor_key)


class AuditorService:
    """Verifies epoch artifacts against two pinned public keys, nothing else."""

    def __init__(self, coordinator_key: VerifyingKey, log_key: VerifyingKey,
                 name: str = "auditor", signing_key: SigningKey | None = None):
        self.name = name
        self.coordinator_key = coordinator_key
        self.log_key = log_key
        self.signing_key = signing_key or SigningKey.from_seed(
            b"repro/epoch-auditor/" + name.encode("utf-8"))
        self.reports: list[VerificationReport] = []
        self._verified: list[tuple[EpochArtifact, VerificationReport]] = []

    @property
    def public_key(self) -> VerifyingKey:
        """The key clients pin to verify this auditor's checkpoints."""
        return self.signing_key.verifying_key()

    # ------------------------------------------------------------------
    # Bundle verification (the expensive, audit-once path)
    # ------------------------------------------------------------------
    def verify(self, artifact) -> VerificationReport:
        """Verify one untrusted artifact (an :class:`EpochArtifact` or its dict).

        Never raises on bad input: a structurally malformed artifact comes
        back as a report whose single proved check (``artifact-parse``)
        failed, so callers handle honest and hostile inputs identically.
        """
        if not isinstance(artifact, EpochArtifact):
            try:
                artifact = EpochArtifact.from_dict(artifact)
            except EpochBundleError as exc:
                report = VerificationReport(service="?", epoch=-1, kind="?",
                                            leaf_index=-1)
                report.checks.append(CheckResult(
                    "artifact-parse", "proved", False, str(exc)))
                self.reports.append(report)
                return report
        bundle = artifact.bundle
        report = VerificationReport(service=bundle.service, epoch=bundle.epoch,
                                    kind=bundle.kind,
                                    leaf_index=artifact.leaf_index)
        self._check_signature_chain(artifact, report)
        self._check_log_inclusion(artifact, report)
        self._check_ring_transition(bundle, report)
        self._check_digest_conservation(bundle, report)
        self._check_attestation_measurements(bundle, report)
        self._check_spare_pool_delta(bundle, report)
        self._advise_timing(bundle, report)
        self._advise_operator_intent(bundle, report)
        self.reports.append(report)
        if report.ok:
            self._verified.append((artifact, report))
        return report

    def _check_signature_chain(self, artifact: EpochArtifact,
                               report: VerificationReport) -> None:
        bundle = artifact.bundle
        try:
            bundle_ok = self.coordinator_key.verify(bundle.signed_payload(),
                                                    bundle.signature)
        except Exception:
            bundle_ok = False
        try:
            head_ok = artifact.head.verify(self.log_key)
        except Exception:
            head_ok = False
        report.cost_units += 2 * SIGNATURE_COST
        detail = []
        if not bundle_ok:
            detail.append("bundle signature invalid under the pinned coordinator key")
        if not head_ok:
            detail.append("tree head signature invalid under the pinned log key")
        report.checks.append(CheckResult(
            "signature-chain", "proved", bundle_ok and head_ok,
            "; ".join(detail) or "coordinator and log signatures verify"))

    def _check_log_inclusion(self, artifact: EpochArtifact,
                             report: VerificationReport) -> None:
        proof, head = artifact.proof, artifact.head
        ok = (proof.leaf_index == artifact.leaf_index
              and proof.tree_size == head.tree_size
              and proof.verify(artifact.bundle.canonical_bytes(),
                               head.root_hash))
        report.cost_units += len(proof.audit_path) + 1
        report.checks.append(CheckResult(
            "log-inclusion", "proved", ok,
            f"leaf {artifact.leaf_index} of {head.tree_size}" if ok
            else "inclusion proof does not bind the bundle to the tree head"))

    def _check_ring_transition(self, bundle: EpochBundle,
                               report: VerificationReport) -> None:
        from repro.service.ring import HashRing

        problems = []
        if bundle.old_shard_count < 1 or bundle.ring_shard_count < 1:
            problems.append("shard counts must be positive")
        if bundle.ring_vnodes < 1:
            problems.append("ring vnodes must be positive")
        if bundle.kind == "reshard" and bundle.ring_shard_count == bundle.old_shard_count:
            problems.append("a reshard must change the ring width")
        if not problems:
            new_ring = HashRing(bundle.ring_shard_count,
                                vnodes=bundle.ring_vnodes,
                                salt=bundle.ring_salt)
            shard_total = len(bundle.measurements)
            for migration in bundle.migrations:
                if not 0 <= migration.source < bundle.old_shard_count:
                    problems.append(
                        f"migration source {migration.source} is not an "
                        f"old-epoch shard")
                if not 0 <= migration.target < bundle.ring_shard_count:
                    problems.append(
                        f"migration target {migration.target} is off the "
                        f"committed ring")
                    continue
                misrouted = sum(1 for key in migration.keys
                                if new_ring.shard_for(key) != migration.target)
                if misrouted:
                    problems.append(
                        f"{misrouted} keys in {migration.source}->"
                        f"{migration.target} do not belong to shard "
                        f"{migration.target} under the committed ring")
            for key, holder in bundle.pinned:
                if not 0 <= holder < max(shard_total, bundle.old_shard_count):
                    problems.append(
                        f"pinned key {key.hex()[:12]} names holder {holder} "
                        f"beyond the attached shards")
        report.checks.append(CheckResult(
            "ring-transition", "proved", not problems,
            "; ".join(problems) or
            f"ring {bundle.old_shard_count} -> {bundle.ring_shard_count} "
            f"reconstructs; every moved key routes to its digest's target"))

    def _check_digest_conservation(self, bundle: EpochBundle,
                                   report: VerificationReport) -> None:
        problems = []
        seen: set = set()
        total = 0
        for migration in bundle.migrations:
            # Recomputing the root costs one leaf hash per key plus the
            # interior nodes (at most key_count - 1): ~2n hash units.
            report.cost_units += 2 * max(1, len(migration.keys))
            if migration.key_count != len(migration.keys):
                problems.append(
                    f"{migration.source}->{migration.target} claims "
                    f"{migration.key_count} keys but carries "
                    f"{len(migration.keys)}")
            if list(migration.keys) != sorted(set(migration.keys)):
                problems.append(
                    f"{migration.source}->{migration.target} key set is not "
                    f"sorted and unique")
            overlap = seen.intersection(migration.keys)
            if overlap:
                problems.append(
                    f"{len(overlap)} keys appear in more than one migration")
            seen.update(migration.keys)
            if migration.recomputed_root() != migration.root:
                problems.append(
                    f"{migration.source}->{migration.target} Merkle root "
                    f"does not recompute from its key set")
            total += len(migration.keys)
        if total != bundle.migrated_keys:
            problems.append(
                f"bundle claims {bundle.migrated_keys} migrated keys; "
                f"digests carry {total}")
        pinned_keys = {key for key, _ in bundle.pinned}
        conflicted = pinned_keys.intersection(seen)
        if conflicted:
            problems.append(
                f"{len(conflicted)} keys are both migrated and pinned")
        report.checks.append(CheckResult(
            "digest-conservation", "proved", not problems,
            "; ".join(problems) or
            f"{total} moved keys conserve across {len(bundle.migrations)} "
            f"digests; moved and pinned sets are disjoint"))

    def _check_attestation_measurements(self, bundle: EpochBundle,
                                        report: VerificationReport) -> None:
        from repro.core.trust_domain import expected_framework_measurement

        expected = expected_framework_measurement().digest
        problems = []
        if len(bundle.measurements) < bundle.ring_shard_count:
            problems.append(
                f"only {len(bundle.measurements)} shards report measurements "
                f"for a {bundle.ring_shard_count}-wide ring")
        for shard, digests in bundle.measurements:
            if not digests:
                problems.append(f"shard {shard} reports no enclave measurements")
                continue
            rogue = sum(1 for digest in digests if digest != expected)
            if rogue:
                problems.append(
                    f"shard {shard} reports {rogue} measurements that are not "
                    f"the published framework measurement")
        report.checks.append(CheckResult(
            "attestation-measurements", "proved", not problems,
            "; ".join(problems) or
            f"all {len(bundle.measurements)} shards attest the independently "
            f"computed framework measurement"))

    def _check_spare_pool_delta(self, bundle: EpochBundle,
                                report: VerificationReport) -> None:
        problems = []
        provisioned = set(bundle.provisioned)
        retired = set(bundle.retired)
        draining = set(bundle.draining)
        if retired & draining:
            problems.append("shards listed both retired and draining")
        if provisioned & (retired | draining):
            problems.append("shards listed both provisioned and retiring")
        growing = bundle.ring_shard_count > bundle.old_shard_count
        expected_new = {f"{bundle.service}-s{i}"
                        for i in range(bundle.old_shard_count,
                                       bundle.ring_shard_count)}
        expected_retiring = {f"{bundle.service}-s{i}"
                             for i in range(bundle.ring_shard_count,
                                            bundle.old_shard_count)}
        if bundle.kind == "reshard" and growing:
            if provisioned != expected_new:
                problems.append(
                    f"provisioned shards {sorted(provisioned)} are not the "
                    f"spec-derived names {sorted(expected_new)}")
            if retired or draining:
                problems.append("a grow retires no shards")
        elif bundle.kind == "reshard":
            if provisioned:
                problems.append("a shrink provisions no shards")
            if retired | draining != expected_retiring:
                problems.append(
                    f"retired+draining {sorted(retired | draining)} do not "
                    f"cover the retiring shards {sorted(expected_retiring)}")
        else:  # drain: retiring shards may detach, nothing may be provisioned
            if provisioned:
                problems.append("a drain provisions no shards")
            if not (retired | draining) <= expected_retiring:
                problems.append(
                    "a drain can only retire shards beyond the ring width")
        report.checks.append(CheckResult(
            "spare-pool-delta", "proved", not problems,
            "; ".join(problems) or
            f"+{len(provisioned)} provisioned / -{len(retired)} retired / "
            f"{len(draining)} draining match the transition"))

    def _advise_timing(self, bundle: EpochBundle,
                       report: VerificationReport) -> None:
        plausible = 0 <= bundle.sim_time_us <= 3_600_000_000
        report.checks.append(CheckResult(
            "timing", "advised", plausible,
            f"transition claims {bundle.sim_time_us} us of simulated time "
            f"({'plausible' if plausible else 'implausible'} — "
            f"unverifiable from the artifact)"))

    def _advise_operator_intent(self, bundle: EpochBundle,
                                report: VerificationReport) -> None:
        if bundle.kind == "reshard":
            direction = ("grow" if bundle.ring_shard_count > bundle.old_shard_count
                         else "shrink")
            detail = (f"operator declared a reshard; width moved "
                      f"{bundle.old_shard_count} -> {bundle.ring_shard_count} "
                      f"({direction}) — intent itself is taken on faith")
            ok = True
        elif bundle.kind == "drain":
            detail = ("operator declared a drain of a previously faulted "
                      "epoch — intent itself is taken on faith")
            ok = True
        else:
            detail = f"unknown transition kind {bundle.kind!r}"
            ok = False
        report.checks.append(CheckResult("operator-intent", "advised", ok, detail))

    # ------------------------------------------------------------------
    # Scaling: checkpoints (audit-once) and gossip
    # ------------------------------------------------------------------
    def checkpoint(self) -> AuditCheckpoint:
        """Sign an audit-once statement over everything verified so far.

        The statement binds the newest verified tree head to the ordered set
        of (epoch, leaf index) pairs that verified under it.

        Raises:
            EpochBundleError: nothing has been verified yet.
        """
        if not self._verified:
            raise EpochBundleError("no verified epochs to checkpoint")
        latest = max((artifact for artifact, _ in self._verified),
                     key=lambda artifact: artifact.head.tree_size)
        covered = [(artifact, report) for artifact, report in self._verified
                   if artifact.leaf_index < latest.head.tree_size]
        checkpoint = AuditCheckpoint(
            auditor=self.name,
            log_id=latest.head.log_id,
            tree_size=latest.head.tree_size,
            root_hash=latest.head.root_hash,
            epochs=tuple(report.epoch for _, report in covered),
            leaf_indices=tuple(artifact.leaf_index for artifact, _ in covered),
            all_ok=all(report.ok for _, report in covered),
        )
        signature = self.signing_key.sign(checkpoint.signed_payload())
        return replace(checkpoint, signature=signature)

    def gossip(self, pool, observer: str | None = None) -> list:
        """Submit every verified tree head to a gossip pool.

        Returns whatever split-view evidence the pool produced — a log that
        shows the auditor a different history than it shows clients is caught
        here even though each individual artifact verified.
        """
        evidence = []
        for artifact, _ in self._verified:
            evidence.extend(pool.submit(observer or self.name, artifact.head))
        return evidence
