"""Append-only transparency logs.

The paper's second building block is "an append-only log" of code digests
(§3.1, §4.1): each TEE keeps a hash chain of every code version it has run so
that a malicious developer cannot erase evidence of malicious code, and
clients/auditors query all trust domains and compare. The paper also points at
the deployed certificate-transparency ecosystem as infrastructure a deployment
can lean on.

This package provides both layers:

* :mod:`repro.transparency.log` — the per-TEE digest log (hash chain with
  structured entries), exactly what the framework maintains inside each
  enclave;
* :mod:`repro.transparency.ct_log` — a CT-style Merkle-tree log with signed
  tree heads, inclusion proofs, and consistency proofs, playing the role of
  the public log a developer additionally publishes releases to;
* :mod:`repro.transparency.gossip` — cross-domain and cross-client gossip to
  detect split views (equivocation);
* :mod:`repro.transparency.monitor` — a long-running monitor that audits a
  CT-style log as it grows;
* :mod:`repro.transparency.epochs` — signed, self-contained transparency
  bundles for reshard epochs, appended to a dedicated CT-style log;
* :mod:`repro.transparency.auditor` — a standalone auditor that verifies an
  epoch bundle from the artifact alone, plus audit-once checkpoints so
  per-client audit cost stays sublinear in users.
"""

from repro.transparency.log import DigestLog, DigestLogEntry
from repro.transparency.ct_log import CtLog, SignedTreeHead
from repro.transparency.gossip import GossipPool, SplitViewEvidence, check_views_consistent
from repro.transparency.monitor import LogMonitor, MonitorAlert
from repro.transparency.epochs import (
    EpochArtifact,
    EpochBundle,
    EpochPublisher,
    MigrationDigest,
    forge_migration_digest,
)
from repro.transparency.auditor import (
    AuditCheckpoint,
    AuditorService,
    CheckResult,
    VerificationReport,
    verify_checkpoint,
)

__all__ = [
    "DigestLog",
    "DigestLogEntry",
    "CtLog",
    "SignedTreeHead",
    "GossipPool",
    "SplitViewEvidence",
    "check_views_consistent",
    "LogMonitor",
    "MonitorAlert",
    "EpochArtifact",
    "EpochBundle",
    "EpochPublisher",
    "MigrationDigest",
    "forge_migration_digest",
    "AuditCheckpoint",
    "AuditorService",
    "CheckResult",
    "VerificationReport",
    "verify_checkpoint",
]
