"""The per-TEE digest log.

Every trust domain's framework instance appends one entry per code version it
has ever run (the initial application plus every accepted update). Entries are
linked in a hash chain, so the digest history a domain reports to a client is
tamper-evident: rewriting or dropping an old entry changes every later head.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashchain import ChainEntry, HashChain
from repro.errors import LogError
from repro.wire.codec import canonical_digest, decode, encode

__all__ = ["DigestLogEntry", "DigestLog"]


@dataclass(frozen=True)
class DigestLogEntry:
    """One code-version record in a trust domain's digest log.

    Timestamps are stored as integer microseconds (``timestamp_us``) so that
    the hash-chained payload is exactly reproducible by verifiers; the float
    :attr:`timestamp` view is derived for convenience.
    """

    sequence: int
    code_digest: bytes
    version: str
    timestamp_us: int
    chain_head: bytes

    @property
    def timestamp(self) -> float:
        """The entry's timestamp in seconds."""
        return self.timestamp_us / 1_000_000

    def to_dict(self) -> dict:
        """Plain-data form served to auditing clients."""
        return {
            "sequence": self.sequence,
            "code_digest": self.code_digest,
            "version": self.version,
            "timestamp_us": self.timestamp_us,
            "chain_head": self.chain_head,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DigestLogEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        return cls(
            sequence=int(data["sequence"]),
            code_digest=bytes(data["code_digest"]),
            version=str(data["version"]),
            timestamp_us=int(data["timestamp_us"]),
            chain_head=bytes(data["chain_head"]),
        )


class DigestLog:
    """An append-only log of code digests backed by a hash chain."""

    def __init__(self, domain_id: str):
        self.domain_id = domain_id
        self._chain = HashChain()
        self._entries: list[DigestLogEntry] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, code_digest: bytes, version: str, timestamp: float) -> DigestLogEntry:
        """Record that this domain switched to code with ``code_digest``."""
        timestamp_us = int(round(timestamp * 1_000_000))
        payload = encode({
            "code_digest": bytes(code_digest),
            "version": version,
            "timestamp_us": timestamp_us,
        })
        chain_entry = self._chain.append(payload)
        entry = DigestLogEntry(
            sequence=chain_entry.index,
            code_digest=bytes(code_digest),
            version=version,
            timestamp_us=timestamp_us,
            chain_head=chain_entry.head,
        )
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Queries (what the framework serves to clients)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def head(self) -> bytes:
        """The current chain head, included in attestation user data."""
        return self._chain.head()

    def latest(self) -> DigestLogEntry:
        """The most recent entry; raises :class:`LogError` when empty."""
        if not self._entries:
            raise LogError(f"digest log for {self.domain_id} is empty")
        return self._entries[-1]

    def entries(self, start: int = 0) -> list[DigestLogEntry]:
        """Entries from ``start`` onward (all by default)."""
        if start < 0 or start > len(self._entries):
            raise LogError("invalid digest log range")
        return list(self._entries[start:])

    def chain_entries(self) -> list[ChainEntry]:
        """The raw hash-chain entries (what clients verify)."""
        return self._chain.entries()

    def export(self) -> list[dict]:
        """Serializable view of the whole log for RPC responses."""
        return [entry.to_dict() for entry in self._entries]

    def digest_history(self) -> list[bytes]:
        """Just the code digests, oldest first."""
        return [entry.code_digest for entry in self._entries]

    # ------------------------------------------------------------------
    # Client-side verification
    # ------------------------------------------------------------------
    @staticmethod
    def verify_export(exported: list[dict], expected_head: bytes) -> list[DigestLogEntry]:
        """Verify a log exported by a (possibly lying) trust domain.

        Rebuilds the hash chain from the exported entries and checks that the
        resulting head equals ``expected_head`` (the head the TEE attested to).
        Returns the parsed entries on success.

        Raises:
            LogError: the export is internally inconsistent or does not match
                the attested head.
        """
        entries = [DigestLogEntry.from_dict(item) for item in exported]
        chain = HashChain()
        for index, entry in enumerate(entries):
            if entry.sequence != index:
                raise LogError(f"digest log entries out of order at {index}")
            payload = encode({
                "code_digest": entry.code_digest,
                "version": entry.version,
                "timestamp_us": entry.timestamp_us,
            })
            chain_entry = chain.append(payload)
            if chain_entry.head != entry.chain_head:
                raise LogError(f"digest log entry {index} has an inconsistent chain head")
        if chain.head() != expected_head:
            raise LogError("digest log does not match the attested head")
        return entries

    @staticmethod
    def views_consistent(first: list[dict], second: list[dict]) -> bool:
        """Whether two exported views describe the same code history.

        Trust domains install the same releases at (slightly) different times
        and therefore have different chain heads; what must agree is the
        *code history*: the sequence of (sequence number, code digest, version)
        triples, with one view allowed to be a prefix of the other.
        """
        def history(view: list[dict]) -> list[tuple]:
            return [
                (int(item["sequence"]), bytes(item["code_digest"]), str(item["version"]))
                for item in view
            ]

        first_history, second_history = history(first), history(second)
        shorter, longer = sorted((first_history, second_history), key=len)
        return longer[: len(shorter)] == shorter
