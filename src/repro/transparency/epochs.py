"""Epoch transparency bundles: signed, self-contained reshard evidence.

The paper's core claim is that clients need not trust the operator because
every trust-domain action leaves publicly verifiable evidence — yet a reshard
epoch is the most security-critical control-plane action and, until this
module, it committed without an artifact an outsider could check. An
:class:`EpochBundle` closes that gap: every committed epoch transition (grow,
shrink, or drain) is summarized as one canonical structure —

* the ring transition (old/new shard counts plus the deterministic ring
  parameters, so a verifier reconstructs both rings from scratch),
* per-(source → target) migrator digests: the moved key set and an RFC 6962
  Merkle root over it,
* the pinned/stale key sets the epoch left behind,
* the per-shard attestation measurement set,
* the spare-pool delta (shards provisioned, retired, and still draining),

— signed by the coordinator and appended as a leaf to a dedicated CT-style
:class:`~repro.transparency.ct_log.CtLog`. The :class:`EpochArtifact` pairs
the bundle with its inclusion proof and the signed tree head, so the whole
object is *self-contained*: :class:`repro.transparency.auditor.AuditorService`
verifies it with no channel to (and no trust in) the coordinator that
produced it.

Everything inside the signature is integers, strings, and bytes — the
canonical codec rejects floats, which is exactly what keeps the signed payload
replayable bit-for-bit (simulated time travels as integer microseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.hashes import sha256
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.crypto.merkle import InclusionProof, MerkleTree
from repro.errors import EpochBundleError
from repro.transparency.ct_log import CtLog, SignedTreeHead
from repro.wire.codec import encode

__all__ = ["MigrationDigest", "EpochBundle", "EpochArtifact", "EpochPublisher",
           "forge_migration_digest"]


def _canonical_key(key) -> bytes:
    """Canonical byte form of a routing key (matches the ring's hashing)."""
    from repro.service.ring import HashRing

    return HashRing._key_bytes(key)


@dataclass(frozen=True)
class MigrationDigest:
    """One source → target migration batch, committed to a Merkle root.

    ``keys`` are the canonical byte forms of every key that actually moved,
    sorted; ``root`` is the RFC 6962 Merkle root over them in that order. The
    keys ride along in the artifact so a verifier *recomputes* the root
    instead of taking it on faith — a coordinator that rewrites the root
    without the matching key set is caught by recomputation.
    """

    source: int
    target: int
    root: bytes
    key_count: int
    keys: tuple[bytes, ...]

    @staticmethod
    def over(source: int, target: int, keys) -> "MigrationDigest":
        """Build a digest over ``keys`` (any routing-key type), canonicalized."""
        canonical = tuple(sorted(_canonical_key(key) for key in keys))
        return MigrationDigest(source, target, MerkleTree(list(canonical)).root(),
                               len(canonical), canonical)

    def recomputed_root(self) -> bytes:
        """The Merkle root implied by the included key set."""
        return MerkleTree(list(self.keys)).root()


@dataclass(frozen=True)
class EpochBundle:
    """Self-contained evidence for one committed epoch transition.

    ``kind`` is ``"reshard"`` for a grow/shrink commit and ``"drain"`` for a
    ``finish_reshard`` pass (which moves pinned keys without changing the
    ring). ``ring_shard_count`` is the committed ring width; it differs from
    ``new_shard_count`` only while retiring shards are still attached and
    draining.
    """

    service: str
    kind: str
    epoch: int
    old_shard_count: int
    new_shard_count: int
    ring_shard_count: int
    ring_vnodes: int
    ring_salt: bytes
    migrations: tuple[MigrationDigest, ...]
    pinned: tuple[tuple[bytes, int], ...]  # (canonical key, holder shard index)
    stale: tuple[bytes, ...]  # moved keys whose source cleanup is pending
    measurements: tuple[tuple[str, tuple[bytes, ...]], ...]  # (shard, digests)
    provisioned: tuple[str, ...]
    retired: tuple[str, ...]
    draining: tuple[str, ...]
    migrated_keys: int
    records_moved: int
    sim_time_us: int
    signature: bytes = b""

    def _core(self) -> dict:
        """The signed content: everything except the signature itself."""
        return {
            "service": self.service,
            "kind": self.kind,
            "epoch": self.epoch,
            "old_shard_count": self.old_shard_count,
            "new_shard_count": self.new_shard_count,
            "ring_shard_count": self.ring_shard_count,
            "ring_vnodes": self.ring_vnodes,
            "ring_salt": self.ring_salt,
            "migrations": [
                {"source": m.source, "target": m.target, "root": m.root,
                 "key_count": m.key_count, "keys": list(m.keys)}
                for m in self.migrations
            ],
            "pinned": [[key, holder] for key, holder in self.pinned],
            "stale": list(self.stale),
            "measurements": [[shard, list(digests)]
                             for shard, digests in self.measurements],
            "provisioned": list(self.provisioned),
            "retired": list(self.retired),
            "draining": list(self.draining),
            "migrated_keys": self.migrated_keys,
            "records_moved": self.records_moved,
            "sim_time_us": self.sim_time_us,
        }

    def signed_payload(self) -> bytes:
        """Canonical bytes the coordinator signs."""
        return encode(self._core())

    def canonical_bytes(self) -> bytes:
        """Canonical bytes of the *signed* bundle — the log leaf."""
        return encode({**self._core(), "signature": self.signature})

    def to_dict(self) -> dict:
        """JSON-safe representation (bytes hex-encoded)."""
        return {
            "service": self.service,
            "kind": self.kind,
            "epoch": self.epoch,
            "old_shard_count": self.old_shard_count,
            "new_shard_count": self.new_shard_count,
            "ring_shard_count": self.ring_shard_count,
            "ring_vnodes": self.ring_vnodes,
            "ring_salt": self.ring_salt.hex(),
            "migrations": [
                {"source": m.source, "target": m.target, "root": m.root.hex(),
                 "key_count": m.key_count, "keys": [k.hex() for k in m.keys]}
                for m in self.migrations
            ],
            "pinned": [[key.hex(), holder] for key, holder in self.pinned],
            "stale": [key.hex() for key in self.stale],
            "measurements": [[shard, [d.hex() for d in digests]]
                             for shard, digests in self.measurements],
            "provisioned": list(self.provisioned),
            "retired": list(self.retired),
            "draining": list(self.draining),
            "migrated_keys": self.migrated_keys,
            "records_moved": self.records_moved,
            "sim_time_us": self.sim_time_us,
            "signature": self.signature.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochBundle":
        """Rebuild a bundle from untrusted :meth:`to_dict` output.

        Raises:
            EpochBundleError: the structure is malformed (missing fields, bad
                hex, wrong types). Content that is well-formed but *wrong* is
                the auditor's job, not the parser's.
        """
        try:
            return cls(
                service=str(data["service"]),
                kind=str(data["kind"]),
                epoch=int(data["epoch"]),
                old_shard_count=int(data["old_shard_count"]),
                new_shard_count=int(data["new_shard_count"]),
                ring_shard_count=int(data["ring_shard_count"]),
                ring_vnodes=int(data["ring_vnodes"]),
                ring_salt=bytes.fromhex(data["ring_salt"]),
                migrations=tuple(
                    MigrationDigest(
                        source=int(m["source"]), target=int(m["target"]),
                        root=bytes.fromhex(m["root"]),
                        key_count=int(m["key_count"]),
                        keys=tuple(bytes.fromhex(k) for k in m["keys"]),
                    )
                    for m in data["migrations"]
                ),
                pinned=tuple((bytes.fromhex(key), int(holder))
                             for key, holder in data["pinned"]),
                stale=tuple(bytes.fromhex(key) for key in data["stale"]),
                measurements=tuple(
                    (str(shard), tuple(bytes.fromhex(d) for d in digests))
                    for shard, digests in data["measurements"]
                ),
                provisioned=tuple(str(n) for n in data["provisioned"]),
                retired=tuple(str(n) for n in data["retired"]),
                draining=tuple(str(n) for n in data["draining"]),
                migrated_keys=int(data["migrated_keys"]),
                records_moved=int(data["records_moved"]),
                sim_time_us=int(data["sim_time_us"]),
                signature=bytes.fromhex(data["signature"]),
            )
        except EpochBundleError:
            raise
        except Exception as exc:
            raise EpochBundleError(f"malformed epoch bundle: {exc}") from exc


@dataclass(frozen=True)
class EpochArtifact:
    """An epoch bundle plus its transparency-log evidence.

    This is the single untrusted input an auditor verifies: the bundle, the
    leaf's inclusion proof, and the signed tree head it proves into. Nothing
    here requires a channel back to the coordinator.
    """

    bundle: EpochBundle
    leaf_index: int
    proof: InclusionProof
    head: SignedTreeHead

    def to_dict(self) -> dict:
        """JSON-safe representation for wire transfer and report artifacts."""
        return {
            "bundle": self.bundle.to_dict(),
            "leaf_index": self.leaf_index,
            "proof": self.proof.to_dict(),
            # SignedTreeHead.to_dict keeps raw bytes (for the wire codec);
            # hex-encode here so the artifact survives JSON round trips.
            "head": {
                "log_id": self.head.log_id,
                "tree_size": self.head.tree_size,
                "root_hash": self.head.root_hash.hex(),
                "timestamp_us": self.head.timestamp_us,
                "signature": self.head.signature.hex(),
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochArtifact":
        """Rebuild an artifact from untrusted :meth:`to_dict` output."""
        try:
            head = data["head"]
            return cls(
                bundle=EpochBundle.from_dict(data["bundle"]),
                leaf_index=int(data["leaf_index"]),
                proof=InclusionProof.from_dict(data["proof"]),
                head=SignedTreeHead(
                    log_id=str(head["log_id"]),
                    tree_size=int(head["tree_size"]),
                    root_hash=bytes.fromhex(head["root_hash"]),
                    timestamp_us=int(head["timestamp_us"]),
                    signature=bytes.fromhex(head["signature"]),
                ),
            )
        except EpochBundleError:
            raise
        except Exception as exc:
            raise EpochBundleError(f"malformed epoch artifact: {exc}") from exc


class EpochPublisher:
    """Signs epoch bundles and appends them to a dedicated epoch log.

    Attach an instance to a :class:`~repro.service.sharded.ShardedService` as
    ``plane.epoch_publisher`` and the :class:`~repro.service.reshard.
    ReshardCoordinator` emits an artifact at every commit (and every drain
    pass). The epoch log is deliberately *not* a shard's release log: release
    logs hold update manifests and are watched by the update monitors; epochs
    get their own log identity and their own signing key.
    """

    def __init__(self, service: str, signing_key: SigningKey | None = None,
                 log: CtLog | None = None):
        self.service = service
        self.signing_key = signing_key or SigningKey.from_seed(
            b"repro/epoch-coordinator/" + service.encode("utf-8"))
        self.log = log or CtLog(f"{service}/epochs")
        self.artifacts: list[EpochArtifact] = []

    @property
    def coordinator_key(self) -> VerifyingKey:
        """The coordinator's bundle-signing public key (pin this)."""
        return self.signing_key.verifying_key()

    @property
    def log_key(self) -> VerifyingKey:
        """The epoch log's tree-head public key (pin this too)."""
        return self.log.public_key

    def publish(self, bundle: EpochBundle) -> EpochArtifact:
        """Sign ``bundle``, append it to the log, and assemble its artifact."""
        signed = replace(bundle,
                         signature=self.signing_key.sign(bundle.signed_payload()))
        leaf_index = self.log.append(signed.canonical_bytes())
        artifact = EpochArtifact(
            bundle=signed,
            leaf_index=leaf_index,
            proof=self.log.inclusion_proof(leaf_index),
            head=self.log.signed_tree_head(),
        )
        self.artifacts.append(artifact)
        return artifact

    def publish_epoch(self, plane, report, moves, moved_keys,
                      kind: str = "reshard") -> EpochArtifact:
        """Build and publish the bundle for a just-committed transition.

        Called by the coordinator *after* ``commit_epoch`` (or at the end of a
        drain pass), so the pinned/stale sets are read from the plane's
        authoritative post-commit state rather than re-derived.

        Args:
            plane: the :class:`ShardedService` that just committed.
            report: the transition's :class:`ReshardReport`.
            moves: the ``(source, target) -> [keys]`` migration plan.
            moved_keys: the set of keys that actually moved.
            kind: ``"reshard"`` or ``"drain"``.
        """
        migrations = []
        for (source, target), keys in sorted(moves.items()):
            done = [key for key in keys if key in moved_keys]
            if done:
                migrations.append(MigrationDigest.over(source, target, done))
        pinned = tuple(sorted(
            (_canonical_key(key), holder)
            for key, holder in plane.pending_migrations()))
        stale = tuple(sorted(
            _canonical_key(key) for key, _ in plane.pending_cleanups()))
        measurements = tuple(
            (shard.name, tuple(domain.enclave.measurement.digest
                               for domain in shard.domains
                               if domain.enclave is not None))
            for shard in plane.shards
        )
        bundle = EpochBundle(
            service=self.service,
            kind=kind,
            epoch=plane.epoch,
            old_shard_count=report.old_shard_count,
            new_shard_count=report.new_shard_count,
            ring_shard_count=plane.ring.shard_count,
            ring_vnodes=plane.ring.vnodes,
            ring_salt=plane.ring.salt,
            migrations=tuple(migrations),
            pinned=pinned,
            stale=stale,
            measurements=measurements,
            provisioned=tuple(report.provisioned),
            retired=tuple(report.retired),
            draining=tuple(report.draining),
            migrated_keys=report.migrated_keys,
            records_moved=report.records_moved,
            sim_time_us=int(round(report.sim_seconds * 1_000_000)),
        )
        return self.publish(bundle)


def forge_migration_digest(publisher: EpochPublisher) -> EpochArtifact:
    """Model a compromised coordinator rewriting a migrator digest.

    The attacker controls the coordinator, so the forged bundle carries a
    *valid* signature (the key is theirs to use) and a *valid* inclusion proof
    (they append to their own log). What they cannot do is make a rewritten
    Merkle root agree with the moved-key set the bundle itself must carry —
    digest conservation is exactly the check that catches this.

    Raises:
        EpochBundleError: there is no published epoch, or the latest epoch
            moved no keys (nothing whose digest could be rewritten).
    """
    if not publisher.artifacts:
        raise EpochBundleError("no published epoch to forge")
    base = publisher.artifacts[-1].bundle
    if not base.migrations:
        raise EpochBundleError("latest epoch moved no keys; no digest to forge")
    first = base.migrations[0]
    rewritten = replace(first, root=sha256(b"repro/forged-root", first.root))
    forged = replace(base, migrations=(rewritten,) + base.migrations[1:],
                     signature=b"")
    return publisher.publish(forged)
