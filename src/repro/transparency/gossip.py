"""Gossip-based split-view detection.

A log (or a trust domain) that wants to hide a malicious code version from a
particular client can try *equivocation*: showing that client one history and
everyone else another. The standard defence, inherited from certificate
transparency, is gossip — clients and auditors exchange the heads they have
seen and check pairwise consistency. Any inconsistent pair is itself
publicly verifiable evidence of misbehavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import VerifyingKey
from repro.errors import SplitViewError
from repro.transparency.ct_log import SignedTreeHead

__all__ = ["SplitViewEvidence", "GossipPool", "check_views_consistent"]


@dataclass(frozen=True)
class SplitViewEvidence:
    """Two signed tree heads that cannot both describe one append-only log.

    Because both heads carry valid signatures from the log key, the pair is a
    publicly verifiable proof of equivocation: anyone can re-run
    :meth:`verify` without trusting the party that assembled the evidence.
    """

    first: SignedTreeHead
    second: SignedTreeHead

    def verify(self, log_public_key: VerifyingKey) -> bool:
        """Check that the evidence is genuine (both signed, same size, different roots)."""
        if not self.first.verify(log_public_key) or not self.second.verify(log_public_key):
            return False
        return (
            self.first.log_id == self.second.log_id
            and self.first.tree_size == self.second.tree_size
            and self.first.root_hash != self.second.root_hash
        )

    def to_dict(self) -> dict:
        """Plain-data form for publication."""
        return {"first": self.first.to_dict(), "second": self.second.to_dict()}


def check_views_consistent(first: SignedTreeHead, second: SignedTreeHead,
                           consistency_verifier=None) -> SplitViewEvidence | None:
    """Compare two views of the same log; return evidence when they conflict.

    Args:
        first, second: signed tree heads from the same log id.
        consistency_verifier: optional callable ``(old_head, new_head) -> bool``
            used when the sizes differ (e.g. fetching and checking a
            consistency proof); when omitted, differing sizes are not treated
            as evidence.
    """
    if first.log_id != second.log_id:
        return None
    if first.tree_size == second.tree_size:
        if first.root_hash != second.root_hash:
            return SplitViewEvidence(first, second)
        return None
    older, newer = sorted((first, second), key=lambda h: h.tree_size)
    if consistency_verifier is not None and not consistency_verifier(older, newer):
        return SplitViewEvidence(older, newer)
    return None


class GossipPool:
    """Collects tree heads observed by many parties and flags split views."""

    def __init__(self, log_public_key: VerifyingKey):
        self.log_public_key = log_public_key
        self._observations: list[tuple[str, SignedTreeHead]] = []
        self._evidence: list[SplitViewEvidence] = []

    def submit(self, observer: str, head: SignedTreeHead) -> list[SplitViewEvidence]:
        """Record a head seen by ``observer``; returns any new evidence it creates.

        Heads with invalid signatures are rejected outright.
        """
        if not head.verify(self.log_public_key):
            raise SplitViewError("gossiped tree head has an invalid signature")
        new_evidence = []
        for _, existing in self._observations:
            evidence = check_views_consistent(existing, head)
            if evidence is not None and evidence.verify(self.log_public_key):
                new_evidence.append(evidence)
        self._observations.append((observer, head))
        self._evidence.extend(new_evidence)
        return new_evidence

    @property
    def observations(self) -> int:
        """Number of heads submitted so far."""
        return len(self._observations)

    @property
    def evidence(self) -> list[SplitViewEvidence]:
        """All split-view evidence collected so far."""
        return list(self._evidence)

    def observers(self) -> list[str]:
        """Distinct observers that have gossiped at least one head."""
        return sorted({observer for observer, _ in self._observations})
