"""A certificate-transparency-style public log.

Beyond the per-TEE hash chains, the paper suggests building on "deployed
certificate transparency infrastructure": the developer publishes every code
release (and every update manifest) to a public Merkle-tree log, and clients
or third-party auditors check inclusion and consistency. This module models
that log: entries go into an RFC 6962-style Merkle tree, the log operator
signs tree heads, and the standard proofs are served on request.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.crypto.merkle import (
    BatchInclusionProof,
    ConsistencyProof,
    InclusionProof,
    MerkleTree,
)
from repro.errors import LogError
from repro.wire.codec import encode

__all__ = ["SignedTreeHead", "CtLog"]

# Bounded memo of tree-head signatures that already verified (content digest
# of key + signature + payload). Shared across logs: heads are immutable and
# verification is pure, so a hit can only ever repeat an earlier success.
_VERIFIED_HEADS: OrderedDict[bytes, bool] = OrderedDict()


@dataclass(frozen=True)
class SignedTreeHead:
    """A signed statement of the log's size and root hash at a point in time."""

    log_id: str
    tree_size: int
    root_hash: bytes
    timestamp_us: int
    signature: bytes

    def signed_payload(self) -> bytes:
        """The canonical bytes covered by the log operator's signature."""
        return encode({
            "log_id": self.log_id,
            "tree_size": self.tree_size,
            "root_hash": self.root_hash,
            "timestamp_us": self.timestamp_us,
        })

    def verify(self, log_public_key: VerifyingKey) -> bool:
        """Verify the tree-head signature.

        Audits re-verify the same immutable head under the same log key many
        times (every checkpoint chain walk starts from a head), so successful
        verifications are memoized by content digest; failures re-verify.
        """
        memo_key = sha256(log_public_key.to_bytes() + self.signature
                          + self.signed_payload())
        if memo_key in _VERIFIED_HEADS:
            return True
        ok = log_public_key.verify(self.signed_payload(), self.signature)
        if ok:
            _VERIFIED_HEADS[memo_key] = True
            while len(_VERIFIED_HEADS) > 4096:
                _VERIFIED_HEADS.popitem(last=False)
        return ok

    def to_dict(self) -> dict:
        """Plain-data form for wire transfer."""
        return {
            "log_id": self.log_id,
            "tree_size": self.tree_size,
            "root_hash": self.root_hash,
            "timestamp_us": self.timestamp_us,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignedTreeHead":
        """Rebuild a signed tree head from :meth:`to_dict` output."""
        return cls(
            log_id=str(data["log_id"]),
            tree_size=int(data["tree_size"]),
            root_hash=bytes(data["root_hash"]),
            timestamp_us=int(data["timestamp_us"]),
            signature=bytes(data["signature"]),
        )


class CtLog:
    """A public append-only log with Merkle proofs and signed tree heads."""

    def __init__(self, log_id: str, signing_key: SigningKey | None = None):
        self.log_id = log_id
        self._key = signing_key or SigningKey.from_seed(b"repro/ct-log/" + log_id.encode("utf-8"))
        self._tree = MerkleTree()
        self._timestamp_us = 0

    # ------------------------------------------------------------------
    # Log operator interface
    # ------------------------------------------------------------------
    @property
    def public_key(self) -> VerifyingKey:
        """The log's tree-head verification key (pinned by clients)."""
        return self._key.verifying_key()

    @property
    def size(self) -> int:
        """Current number of leaves."""
        return self._tree.size

    def append(self, entry: bytes, timestamp_us: int | None = None) -> int:
        """Append an entry (e.g. a release descriptor); returns its leaf index."""
        if timestamp_us is not None:
            if timestamp_us < self._timestamp_us:
                raise LogError("log timestamps must be monotonic")
            self._timestamp_us = timestamp_us
        else:
            self._timestamp_us += 1
        return self._tree.append(entry)

    def entry(self, index: int) -> bytes:
        """The raw leaf at ``index``."""
        if not 0 <= index < self._tree.size:
            raise LogError(f"log has no entry {index}")
        return self._tree.leaf(index)

    def entries(self) -> list[bytes]:
        """All leaves in append order."""
        return self._tree.leaves()

    def signed_tree_head(self, tree_size: int | None = None) -> SignedTreeHead:
        """Produce a signed tree head for the current (or a historical) size."""
        if tree_size is None:
            tree_size = self._tree.size
        root = self._tree.root(tree_size)
        head = SignedTreeHead(
            log_id=self.log_id,
            tree_size=tree_size,
            root_hash=root,
            timestamp_us=self._timestamp_us,
            signature=b"",
        )
        signature = self._key.sign(head.signed_payload())
        return SignedTreeHead(
            log_id=head.log_id,
            tree_size=head.tree_size,
            root_hash=head.root_hash,
            timestamp_us=head.timestamp_us,
            signature=signature,
        )

    def inclusion_proof(self, index: int, tree_size: int | None = None) -> InclusionProof:
        """Prove that leaf ``index`` is included in the tree of ``tree_size`` leaves."""
        return self._tree.inclusion_proof(index, tree_size)

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> ConsistencyProof:
        """Prove that the log at ``old_size`` is a prefix of the log at ``new_size``."""
        return self._tree.consistency_proof(old_size, new_size)

    def batch_inclusion_proof(self, indices, tree_size: int | None = None) -> BatchInclusionProof:
        """One shared proof that every leaf in ``indices`` is in the log.

        Many clients auditing against the same tree head (e.g. everyone
        holding the same audit checkpoint) verify this single proof instead
        of one inclusion proof each — shared interior nodes appear once.
        """
        return self._tree.batch_inclusion_proof(indices, tree_size)

    def find(self, entry: bytes) -> int:
        """Index of the first occurrence of ``entry``; raises when absent."""
        for index, leaf in enumerate(self._tree.leaves()):
            if leaf == entry:
                return index
        raise LogError("entry not found in log")

    # ------------------------------------------------------------------
    # Client-side verification helpers
    # ------------------------------------------------------------------
    @staticmethod
    def verify_inclusion(entry: bytes, proof: InclusionProof, head: SignedTreeHead,
                         log_public_key: VerifyingKey) -> bool:
        """Verify a signed tree head and an inclusion proof against it."""
        if not head.verify(log_public_key):
            return False
        if proof.tree_size != head.tree_size:
            return False
        return proof.verify(entry, head.root_hash)

    @staticmethod
    def verify_batch_inclusion(entries, proof: BatchInclusionProof,
                               head: SignedTreeHead,
                               log_public_key: VerifyingKey) -> bool:
        """Verify a signed tree head and one shared multi-leaf proof against it.

        ``entries`` are the raw leaves aligned with ``proof.leaf_indices``.
        """
        if not head.verify(log_public_key):
            return False
        if proof.tree_size != head.tree_size:
            return False
        return proof.verify(tuple(entries), head.root_hash)

    @staticmethod
    def verify_consistency(old_head: SignedTreeHead, new_head: SignedTreeHead,
                           proof: ConsistencyProof, log_public_key: VerifyingKey) -> bool:
        """Verify that two signed tree heads describe the same append-only log."""
        if not old_head.verify(log_public_key) or not new_head.verify(log_public_key):
            return False
        if proof.old_size != old_head.tree_size or proof.new_size != new_head.tree_size:
            return False
        return proof.verify(old_head.root_hash, new_head.root_hash)
