"""A simulated clock.

Protocol code charges transmission latency and processing delays to the
simulated clock rather than sleeping, so experiments that sweep network
latency (e.g. the update-propagation ablation) run in milliseconds of wall
time while still reporting realistic end-to-end latencies.

Two drivers advance the clock: the synchronous transport pump
(:meth:`repro.net.transport.Network.run_until_idle`) and the discrete-event
scheduler (:class:`repro.net.eventloop.EventLoop`), which interleaves
message deliveries with task timers in timestamp order. Both only ever move
time forward via :meth:`SimClock.advance_to`, so they compose within one run.
"""

from __future__ import annotations

import time

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before zero")
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by a non-negative duration; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    @staticmethod
    def wall_time() -> float:
        """Real wall-clock time (perf counter) for benchmark measurements."""
        return time.perf_counter()
