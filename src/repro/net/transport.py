"""An in-memory simulated network of addressable endpoints.

The network is single-threaded: sends enqueue messages on a delivery-time
heap, and deliveries happen in timestamp order, invoking receiver handlers
(or parking messages in inboxes for endpoints that poll). Latency is charged
to a :class:`~repro.net.clock.SimClock` per link, and per-endpoint statistics
are collected for the benchmark harness.

Two drivers consume the queue:

* :meth:`Network.run_until_idle` drains it synchronously — the original
  pump-to-quiescence model, still used by direct calls and unit tests;
* :meth:`Network.deliver_next` delivers exactly one message, which is what
  the discrete-event scheduler (:mod:`repro.net.eventloop`) interleaves with
  task timers so thousands of requests can be genuinely in flight at once.
  Delivery observers (:meth:`Network.add_delivery_observer`) let the
  scheduler route responses to waiting tasks no matter which driver performed
  the delivery.

Message accounting is conservative: every send is either delivered, dropped
(partition, fault, crashed or closed destination), or still pending, so
``sent + duplicated == delivered + dropped + pending`` holds at all times
(see :meth:`NetworkStats.conserved`).

Adversarial network conditions are injected through two mechanisms:

* *fault hooks* (:meth:`Network.add_fault_hook`) inspect every message at send
  time and return a :class:`FaultDecision` — drop it, delay it (which, under
  delivery-time ordering, reorders it past later traffic), or duplicate it;
* *crashed endpoints* (:meth:`Network.crash` / :meth:`Network.recover`) model a
  party that is down: traffic addressed to it while down is dropped at
  delivery time, exactly as a real peer would simply never read it.

The scenario engine (:mod:`repro.sim.faults`) builds its fault plans on top of
these hooks.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.errors import NetworkError, TransportClosedError
from repro.net.clock import SimClock
from repro.net.latency import LatencyModel, NoLatency

__all__ = ["Message", "FaultDecision", "NetworkStats", "Endpoint", "Network"]


@dataclass(frozen=True)
class Message:
    """A message in flight: source, destination, payload, and delivery time."""

    source: str
    destination: str
    payload: bytes
    sent_at: float
    deliver_at: float


@dataclass(frozen=True)
class FaultDecision:
    """What a fault hook wants done with one message.

    Attributes:
        drop: discard the message instead of delivering it.
        extra_delay: additional delivery delay in seconds (on top of the link
            latency); under delivery-time ordering a delayed message is
            reordered past anything that overtakes it.
        duplicates: number of extra copies to enqueue.
    """

    drop: bool = False
    extra_delay: float = 0.0
    duplicates: int = 0


@dataclass
class NetworkStats:
    """Aggregate statistics the benchmarks and ablations report."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    total_latency: float = 0.0
    per_link: dict = field(default_factory=dict)

    def record_send(self, source: str, destination: str, size: int, latency: float) -> None:
        """Record one message send on the (source, destination) link."""
        self.messages_sent += 1
        self.bytes_sent += size
        self.total_latency += latency
        key = (source, destination)
        link = self.per_link.setdefault(key, {"messages": 0, "bytes": 0})
        link["messages"] += 1
        link["bytes"] += size

    def record_delivery(self) -> None:
        """Record one successful delivery."""
        self.messages_delivered += 1

    def record_drop(self) -> None:
        """Record one message lost to a partition, fault, or crashed endpoint."""
        self.messages_dropped += 1

    def conserved(self, pending: int = 0) -> bool:
        """Whether every message is accounted for.

        ``sent + duplicated == delivered + dropped + pending``: duplicates
        enter the queue without counting as sends, and every queue entry ends
        as exactly one delivery or one drop, so the identity must hold at any
        quiescent point (and, with ``pending``, at any point at all).
        """
        return (self.messages_sent + self.messages_duplicated
                == self.messages_delivered + self.messages_dropped + pending)

    def conservation_detail(self, pending: int = 0) -> str:
        """Human-readable form of the conservation identity (for invariants)."""
        return (f"sent {self.messages_sent} + duplicated "
                f"{self.messages_duplicated} vs delivered "
                f"{self.messages_delivered} + dropped {self.messages_dropped}"
                + (f" + pending {pending}" if pending else ""))


class Endpoint:
    """A network endpoint identified by a string address.

    Endpoints either register an ``on_message`` handler (server style) or poll
    :meth:`receive` for parked messages (client style).
    """

    def __init__(self, network: "Network", address: str):
        self.network = network
        self.address = address
        self.inbox: deque[Message] = deque()
        self.on_message: Optional[Callable[[Message], None]] = None
        self._closed = False

    def send(self, destination: str, payload: bytes, extra_delay: float = 0.0) -> None:
        """Send raw bytes to another endpoint's address.

        ``extra_delay`` adds sender-side processing time (seconds) on top of
        the link latency — e.g. an RPC server holding a response until its
        serial service queue drains (see ``RpcServer.service_model``).
        """
        if self._closed:
            raise TransportClosedError(f"endpoint {self.address} is closed")
        self.network.send(self.address, destination, payload, extra_delay=extra_delay)

    def receive(self) -> Optional[Message]:
        """Pop the oldest parked message, or ``None`` when the inbox is empty."""
        if self._closed:
            raise TransportClosedError(f"endpoint {self.address} is closed")
        if self.inbox:
            return self.inbox.popleft()
        return None

    def close(self) -> None:
        """Close the endpoint; subsequent sends and receives raise."""
        self._closed = True
        self.network._unregister(self.address)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed


class Network:
    """The simulated network fabric connecting all endpoints.

    Args:
        clock: simulated clock to charge latency against (a fresh one by default).
        default_latency: latency model used for links without an explicit model.
    """

    def __init__(self, clock: SimClock | None = None, default_latency: LatencyModel | None = None):
        self.clock = clock or SimClock()
        self.default_latency = default_latency or NoLatency()
        self.stats = NetworkStats()
        self._endpoints: dict[str, Endpoint] = {}
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        # A heap of (deliver_at, sequence, message): messages are delivered in
        # timestamp order with FIFO tie-breaking, so equal-latency traffic
        # behaves exactly as the original FIFO queue did.
        self._queue: list[tuple[float, int, Message]] = []
        self._sequence = itertools.count()
        self._partitions: set[tuple[str, str]] = set()
        self._fault_hooks: list[Callable[[Message], Optional[FaultDecision]]] = []
        self._down: set[str] = set()
        # Called after each successful delivery (handler already run or message
        # parked); the event loop uses this to wake tasks waiting on responses
        # regardless of whether run_until_idle or deliver_next did the work.
        self._delivery_observers: list[Callable[[Message], None]] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def endpoint(self, address: str) -> Endpoint:
        """Create (and register) a new endpoint at ``address``."""
        if address in self._endpoints:
            raise NetworkError(f"address {address!r} already registered")
        endpoint = Endpoint(self, address)
        self._endpoints[address] = endpoint
        return endpoint

    def _unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def set_link_latency(self, source: str, destination: str, model: LatencyModel,
                         symmetric: bool = True) -> None:
        """Assign a latency model to a directed link (both directions by default)."""
        self._link_latency[(source, destination)] = model
        if symmetric:
            self._link_latency[(destination, source)] = model

    def partition(self, source: str, destination: str, symmetric: bool = True) -> None:
        """Drop all traffic on a link (fault injection for audits under partition)."""
        self._partitions.add((source, destination))
        if symmetric:
            self._partitions.add((destination, source))

    def heal(self, source: str, destination: str, symmetric: bool = True) -> None:
        """Remove a partition installed by :meth:`partition`."""
        self._partitions.discard((source, destination))
        if symmetric:
            self._partitions.discard((destination, source))

    def addresses(self) -> list[str]:
        """All registered endpoint addresses."""
        return sorted(self._endpoints)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def add_fault_hook(self, hook: Callable[[Message], Optional[FaultDecision]]) -> None:
        """Install a hook consulted on every send.

        The hook receives the in-flight :class:`Message` and returns a
        :class:`FaultDecision` (or ``None`` for "no opinion"). Decisions from
        multiple hooks compose: any drop wins, delays add, duplicates add.
        """
        self._fault_hooks.append(hook)

    def remove_fault_hook(self, hook: Callable) -> None:
        """Remove a previously installed fault hook (no-op if absent)."""
        if hook in self._fault_hooks:
            self._fault_hooks.remove(hook)

    def crash(self, address: str) -> None:
        """Take an endpoint down: traffic addressed to it is dropped on delivery."""
        self._down.add(address)

    def recover(self, address: str) -> None:
        """Bring a crashed endpoint back; messages sent from now on are delivered."""
        self._down.discard(address)

    def is_down(self, address: str) -> bool:
        """Whether :meth:`crash` has marked this address down."""
        return address in self._down

    def _consult_faults(self, message: Message) -> FaultDecision:
        drop = False
        extra_delay = 0.0
        duplicates = 0
        for hook in self._fault_hooks:
            decision = hook(message)
            if decision is None:
                continue
            drop = drop or decision.drop
            extra_delay += decision.extra_delay
            duplicates += decision.duplicates
        return FaultDecision(drop=drop, extra_delay=extra_delay, duplicates=duplicates)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, payload: bytes,
             extra_delay: float = 0.0) -> None:
        """Enqueue a message for delivery; latency is charged at delivery time.

        ``extra_delay`` models sender-side processing time: it pushes the
        delivery timestamp out without counting as link latency in the stats.
        """
        if destination not in self._endpoints:
            raise NetworkError(f"no endpoint registered at {destination!r}")
        if (source, destination) in self._partitions:
            # Partitioned links silently lose traffic, as a real network
            # would. The bytes still left the sender, so the send is recorded
            # (keeping sent == delivered + dropped conservative) — but with
            # zero latency, since nothing ever traverses the link.
            self.stats.record_send(source, destination, len(payload), 0.0)
            self.stats.record_drop()
            return
        model = self._link_latency.get((source, destination), self.default_latency)
        latency = model.sample(len(payload))
        message = Message(
            source=source,
            destination=destination,
            payload=bytes(payload),
            sent_at=self.clock.now(),
            deliver_at=self.clock.now() + latency + max(0.0, extra_delay),
        )
        decision = self._consult_faults(message) if self._fault_hooks else None
        if decision is not None and decision.drop:
            # The latency sample above is kept (seeded latency models stay on
            # the same stream whether or not a fault fires) but none of it is
            # charged to total_latency: a dropped message has no delivery
            # latency, and charging it inflated every mean-latency report.
            self.stats.record_send(source, destination, len(payload), 0.0)
            self.stats.record_drop()
            return
        self.stats.record_send(source, destination, len(payload), latency)
        if decision is not None and decision.extra_delay > 0:
            message = replace(message, deliver_at=message.deliver_at + decision.extra_delay)
        self._enqueue(message)
        if decision is not None and decision.duplicates > 0:
            fault_delay = decision.extra_delay if decision.extra_delay > 0 else 0.0
            base = message.sent_at + max(0.0, extra_delay) + fault_delay
            for _ in range(decision.duplicates):
                # Each copy samples its own link latency, so a duplicate can
                # arrive before *or* after the original — dedup is exercised
                # under genuine reordering, not a same-instant echo.
                self._enqueue(replace(
                    message, deliver_at=base + model.sample(len(payload))))
                self.stats.messages_duplicated += 1

    def _enqueue(self, message: Message) -> None:
        heapq.heappush(self._queue, (message.deliver_at, next(self._sequence), message))

    def add_delivery_observer(self, observer: Callable[[Message], None]) -> None:
        """Call ``observer`` after every successful delivery.

        The observer runs after the receiving endpoint has seen the message
        (handler already invoked, or message parked in the inbox), so it can
        react to the *consequences* of the delivery — e.g. the event loop
        waking a task whose response just landed.
        """
        self._delivery_observers.append(observer)

    def remove_delivery_observer(self, observer: Callable) -> None:
        """Remove a previously installed delivery observer (no-op if absent)."""
        if observer in self._delivery_observers:
            self._delivery_observers.remove(observer)

    def next_delivery_at(self) -> Optional[float]:
        """Timestamp of the earliest queued message, or ``None`` when idle."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def deliver_next(self) -> Optional[Message]:
        """Deliver the earliest queued message; returns it, or ``None``.

        Undeliverable entries at the head of the queue (closed or unregistered
        destination, crashed party) are recorded as drops and skipped, so a
        ``None`` return means the queue is empty. The clock advances to the
        delivered message's timestamp.
        """
        while self._queue:
            _, _, message = heapq.heappop(self._queue)
            endpoint = self._endpoints.get(message.destination)
            if endpoint is None or endpoint.closed:
                # The destination disappeared while the bytes were in flight;
                # they are lost, and the stats must say so or the conservation
                # identity (sent + duplicated == delivered + dropped) breaks.
                self.stats.record_drop()
                continue
            if message.destination in self._down:
                # A crashed party never reads the bytes; they are simply lost.
                self.stats.record_drop()
                continue
            self.clock.advance_to(message.deliver_at)
            self.stats.record_delivery()
            if endpoint.on_message is not None:
                endpoint.on_message(message)
            else:
                endpoint.inbox.append(message)
            for observer in self._delivery_observers:
                observer(message)
            return message
        return None

    def run_until_idle(self, max_steps: int = 100_000) -> int:
        """Deliver queued messages until the queue is empty; returns deliveries made."""
        delivered = 0
        steps = 0
        while self._queue:
            steps += 1
            if steps > max_steps:
                raise NetworkError("network did not quiesce (possible message loop)")
            if self.deliver_next() is not None:
                delivered += 1
        return delivered

    def pending(self) -> int:
        """Number of undelivered messages."""
        return len(self._queue)
