"""A small request/response RPC layer over the simulated transport.

Trust domains expose their framework operations (attest, fetch log, submit
update, invoke application) as named RPC methods; clients and auditors call
them through :class:`RpcClient`. Requests and responses are encoded with the
canonical codec and framed, so the bytes on the simulated wire look like the
bytes a real deployment would exchange.

The layer is hardened for adversarial networks: servers give at-most-once
semantics (a retransmitted request is answered from a response cache instead
of being re-executed, so retries cannot double-apply state changes), and
:meth:`RpcClient.call_with_retry` retransmits the *same* request bytes after a
timeout, which is what makes that dedup effective.

For throughput, the layer also supports batching: :meth:`RpcClient.call_many`
packs many requests into one framed payload (the server's frame loop already
handles multi-frame payloads), matches responses out of order, and after a
timeout retransmits only the still-unanswered requests. The server batches
its responses per source payload, so a request batch costs one message each
way instead of one round trip per request.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import DecodingError, RpcError, TimeoutError
from repro.net.eventloop import WaitBatch
from repro.net.transport import Endpoint, Message, Network
from repro.wire.codec import decode, encode
from repro.wire.framing import frame_message, split_frames

__all__ = ["RpcServer", "RpcClient", "BoundedIdSet", "PendingRpcBatch",
           "ServiceTimeModel", "ServiceQueue"]

# How many completed request ids each endpoint remembers for duplicate-response
# filtering. Old duplicates beyond this window are indistinguishable from
# unrelated traffic and get parked in the inbox instead of discarded, which is
# harmless; the bound is what keeps memory flat under sustained traffic.
COMPLETED_ID_WINDOW = 4096


class BoundedIdSet:
    """A set that remembers only the most recently added ``maxlen`` items.

    Insertion order is tracked in a ring; adding beyond the bound evicts the
    oldest member. Lookup stays O(1). Used for the per-endpoint record of
    completed RPC request ids, which would otherwise grow without bound under
    sustained traffic.
    """

    def __init__(self, maxlen: int = COMPLETED_ID_WINDOW):
        if maxlen < 1:
            raise ValueError("maxlen must be at least 1")
        self.maxlen = maxlen
        self._order: deque = deque()
        self._members: set = set()

    def add(self, item) -> None:
        """Remember ``item``, evicting the oldest member beyond the bound."""
        if item in self._members:
            return
        self._members.add(item)
        self._order.append(item)
        while len(self._order) > self.maxlen:
            self._members.discard(self._order.popleft())

    def __contains__(self, item) -> bool:
        return item in self._members

    def __len__(self) -> int:
        return len(self._members)


@dataclass(frozen=True)
class ServiceTimeModel:
    """How long one server takes to process requests, in simulated seconds.

    A server with a service model is a *serial busy-until queue*: requests are
    processed one after another, each costing ``per_request`` seconds (plus
    ``per_byte`` per payload byte), and a response leaves only when the queue
    has drained to it. Without a model, servers answer in zero simulated time
    — which makes every deployment look infinitely fast and hides the benefit
    of horizontal sharding entirely. Installing a model is what makes shard
    parallelism measurable in sim time: two shards each own a queue, so their
    service time genuinely overlaps.
    """

    per_request: float = 0.0
    per_byte: float = 0.0

    def cost(self, requests: int, payload_bytes: int = 0) -> float:
        """Total service time for ``requests`` requests in one payload."""
        return requests * self.per_request + payload_bytes * self.per_byte


class ServiceQueue:
    """Observable accounting for a server's serial service queue.

    The busy-until scalar says *when* the server drains but not *how deep* the
    line is. This queue keeps both: every admitted work unit (one application
    call) gets a completion timestamp on the server's serial timeline, so
    ``depth(now)`` is the number of units still queued or in service and
    ``max_depth`` is the high-water mark — the head-of-line blocking that the
    capacity model in docs/performance.md describes, now measurable.
    """

    def __init__(self):
        self.busy_until = 0.0
        self.max_depth = 0
        self.total_units = 0
        self._completions: list[float] = []  # heap of per-unit finish times

    def enqueue(self, now: float, units: int, cost: float) -> float:
        """Admit ``units`` work units costing ``cost`` seconds in total.

        Returns the delay until the *last* of them completes (the response
        leaves when the whole payload's work has drained), preserving the
        busy-until semantics exactly.
        """
        self._expire(now)
        start = max(now, self.busy_until)
        self.busy_until = start + cost
        per_unit = cost / units if units > 0 else 0.0
        for index in range(1, units + 1):
            heapq.heappush(self._completions, start + per_unit * index)
        self.total_units += units
        self.max_depth = max(self.max_depth, len(self._completions))
        return self.busy_until - now

    def depth(self, now: float) -> int:
        """Work units still queued or in service at simulated time ``now``."""
        self._expire(now)
        return len(self._completions)

    def _expire(self, now: float) -> None:
        while self._completions and self._completions[0] <= now:
            heapq.heappop(self._completions)


class RpcServer:
    """Dispatches incoming RPC requests to registered handler functions.

    Handlers take the decoded ``params`` value and return an encodable result;
    exceptions they raise are reported to the caller as :class:`RpcError`.

    A payload may carry many framed requests (a client-side batch); every
    response frame for one incoming payload is concatenated and sent back as a
    single payload, so batch traffic stays batched on the return path.

    Args:
        at_most_once: cache responses by ``(source, request id)`` and answer
            retransmissions from the cache instead of re-executing the handler.
        cache_size: number of cached responses kept for deduplication.
        service_model: optional :class:`ServiceTimeModel` making this server a
            serial busy-until queue in simulated time (settable later via the
            ``service_model`` attribute; ``None`` means zero service time).
    """

    def __init__(self, endpoint: Endpoint, name: str | None = None,
                 at_most_once: bool = True, cache_size: int = 1024,
                 service_model: ServiceTimeModel | None = None):
        self.endpoint = endpoint
        self.name = name or endpoint.address
        self._handlers: dict[str, Callable] = {}
        self._raw_handlers: dict[str, Callable] = {}
        self.requests_served = 0
        self.duplicates_answered = 0
        self.malformed_frames = 0
        self.batches_served = 0
        self.service_model = service_model
        self.queue = ServiceQueue()
        self._at_most_once = at_most_once
        self._cache_size = cache_size
        self._response_cache: OrderedDict[tuple, bytes] = OrderedDict()
        endpoint.on_message = self._handle_message

    def register(self, method: str, handler: Callable) -> None:
        """Register ``handler`` for ``method`` (overwrites any previous handler)."""
        self._handlers[method] = handler

    def register_raw(self, method: str, handler: Callable) -> None:
        """Register a raw byte-level handler for ``method``.

        A raw handler receives ``(request_dict, request_frame_bytes)`` and
        returns the *encoded response envelope* (``{"id": ..., "result"/
        "error": ...}``) as bytes. This lets a backend forward the original
        wire bytes through its own transport (e.g. the vsock hops into an
        enclave) and serialize the response exactly once, instead of the
        server decoding and re-encoding the payload at every layer — the
        fast path for high-throughput batch methods. Raw handlers take
        precedence over :meth:`register` handlers for the same method; their
        exceptions are answered as error envelopes like any handler's.
        """
        self._raw_handlers[method] = handler

    def registered_methods(self) -> list[str]:
        """Names of all registered methods (normal and raw)."""
        return sorted(set(self._handlers) | set(self._raw_handlers))

    def _handle_message(self, message: Message) -> None:
        outgoing, executed, frame_count = self._process_payload(
            message.payload, message.source)
        if outgoing:
            if frame_count > 1:
                self.batches_served += 1
            self.endpoint.send(
                message.source, outgoing,
                extra_delay=self._service_delay(executed, len(message.payload)))

    def dispatch_payload(self, payload: bytes, source: str) -> bytes:
        """Process one request payload and return the response payload bytes.

        The network-free half of :meth:`_handle_message`: same frame loop,
        at-most-once cache, raw-handler fast path, and counters — but the
        response bytes are *returned* instead of sent through the simulated
        endpoint, and no simulated service time is charged (there is no
        simulated clock where this runs). This is the serving entry point for
        worker processes in :mod:`repro.service.parallel`, which shuttle the
        same wire bytes over OS pipes instead of the discrete-event transport.
        """
        outgoing, _, frame_count = self._process_payload(payload, source)
        if outgoing and frame_count > 1:
            self.batches_served += 1
        return outgoing

    def _process_payload(self, payload: bytes,
                         source: str) -> tuple[bytes, int, int]:
        """Run the frame loop over ``payload``; return (response_bytes,
        executed work units, frame count)."""
        try:
            frames = split_frames(payload)
        except DecodingError:
            self.malformed_frames += 1
            return b"", 0, 0
        outgoing: list[bytes] = []
        executed = 0
        for frame in frames:
            try:
                request = decode(frame)
            except DecodingError:
                # A corrupted request has no recoverable id to answer; drop it
                # and let the client's retransmission carry the day.
                self.malformed_frames += 1
                continue
            key = None
            if self._at_most_once and isinstance(request, dict) and "id" in request:
                key = (source, request["id"])
                cached = self._response_cache.get(key)
                if cached is not None:
                    self.duplicates_answered += 1
                    outgoing.append(cached)
                    continue
            executed += self._request_weight(request) if self.service_model else 1
            raw_handler = None
            if (self._raw_handlers and isinstance(request, dict)
                    and "method" in request and "id" in request):
                raw_handler = self._raw_handlers.get(request["method"])
            if raw_handler is not None:
                try:
                    body = raw_handler(request, frame)
                except Exception as exc:  # answered like any handler error
                    body = encode({"id": request["id"],
                                   "error": f"{type(exc).__name__}: {exc}"})
                else:
                    self.requests_served += 1
                response = frame_message(body)
            else:
                response = frame_message(encode(self._dispatch(request)))
            if key is not None:
                self._response_cache[key] = response
                while len(self._response_cache) > self._cache_size:
                    self._response_cache.popitem(last=False)
            outgoing.append(response)
        return b"".join(outgoing), executed, len(frames)

    @staticmethod
    def _request_weight(request) -> int:
        """How many serial work units one request frame costs the server.

        A batched ``invoke_many`` frame carries many application calls in one
        envelope; the service queue must charge per *call*, or batching would
        not just amortize round trips but make server work itself free and no
        amount of sharding would ever be measurable. Non-batch requests weigh
        one unit.
        """
        params = request.get("params") if isinstance(request, dict) else None
        if isinstance(params, dict):
            for field_name in ("params_list", "calls"):
                inner = params.get(field_name)
                if isinstance(inner, list):
                    return max(1, len(inner))
        return 1

    @property
    def busy_until(self) -> float:
        """When the serial service queue drains (simulated seconds)."""
        return self.queue.busy_until

    @busy_until.setter
    def busy_until(self, value: float) -> None:
        self.queue.busy_until = value

    def queue_depth(self) -> int:
        """Work units still queued or in service right now."""
        return self.queue.depth(self.endpoint.network.clock.now())

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the service queue over this server's lifetime."""
        return self.queue.max_depth

    def _service_delay(self, executed: int, payload_bytes: int) -> float:
        """Seconds this payload's responses wait for the serial service queue.

        Requests join the queue behind whatever the server is still busy with
        (``busy_until``); duplicates answered from the response cache are free.
        """
        if self.service_model is None or executed == 0:
            return 0.0
        now = self.endpoint.network.clock.now()
        return self.queue.enqueue(
            now, executed, self.service_model.cost(executed, payload_bytes))

    def _dispatch(self, request) -> dict:
        if not isinstance(request, dict) or "method" not in request or "id" not in request:
            return {"id": request.get("id") if isinstance(request, dict) else None,
                    "error": "malformed request"}
        method = request["method"]
        handler = self._handlers.get(method)
        if handler is None:
            return {"id": request["id"], "error": f"unknown method {method!r}"}
        try:
            result = handler(request.get("params"))
        except Exception as exc:  # deliberately broad: server must answer the caller
            return {"id": request["id"], "error": f"{type(exc).__name__}: {exc}"}
        self.requests_served += 1
        return {"id": request["id"], "result": result}


class RpcClient:
    """Issues RPC calls to a server address over the simulated network."""

    def __init__(self, network: Network, endpoint: Endpoint, server_address: str):
        self.network = network
        self.endpoint = endpoint
        self.server_address = server_address
        self.retries = 0
        # Request ids are drawn from one counter per *network*, not per
        # process: ids must be unique across every client that can reach a
        # server (at-most-once dedup keys on them), but they must NOT depend
        # on process history — the id is encoded into the request bytes, so
        # its digit width feeds the byte-proportional service-cost model,
        # and a process-global counter would make replay latencies depend on
        # how much traffic *earlier* simulations happened to send.
        if not hasattr(network, "rpc_request_ids"):
            network.rpc_request_ids = itertools.count(1)
        self._ids = network.rpc_request_ids
        # Completed request ids are shared across every client on this
        # endpoint, so any of them can discard a stale duplicate response no
        # matter which client originally issued the request. The record is
        # bounded (see BoundedIdSet) so sustained traffic cannot leak memory.
        if not hasattr(endpoint, "rpc_completed_ids"):
            endpoint.rpc_completed_ids = BoundedIdSet()
        self._completed: BoundedIdSet = endpoint.rpc_completed_ids

    def call(self, method: str, params=None):
        """Call ``method`` with ``params`` and return the decoded result.

        Raises:
            RpcError: the server reported an application-level error.
            TimeoutError: no response arrived after the network went idle.
        """
        return self.call_with_retry(method, params, attempts=1)

    def call_with_retry(self, method: str, params=None, attempts: int = 3):
        """Call ``method``, retransmitting after timeouts up to ``attempts`` times.

        Every attempt resends the *same* request id and bytes, so an
        at-most-once server deduplicates re-deliveries and the handler runs at
        most one time no matter how lossy the network is.

        Raises:
            RpcError: the server reported an application-level error.
            TimeoutError: every attempt timed out.
        """
        request_id = next(self._ids)
        request_bytes = frame_message(encode(
            {"id": request_id, "method": method, "params": params}
        ))
        found: dict[int, dict] = {}
        pending = {request_id}
        for attempt in range(max(1, attempts)):
            if attempt > 0:
                self.retries += 1
            self.endpoint.send(self.server_address, request_bytes)
            self.network.run_until_idle()
            self._drain_inbox(pending, found)
            if not pending:
                break
        self._completed.add(request_id)
        if pending:
            raise TimeoutError(
                f"no response to request {request_id} from {self.server_address}"
            )
        response = found[request_id]
        if "error" in response and response["error"] is not None:
            raise RpcError(f"{method} failed: {response['error']}")
        return response.get("result")

    def call_many(self, calls, attempts: int = 3, return_errors: bool = False):
        """Issue many calls as one batched payload and return their results.

        ``calls`` is a sequence of ``(method, params)`` pairs. All requests are
        framed individually and concatenated into a single payload — one
        message on the wire no matter how many calls ride in it — and the
        server answers with one batched response payload. Responses are
        matched to requests by id, so they may arrive out of order (or split
        across payloads) without confusing the pairing.

        After a timeout only the still-unanswered requests are retransmitted,
        with their original ids and bytes, so an at-most-once server executes
        each call exactly once even when a batch is partially lost.

        Args:
            calls: ``(method, params)`` pairs, in result order.
            attempts: total send attempts for any individual request.
            return_errors: when true, failures become exception *instances*
                in the result list instead of raising — :class:`RpcError` for
                a server-reported error, :class:`TimeoutError` for a call
                unanswered on every attempt — so one failed call cannot mask
                the rest of the batch.

        Raises:
            RpcError: a call failed and ``return_errors`` is false.
            TimeoutError: a call went unanswered on every attempt and
                ``return_errors`` is false.
        """
        return self.begin_many(calls).collect(attempts=attempts,
                                              return_errors=return_errors)

    def begin_many(self, calls) -> "PendingRpcBatch":
        """Send a batch of calls *without* pumping the network; return a handle.

        This is the split-phase half of :meth:`call_many`: the batch payload
        is enqueued on the wire immediately, but no delivery happens until
        someone runs the network (usually :meth:`PendingRpcBatch.collect`).
        Splitting send from gather is what lets a caller scatter batches to
        *several* servers first and pump the network once — the round trips
        and the servers' service time then overlap in simulated time instead
        of serializing, which is the mechanism behind shard scaling
        (see :mod:`repro.service`).
        """
        calls = list(calls)
        requests = []
        for method, params in calls:
            request_id = next(self._ids)
            requests.append((request_id, method, frame_message(encode(
                {"id": request_id, "method": method, "params": params}
            ))))
        if requests:
            self.endpoint.send(self.server_address,
                               b"".join(frame for _, _, frame in requests))
        return PendingRpcBatch(self, requests)

    def _drain_inbox(self, pending: set, found: dict) -> None:
        """Scan parked messages for responses to the ``pending`` request ids.

        Matched responses move from ``pending`` into ``found``. A message is
        put back on the inbox **at most once** — even when it carries several
        frames for other callers — so a batched payload is never re-queued as
        duplicates (each re-queued copy used to be re-processed as if it were
        fresh traffic). Duplicates of responses already matched or already
        completed on this endpoint are discarded.
        """
        requeue = []
        while True:
            message = self.endpoint.receive()
            if message is None:
                break
            try:
                frames = split_frames(message.payload)
            except DecodingError:
                continue  # corrupted response; the retry path handles it
            keep_for_others = False
            for frame in frames:
                try:
                    response = decode(frame)
                except DecodingError:
                    continue
                request_id = response.get("id") if isinstance(response, dict) else None
                if request_id is not None and request_id in pending:
                    found[request_id] = response
                    pending.discard(request_id)
                elif request_id is not None and (
                        request_id in found or request_id in self._completed):
                    # A duplicate of an already-answered request; discard
                    # instead of letting it pile up in the inbox forever.
                    continue
                else:
                    keep_for_others = True
            if keep_for_others:
                requeue.append(message)
        # Preserve messages for other callers sharing the endpoint.
        for message in requeue:
            self.endpoint.inbox.append(message)


class PendingRpcBatch:
    """An in-flight batch created by :meth:`RpcClient.begin_many`.

    The batch payload is already on the wire; :meth:`collect` pumps the
    network, matches responses by id, and retransmits only the unanswered
    requests — exactly :meth:`RpcClient.call_many` semantics, just with the
    send and the gather decoupled so several batches (to different servers)
    can be in flight before the first delivery happens. ``collect`` is
    idempotent: the first call resolves the batch and later calls return the
    same results.
    """

    def __init__(self, client: RpcClient, requests: list):
        self.client = client
        self.requests = requests
        self.pending = {request_id for request_id, _, _ in requests}
        self.found: dict[int, dict] = {}
        self._resolved = False

    def collect(self, attempts: int = 3, return_errors: bool = False):
        """Gather this batch's results (pump, drain, retransmit as needed).

        Args/semantics match :meth:`RpcClient.call_many`: results are in call
        order; with ``return_errors`` failures become exception instances,
        otherwise the first failure raises.
        """
        if not self._resolved:
            self._resolve(attempts)
        if self.pending and not return_errors:
            raise TimeoutError(
                f"{len(self.pending)} of {len(self.requests)} batched requests "
                f"to {self.client.server_address} went unanswered"
            )
        results = []
        for request_id, method, _ in self.requests:
            if request_id in self.pending:
                results.append(TimeoutError(
                    f"no response to batched request {request_id} "
                    f"from {self.client.server_address}"
                ))
                continue
            response = self.found[request_id]
            if "error" in response and response["error"] is not None:
                error = RpcError(f"{method} failed: {response['error']}")
                if not return_errors:
                    raise error
                results.append(error)
            else:
                results.append(response.get("result"))
        return results

    def wait_event(self, attempts: int = 3, timeout: float = 0.25):
        """Resolve this batch inside an event loop instead of pumping.

        A generator for :class:`repro.net.eventloop.EventLoop`: it yields
        :class:`~repro.net.eventloop.WaitBatch` commands and resumes when
        every response arrived (``"complete"``), ``timeout`` simulated
        seconds elapsed (``"timeout"``), or the network went fully idle
        (``"idle"``). On the latter two it retransmits the still-unanswered
        requests with their original ids and bytes — the same at-most-once
        retry discipline as :meth:`collect`, but without ever draining the
        network on the waiter's behalf, so other tasks' requests stay
        genuinely in flight alongside this one. After the generator returns,
        :meth:`collect` unpacks results without pumping.
        """
        client = self.client
        if not self._resolved:
            for attempt in range(max(1, attempts)):
                if not self.pending:
                    break
                if attempt > 0:
                    client.retries += len(self.pending)
                    client.endpoint.send(client.server_address, b"".join(
                        frame for request_id, _, frame in self.requests
                        if request_id in self.pending
                    ))
                yield WaitBatch(self, timeout)
            for request_id, _, _ in self.requests:
                client._completed.add(request_id)
            self._resolved = True

    def _resolve(self, attempts: int) -> None:
        client = self.client
        for attempt in range(max(1, attempts)):
            if not self.pending:
                break
            if attempt > 0:
                # Retransmit only the unanswered requests, with their original
                # ids and bytes, so the at-most-once server dedups re-delivery.
                client.retries += len(self.pending)
                client.endpoint.send(client.server_address, b"".join(
                    frame for request_id, _, frame in self.requests
                    if request_id in self.pending
                ))
            client.network.run_until_idle()
            client._drain_inbox(self.pending, self.found)
        for request_id, _, _ in self.requests:
            client._completed.add(request_id)
        self._resolved = True
