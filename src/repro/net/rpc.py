"""A small request/response RPC layer over the simulated transport.

Trust domains expose their framework operations (attest, fetch log, submit
update, invoke application) as named RPC methods; clients and auditors call
them through :class:`RpcClient`. Requests and responses are encoded with the
canonical codec and framed, so the bytes on the simulated wire look like the
bytes a real deployment would exchange.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.errors import RpcError, TimeoutError
from repro.net.transport import Endpoint, Message, Network
from repro.wire.codec import decode, encode
from repro.wire.framing import frame_message, split_frames

__all__ = ["RpcServer", "RpcClient"]


class RpcServer:
    """Dispatches incoming RPC requests to registered handler functions.

    Handlers take the decoded ``params`` value and return an encodable result;
    exceptions they raise are reported to the caller as :class:`RpcError`.
    """

    def __init__(self, endpoint: Endpoint, name: str | None = None):
        self.endpoint = endpoint
        self.name = name or endpoint.address
        self._handlers: dict[str, Callable] = {}
        self.requests_served = 0
        endpoint.on_message = self._handle_message

    def register(self, method: str, handler: Callable) -> None:
        """Register ``handler`` for ``method`` (overwrites any previous handler)."""
        self._handlers[method] = handler

    def registered_methods(self) -> list[str]:
        """Names of all registered methods."""
        return sorted(self._handlers)

    def _handle_message(self, message: Message) -> None:
        for frame in split_frames(message.payload):
            request = decode(frame)
            response = self._dispatch(request)
            self.endpoint.send(message.source, frame_message(encode(response)))

    def _dispatch(self, request) -> dict:
        if not isinstance(request, dict) or "method" not in request or "id" not in request:
            return {"id": request.get("id") if isinstance(request, dict) else None,
                    "error": "malformed request"}
        method = request["method"]
        handler = self._handlers.get(method)
        if handler is None:
            return {"id": request["id"], "error": f"unknown method {method!r}"}
        try:
            result = handler(request.get("params"))
        except Exception as exc:  # deliberately broad: server must answer the caller
            return {"id": request["id"], "error": f"{type(exc).__name__}: {exc}"}
        self.requests_served += 1
        return {"id": request["id"], "result": result}


class RpcClient:
    """Issues RPC calls to a server address over the simulated network."""

    _ids = itertools.count(1)

    def __init__(self, network: Network, endpoint: Endpoint, server_address: str):
        self.network = network
        self.endpoint = endpoint
        self.server_address = server_address

    def call(self, method: str, params=None):
        """Call ``method`` with ``params`` and return the decoded result.

        Raises:
            RpcError: the server reported an application-level error.
            TimeoutError: no response arrived after the network went idle.
        """
        request_id = next(self._ids)
        request = {"id": request_id, "method": method, "params": params}
        self.endpoint.send(self.server_address, frame_message(encode(request)))
        self.network.run_until_idle()
        response = self._await_response(request_id)
        if "error" in response and response["error"] is not None:
            raise RpcError(f"{method} failed: {response['error']}")
        return response.get("result")

    def _await_response(self, request_id: int) -> dict:
        unrelated = []
        try:
            while True:
                message = self.endpoint.receive()
                if message is None:
                    raise TimeoutError(
                        f"no response to request {request_id} from {self.server_address}"
                    )
                for frame in split_frames(message.payload):
                    response = decode(frame)
                    if isinstance(response, dict) and response.get("id") == request_id:
                        return response
                    unrelated.append(message)
        finally:
            # Preserve unrelated messages for other callers sharing the endpoint.
            for message in unrelated:
                self.endpoint.inbox.append(message)
