"""A small request/response RPC layer over the simulated transport.

Trust domains expose their framework operations (attest, fetch log, submit
update, invoke application) as named RPC methods; clients and auditors call
them through :class:`RpcClient`. Requests and responses are encoded with the
canonical codec and framed, so the bytes on the simulated wire look like the
bytes a real deployment would exchange.

The layer is hardened for adversarial networks: servers give at-most-once
semantics (a retransmitted request is answered from a response cache instead
of being re-executed, so retries cannot double-apply state changes), and
:meth:`RpcClient.call_with_retry` retransmits the *same* request bytes after a
timeout, which is what makes that dedup effective.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Callable

from repro.errors import DecodingError, RpcError, TimeoutError
from repro.net.transport import Endpoint, Message, Network
from repro.wire.codec import decode, encode
from repro.wire.framing import frame_message, split_frames

__all__ = ["RpcServer", "RpcClient"]


class RpcServer:
    """Dispatches incoming RPC requests to registered handler functions.

    Handlers take the decoded ``params`` value and return an encodable result;
    exceptions they raise are reported to the caller as :class:`RpcError`.

    Args:
        at_most_once: cache responses by ``(source, request id)`` and answer
            retransmissions from the cache instead of re-executing the handler.
        cache_size: number of cached responses kept for deduplication.
    """

    def __init__(self, endpoint: Endpoint, name: str | None = None,
                 at_most_once: bool = True, cache_size: int = 1024):
        self.endpoint = endpoint
        self.name = name or endpoint.address
        self._handlers: dict[str, Callable] = {}
        self.requests_served = 0
        self.duplicates_answered = 0
        self.malformed_frames = 0
        self._at_most_once = at_most_once
        self._cache_size = cache_size
        self._response_cache: OrderedDict[tuple, bytes] = OrderedDict()
        endpoint.on_message = self._handle_message

    def register(self, method: str, handler: Callable) -> None:
        """Register ``handler`` for ``method`` (overwrites any previous handler)."""
        self._handlers[method] = handler

    def registered_methods(self) -> list[str]:
        """Names of all registered methods."""
        return sorted(self._handlers)

    def _handle_message(self, message: Message) -> None:
        try:
            frames = split_frames(message.payload)
        except DecodingError:
            self.malformed_frames += 1
            return
        for frame in frames:
            try:
                request = decode(frame)
            except DecodingError:
                # A corrupted request has no recoverable id to answer; drop it
                # and let the client's retransmission carry the day.
                self.malformed_frames += 1
                continue
            key = None
            if self._at_most_once and isinstance(request, dict) and "id" in request:
                key = (message.source, request["id"])
                cached = self._response_cache.get(key)
                if cached is not None:
                    self.duplicates_answered += 1
                    self.endpoint.send(message.source, cached)
                    continue
            response = frame_message(encode(self._dispatch(request)))
            if key is not None:
                self._response_cache[key] = response
                while len(self._response_cache) > self._cache_size:
                    self._response_cache.popitem(last=False)
            self.endpoint.send(message.source, response)

    def _dispatch(self, request) -> dict:
        if not isinstance(request, dict) or "method" not in request or "id" not in request:
            return {"id": request.get("id") if isinstance(request, dict) else None,
                    "error": "malformed request"}
        method = request["method"]
        handler = self._handlers.get(method)
        if handler is None:
            return {"id": request["id"], "error": f"unknown method {method!r}"}
        try:
            result = handler(request.get("params"))
        except Exception as exc:  # deliberately broad: server must answer the caller
            return {"id": request["id"], "error": f"{type(exc).__name__}: {exc}"}
        self.requests_served += 1
        return {"id": request["id"], "result": result}


class RpcClient:
    """Issues RPC calls to a server address over the simulated network."""

    _ids = itertools.count(1)

    def __init__(self, network: Network, endpoint: Endpoint, server_address: str):
        self.network = network
        self.endpoint = endpoint
        self.server_address = server_address
        self.retries = 0
        # Completed request ids are shared across every client on this
        # endpoint, so any of them can discard a stale duplicate response no
        # matter which client originally issued the request.
        if not hasattr(endpoint, "rpc_completed_ids"):
            endpoint.rpc_completed_ids = set()
        self._completed: set[int] = endpoint.rpc_completed_ids

    def call(self, method: str, params=None):
        """Call ``method`` with ``params`` and return the decoded result.

        Raises:
            RpcError: the server reported an application-level error.
            TimeoutError: no response arrived after the network went idle.
        """
        return self.call_with_retry(method, params, attempts=1)

    def call_with_retry(self, method: str, params=None, attempts: int = 3):
        """Call ``method``, retransmitting after timeouts up to ``attempts`` times.

        Every attempt resends the *same* request id and bytes, so an
        at-most-once server deduplicates re-deliveries and the handler runs at
        most one time no matter how lossy the network is.

        Raises:
            RpcError: the server reported an application-level error.
            TimeoutError: every attempt timed out.
        """
        request_id = next(self._ids)
        request_bytes = frame_message(encode(
            {"id": request_id, "method": method, "params": params}
        ))
        last_timeout = None
        for attempt in range(max(1, attempts)):
            if attempt > 0:
                self.retries += 1
            self.endpoint.send(self.server_address, request_bytes)
            self.network.run_until_idle()
            try:
                response = self._await_response(request_id)
            except TimeoutError as exc:
                last_timeout = exc
                continue
            self._completed.add(request_id)
            if "error" in response and response["error"] is not None:
                raise RpcError(f"{method} failed: {response['error']}")
            return response.get("result")
        self._completed.add(request_id)
        raise last_timeout or TimeoutError(
            f"no response to request {request_id} from {self.server_address}"
        )

    def _await_response(self, request_id: int) -> dict:
        unrelated = []
        try:
            while True:
                message = self.endpoint.receive()
                if message is None:
                    raise TimeoutError(
                        f"no response to request {request_id} from {self.server_address}"
                    )
                try:
                    frames = split_frames(message.payload)
                except DecodingError:
                    continue  # corrupted response; the retry path handles it
                for frame in frames:
                    try:
                        response = decode(frame)
                    except DecodingError:
                        continue
                    if isinstance(response, dict) and response.get("id") == request_id:
                        return response
                    if (isinstance(response, dict)
                            and response.get("id") in self._completed):
                        # A duplicate of an already-answered request; discard
                        # instead of letting it pile up in the inbox forever.
                        continue
                    unrelated.append(message)
        finally:
            # Preserve unrelated messages for other callers sharing the endpoint.
            for message in unrelated:
                self.endpoint.inbox.append(message)
