"""Latency and bandwidth models for the simulated network.

A :class:`LatencyModel` answers one question: how long does delivering a
message of ``size`` bytes take? Deployments compose them per link — e.g. a
LAN profile between the client and a cloud region, a WAN profile between trust
domains in different regions, and a near-zero vsock profile between a host and
its enclave.
"""

from __future__ import annotations

import random

__all__ = [
    "LatencyModel",
    "NoLatency",
    "ConstantLatency",
    "UniformLatency",
    "lan_profile",
    "wan_profile",
    "vsock_profile",
]


class LatencyModel:
    """Base class: maps a message size in bytes to a one-way delay in seconds."""

    def sample(self, size_bytes: int) -> float:
        """Return the one-way delay for a message of ``size_bytes`` bytes."""
        raise NotImplementedError


class NoLatency(LatencyModel):
    """Zero-latency link (useful for unit tests)."""

    def sample(self, size_bytes: int) -> float:
        return 0.0


class ConstantLatency(LatencyModel):
    """Fixed propagation delay plus a bandwidth-proportional serialization delay.

    Args:
        delay_s: one-way propagation delay in seconds.
        bandwidth_bps: link bandwidth in bytes per second (``None`` = infinite).
    """

    def __init__(self, delay_s: float, bandwidth_bps: float | None = None):
        if delay_s < 0:
            raise ValueError("latency cannot be negative")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.delay_s = delay_s
        self.bandwidth_bps = bandwidth_bps

    def sample(self, size_bytes: int) -> float:
        delay = self.delay_s
        if self.bandwidth_bps is not None:
            delay += size_bytes / self.bandwidth_bps
        return delay


class UniformLatency(LatencyModel):
    """Uniformly jittered latency in ``[low_s, high_s]`` (seeded for reproducibility)."""

    def __init__(self, low_s: float, high_s: float, seed: int = 0):
        if low_s < 0 or high_s < low_s:
            raise ValueError("invalid latency bounds")
        self.low_s = low_s
        self.high_s = high_s
        self._rng = random.Random(seed)

    def sample(self, size_bytes: int) -> float:
        return self._rng.uniform(self.low_s, self.high_s)


def lan_profile() -> LatencyModel:
    """A same-region cloud link: 0.5 ms propagation, 10 Gbit/s bandwidth."""
    return ConstantLatency(0.0005, bandwidth_bps=10e9 / 8)


def wan_profile() -> LatencyModel:
    """A cross-region link: 30 ms propagation, 1 Gbit/s bandwidth."""
    return ConstantLatency(0.030, bandwidth_bps=1e9 / 8)


def vsock_profile() -> LatencyModel:
    """The host↔enclave vsock hop: tens of microseconds, high bandwidth."""
    return ConstantLatency(0.00005, bandwidth_bps=20e9 / 8)
