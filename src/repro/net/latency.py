"""Latency and bandwidth models for the simulated network.

A :class:`LatencyModel` answers one question: how long does delivering a
message of ``size`` bytes take? Deployments compose them per link — e.g. a
LAN profile between the client and a cloud region, a WAN profile between trust
domains in different regions, and a near-zero vsock profile between a host and
its enclave.
"""

from __future__ import annotations

import random

__all__ = [
    "LatencyModel",
    "NoLatency",
    "ConstantLatency",
    "UniformLatency",
    "LatencyMap",
    "lan_profile",
    "wan_profile",
    "vsock_profile",
    "geo_profile",
    "GEO_REGIONS",
]


class LatencyModel:
    """Base class: maps a message size in bytes to a one-way delay in seconds."""

    def sample(self, size_bytes: int) -> float:
        """Return the one-way delay for a message of ``size_bytes`` bytes."""
        raise NotImplementedError


class NoLatency(LatencyModel):
    """Zero-latency link (useful for unit tests)."""

    def sample(self, size_bytes: int) -> float:
        return 0.0


class ConstantLatency(LatencyModel):
    """Fixed propagation delay plus a bandwidth-proportional serialization delay.

    Args:
        delay_s: one-way propagation delay in seconds.
        bandwidth_bps: link bandwidth in bytes per second (``None`` = infinite).
    """

    def __init__(self, delay_s: float, bandwidth_bps: float | None = None):
        if delay_s < 0:
            raise ValueError("latency cannot be negative")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.delay_s = delay_s
        self.bandwidth_bps = bandwidth_bps

    def sample(self, size_bytes: int) -> float:
        delay = self.delay_s
        if self.bandwidth_bps is not None:
            delay += size_bytes / self.bandwidth_bps
        return delay


class UniformLatency(LatencyModel):
    """Uniformly jittered latency in ``[low_s, high_s]`` (seeded for reproducibility)."""

    def __init__(self, low_s: float, high_s: float, seed: int = 0):
        if low_s < 0 or high_s < low_s:
            raise ValueError("invalid latency bounds")
        self.low_s = low_s
        self.high_s = high_s
        self._rng = random.Random(seed)

    def sample(self, size_bytes: int) -> float:
        return self._rng.uniform(self.low_s, self.high_s)


class LatencyMap:
    """A geo/WAN topology: named regions with per-pair latency models.

    The map answers ``model_for(source_region, destination_region)``. Pairs
    are *directed* — transatlantic routes are asymmetric in practice, and a
    scenario that reorders only one direction of a link is a different
    adversary than one that reorders both — so :meth:`set_pair` installs one
    direction unless told otherwise. Unlisted pairs fall back to ``default``
    (a generic WAN hop), and same-region traffic uses ``local`` (a LAN hop),
    so a map only needs to name the routes it cares about.
    """

    def __init__(self, regions, local: LatencyModel | None = None,
                 default: LatencyModel | None = None):
        regions = tuple(regions)
        if len(regions) != len(set(regions)) or not all(regions):
            raise ValueError("regions must be unique, non-empty names")
        self.regions = regions
        self.local = local or lan_profile()
        self.default = default or wan_profile()
        self._pairs: dict[tuple[str, str], LatencyModel] = {}

    def _check(self, region: str) -> None:
        if region not in self.regions:
            raise ValueError(f"unknown region {region!r} "
                             f"(expected one of {self.regions})")

    def set_pair(self, source: str, destination: str, model: LatencyModel,
                 symmetric: bool = False) -> None:
        """Assign a latency model to the ``source -> destination`` route."""
        self._check(source)
        self._check(destination)
        if source == destination:
            raise ValueError("same-region latency is the map's `local` model")
        self._pairs[(source, destination)] = model
        if symmetric:
            self._pairs[(destination, source)] = model

    def model_for(self, source: str, destination: str) -> LatencyModel:
        """The latency model for one directed region pair."""
        self._check(source)
        self._check(destination)
        if source == destination:
            return self.local
        return self._pairs.get((source, destination), self.default)

    def rtt_s(self, a: str, b: str, size_bytes: int = 0) -> float:
        """Round-trip time between two regions for a message of given size."""
        return (self.model_for(a, b).sample(size_bytes)
                + self.model_for(b, a).sample(size_bytes))


def lan_profile() -> LatencyModel:
    """A same-region cloud link: 0.5 ms propagation, 10 Gbit/s bandwidth."""
    return ConstantLatency(0.0005, bandwidth_bps=10e9 / 8)


def wan_profile() -> LatencyModel:
    """A cross-region link: 30 ms propagation, 1 Gbit/s bandwidth."""
    return ConstantLatency(0.030, bandwidth_bps=1e9 / 8)


def vsock_profile() -> LatencyModel:
    """The host↔enclave vsock hop: tens of microseconds, high bandwidth."""
    return ConstantLatency(0.00005, bandwidth_bps=20e9 / 8)


#: The canned three-region WAN map scenarios use (region names are what the
#: coverage model and ``Scenario.regions`` reference). One-way propagation
#: delays are deliberately asymmetric per direction so a delivery-time test
#: can tell the two directions of a route apart.
GEO_REGIONS = ("us-east", "eu-west", "ap-south")


def geo_profile() -> LatencyMap:
    """A three-region geo map with asymmetric cross-region routes.

    us-east↔eu-west is the fast transatlantic pair (~38/42 ms one way),
    us-east↔ap-south the long haul (~95/105 ms), eu-west↔ap-south in between
    (~62/68 ms). All cross-region links run at 1 Gbit/s; same-region traffic
    stays on the LAN profile.
    """
    wan_bandwidth = 1e9 / 8
    geo = LatencyMap(GEO_REGIONS)
    geo.set_pair("us-east", "eu-west", ConstantLatency(0.038, wan_bandwidth))
    geo.set_pair("eu-west", "us-east", ConstantLatency(0.042, wan_bandwidth))
    geo.set_pair("us-east", "ap-south", ConstantLatency(0.095, wan_bandwidth))
    geo.set_pair("ap-south", "us-east", ConstantLatency(0.105, wan_bandwidth))
    geo.set_pair("eu-west", "ap-south", ConstantLatency(0.062, wan_bandwidth))
    geo.set_pair("ap-south", "eu-west", ConstantLatency(0.068, wan_bandwidth))
    return geo
