"""A discrete-event scheduler: genuinely concurrent tasks over the network.

The synchronous model (``Network.run_until_idle``) can only *fake* request
concurrency: every payload must be on the wire before the first pump, and
nothing new can enter the network while it drains. This module adds the real
thing — an event loop over the existing :class:`~repro.net.clock.SimClock`
and the transport's delivery-time heap, with simulated tasks that yield on
send/receive instead of pumping:

* a :class:`SimTask` wraps a plain Python generator. The generator yields
  *commands* — :class:`Sleep` to advance simulated time, :class:`WaitBatch`
  to block on an in-flight :class:`~repro.net.rpc.PendingRpcBatch` — and is
  resumed with a wake reason (``"complete"``, ``"timeout"``, ``"elapsed"``,
  or ``"idle"``);
* the :class:`EventLoop` interleaves network deliveries and task timers in
  timestamp order, so hundreds of requests are concurrently in flight: new
  arrivals start while earlier responses are still queued behind a server's
  serial service queue, which is what makes queueing, head-of-line blocking,
  and p99-under-load measurable at all;
* responses are routed to waiting tasks by request id through a delivery
  observer, so a payload wakes exactly the task whose batch it answers — no
  O(tasks) broadcast per delivery;
* everything is deterministic under a fixed seed: the ready queue is FIFO,
  timers tie-break by creation order, and the optional event ``trace``
  records every scheduling decision so two identically seeded runs can be
  compared event by event.

Synchronous code composes with the loop: a task may call code that pumps
``run_until_idle`` internally (e.g. a live reshard's quiesce barrier); the
delivery observer keeps batch bookkeeping correct no matter which driver
performed a delivery, and affected tasks simply find their responses already
waiting when control returns to the loop.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import DecodingError, SimulationError
from repro.net.transport import Message, Network
from repro.wire.codec import decode
from repro.wire.framing import split_frames

__all__ = ["Sleep", "WaitBatch", "SimTask", "EventLoop"]


@dataclass(frozen=True)
class Sleep:
    """Yielded by a task to advance simulated time; resumed with ``"elapsed"``."""

    seconds: float


@dataclass
class WaitBatch:
    """Yielded by a task to block on an in-flight RPC batch.

    ``batch`` is a :class:`~repro.net.rpc.PendingRpcBatch` (anything with a
    ``client``, a ``pending`` id set, and a ``found`` response dict works).
    The task resumes with ``"complete"`` once every pending response arrived,
    ``"timeout"`` after ``timeout`` simulated seconds, or ``"idle"`` if the
    whole simulation ran out of events first (lost traffic, no timers) — the
    last two are the task's cue to retransmit.
    """

    batch: object
    timeout: float = 0.25


class SimTask:
    """One simulated task: a generator plus its scheduling state."""

    def __init__(self, name: str, gen: Generator):
        self.name = name
        self.gen = gen
        self.done = False
        self.result = None
        # Bumped on every wake; timers remember the generation they were
        # scheduled under, so a stale timer (its task was woken by something
        # else first) is recognized and discarded instead of double-waking.
        self.wake_generation = 0
        self.waiting_batch = None  # the WaitBatch.batch currently blocking us


class EventLoop:
    """Runs simulated tasks against one :class:`~repro.net.transport.Network`.

    Args:
        network: the transport whose delivery queue drives the simulation.
        max_events: hard budget on scheduling events; exceeding it raises
            :class:`~repro.errors.SimulationError` instead of spinning forever
            (a non-quiescing loop must fail fast, not hang CI).
        trace: record a ``(sim_time, kind, detail)`` tuple per scheduling
            event in :attr:`trace` — the deterministic-replay property tests
            compare these traces across identically seeded runs.
    """

    def __init__(self, network: Network, max_events: int = 1_000_000,
                 trace: bool = False):
        self.network = network
        self.clock = network.clock
        self.max_events = max_events
        self.trace: list | None = [] if trace else None
        self.tasks: list[SimTask] = []
        self._ready: deque = deque()  # (task, wake value)
        self._timers: list = []  # heap of (at, seq, task, generation, kind)
        self._seq = itertools.count()
        # client endpoint address -> {request id: (batch, task)}; filled by
        # WaitBatch registration, consumed by the delivery observer.
        self._waiters: dict[str, dict] = {}
        self._events = 0
        network.add_delivery_observer(self._on_delivery)

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str | None = None,
              start_at: float | None = None) -> SimTask:
        """Register a task; it starts immediately or at ``start_at`` sim time."""
        task = SimTask(name or f"task-{len(self.tasks)}", gen)
        self.tasks.append(task)
        self._trace("spawn", task.name)
        if start_at is None or start_at <= self.clock.now():
            self._ready.append((task, None))
        else:
            self._schedule(task, start_at, "start")
        return task

    def run(self) -> int:
        """Run until every task finished (or timed out its retries).

        Returns the number of scheduling events processed. Raises
        :class:`~repro.errors.SimulationError` when ``max_events`` is
        exceeded — the fail-fast guard against a non-quiescing loop.
        """
        while True:
            while self._ready:
                task, value = self._ready.popleft()
                if task.done:
                    continue
                self._step(task, value)
            if not self._advance():
                return self._events

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _step(self, task: SimTask, value) -> None:
        self._count_event()
        try:
            command = task.gen.send(value)
        except StopIteration as stop:
            task.done = True
            task.result = stop.value
            self._trace("done", task.name)
            return
        if isinstance(command, Sleep):
            self._trace("sleep", task.name)
            self._schedule(task, self.clock.now() + max(0.0, command.seconds),
                           "sleep")
        elif isinstance(command, WaitBatch):
            self._register_wait(task, command)
        else:
            raise SimulationError(
                f"task {task.name} yielded unsupported command {command!r}")

    def _schedule(self, task: SimTask, at: float, kind: str) -> None:
        heapq.heappush(self._timers,
                       (at, next(self._seq), task, task.wake_generation, kind))

    def _wake(self, task: SimTask, value) -> None:
        task.wake_generation += 1  # invalidates any outstanding timer
        task.waiting_batch = None
        self._ready.append((task, value))

    def _register_wait(self, task: SimTask, command: WaitBatch) -> None:
        batch = command.batch
        client = batch.client
        # Responses that landed before this wait (another task's delivery, or
        # a synchronous pump) are parked in the shared inbox; drain them
        # first so a satisfied batch never blocks.
        if batch.pending:
            client._drain_inbox(batch.pending, batch.found)
        if not batch.pending:
            self._trace("ready", task.name)
            self._wake(task, "complete")
            return
        waiters = self._waiters.setdefault(client.endpoint.address, {})
        for request_id in batch.pending:
            waiters[request_id] = (batch, task)
        task.waiting_batch = batch
        self._trace("wait", task.name)
        self._schedule(task, self.clock.now() + max(0.0, command.timeout),
                       "timeout")

    def _deregister(self, task: SimTask) -> None:
        batch = task.waiting_batch
        if batch is None:
            return
        address = batch.client.endpoint.address
        waiters = self._waiters.get(address)
        if waiters:
            for request_id in list(batch.pending):
                entry = waiters.get(request_id)
                if entry is not None and entry[0] is batch:
                    waiters.pop(request_id)
            if not waiters:
                self._waiters.pop(address, None)
        task.waiting_batch = None

    # ------------------------------------------------------------------
    # Event sources: deliveries and timers
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Process the next event in timestamp order; False when fully idle."""
        next_delivery = self.network.next_delivery_at()
        next_timer = self._next_timer_at()
        if next_delivery is None and next_timer is None:
            return self._wake_idle()
        if next_timer is None or (next_delivery is not None
                                  and next_delivery <= next_timer):
            self._count_event()
            message = self.network.deliver_next()
            if message is not None:
                self._trace("deliver",
                            f"{message.source}->{message.destination}")
            return True
        return self._fire_timer()

    def _next_timer_at(self) -> Optional[float]:
        while self._timers:
            at, _, task, generation, _ = self._timers[0]
            if task.done or generation != task.wake_generation:
                heapq.heappop(self._timers)  # stale: task was woken elsewhere
                continue
            return at
        return None

    def _fire_timer(self) -> bool:
        at, _, task, _, kind = heapq.heappop(self._timers)
        self.clock.advance_to(at)
        self._count_event()
        if kind == "timeout":
            self._deregister(task)
            self._trace("timeout", task.name)
            self._wake(task, "timeout")
        elif kind == "start":
            self._trace("start", task.name)
            self._wake(task, None)
        else:
            self._trace("elapsed", task.name)
            self._wake(task, "elapsed")
        return True

    def _wake_idle(self) -> bool:
        """No deliveries, no timers: wake batch-waiters so they retransmit."""
        woke = False
        for task in self.tasks:
            if not task.done and task.waiting_batch is not None:
                self._deregister(task)
                self._trace("idle", task.name)
                self._wake(task, "idle")
                woke = True
        return woke

    def _on_delivery(self, message: Message) -> None:
        """Route a delivered payload's response frames to waiting batches.

        Runs for *every* delivery on the network (the transport's delivery
        observer), whichever driver performed it. Frames whose request id a
        registered batch is waiting on go straight into that batch's
        ``found`` — and if the payload is fully consumed, the parked message
        is removed so the synchronous drain path never re-decodes it. A task
        wakes the moment its batch's pending set empties.
        """
        waiters = self._waiters.get(message.destination)
        if not waiters:
            return
        try:
            frames = split_frames(message.payload)
        except DecodingError:
            return
        completed_tasks: list[SimTask] = []
        matched = 0
        for frame in frames:
            try:
                response = decode(frame)
            except DecodingError:
                continue
            request_id = (response.get("id")
                          if isinstance(response, dict) else None)
            entry = waiters.pop(request_id, None) if request_id is not None else None
            if entry is None:
                continue
            batch, task = entry
            batch.found[request_id] = response
            batch.pending.discard(request_id)
            matched += 1
            if not batch.pending and not task.done:
                completed_tasks.append(task)
        if matched == len(frames):
            endpoint = self.network._endpoints.get(message.destination)
            if (endpoint is not None and endpoint.inbox
                    and endpoint.inbox[-1] is message):
                endpoint.inbox.pop()
        if not waiters:
            self._waiters.pop(message.destination, None)
        for task in completed_tasks:
            self._trace("ready", task.name)
            self._wake(task, "complete")

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _count_event(self) -> None:
        self._events += 1
        if self._events > self.max_events:
            raise SimulationError(
                f"event loop exceeded {self.max_events} events without "
                "quiescing (runaway retransmission or a task that never ends)")

    def _trace(self, kind: str, detail: str) -> None:
        if self.trace is not None:
            self.trace.append((round(self.clock.now(), 9), kind, detail))
