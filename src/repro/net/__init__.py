"""Simulated networking substrate.

The paper's prototype runs on a cloud testbed where the client, the host-side
forwarder, the enclave-side framework, and the sandboxed application all talk
over sockets; Table 3 attributes the TEE overhead specifically to two extra
socket hops. This package reproduces that communication structure in process:

* :mod:`repro.net.clock` — a simulated clock that protocols charge latency to,
  kept separate from wall-clock benchmarking time;
* :mod:`repro.net.latency` — pluggable latency/bandwidth models (LAN, WAN,
  constant, uniform);
* :mod:`repro.net.transport` — an in-memory network of addressable endpoints
  with delivery queues and per-message accounting;
* :mod:`repro.net.eventloop` — a discrete-event scheduler over the transport's
  delivery queue: simulated tasks yield on send/receive so thousands of
  requests can be genuinely in flight at once;
* :mod:`repro.net.rpc` — a small request/response RPC layer on top of the
  transport using the canonical codec;
* :mod:`repro.net.vsock` — a vsock-style socket hop/proxy pair that models the
  host↔enclave forwarding path (the source of the paper's TEE overhead).
"""

from repro.net.clock import SimClock
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    NoLatency,
    UniformLatency,
    lan_profile,
    wan_profile,
)
from repro.net.transport import Endpoint, Message, Network, NetworkStats
from repro.net.eventloop import EventLoop, SimTask, Sleep, WaitBatch
from repro.net.rpc import RpcClient, RpcServer
from repro.net.vsock import SocketHop, VsockProxyChain

__all__ = [
    "SimClock",
    "LatencyModel",
    "NoLatency",
    "ConstantLatency",
    "UniformLatency",
    "lan_profile",
    "wan_profile",
    "Endpoint",
    "Message",
    "Network",
    "NetworkStats",
    "EventLoop",
    "SimTask",
    "Sleep",
    "WaitBatch",
    "RpcClient",
    "RpcServer",
    "SocketHop",
    "VsockProxyChain",
]
