"""vsock-style socket hops between a host and its enclave.

AWS Nitro enclaves have no network interface of their own: all traffic enters
through a vsock socket on the parent instance and is forwarded into the
enclave, and the paper's prototype adds a second socket inside the enclave
between the framework and the sandboxed application. Table 3 attributes the
TEE overhead ("54.9% vs 46.1%") to exactly these two extra sockets.

:class:`SocketHop` models one such hop: forwarding a payload performs real
work (framing, buffer copies, an integrity checksum — the kind of per-byte
cost a real proxy pays) and charges a small simulated latency.
:class:`VsockProxyChain` composes hops so a deployment can describe the full
client → host proxy → enclave framework → sandboxed app path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashes import sha256
from repro.errors import NetworkError
from repro.net.clock import SimClock
from repro.net.latency import LatencyModel, vsock_profile
from repro.wire.framing import FrameReader, frame_message

__all__ = ["SocketHop", "VsockProxyChain"]

_COPY_CHUNK = 4096


@dataclass
class HopStats:
    """Per-hop forwarding statistics."""

    forwarded_messages: int = 0
    forwarded_bytes: int = 0
    simulated_latency: float = 0.0


class SocketHop:
    """One socket forwarding hop (e.g. host→enclave vsock, or framework→app socket).

    Forwarding is deliberately implemented as real work — chunked buffer
    copies through a reassembly buffer plus a checksum — because the paper's
    measured TEE overhead is the CPU and syscall cost of moving bytes through
    extra sockets, not propagation delay.
    """

    def __init__(self, name: str, clock: SimClock | None = None,
                 latency: LatencyModel | None = None):
        self.name = name
        self.clock = clock or SimClock()
        self.latency = latency or vsock_profile()
        self.stats = HopStats()
        self._reader = FrameReader()

    def forward(self, payload: bytes) -> bytes:
        """Forward a payload across the hop and return it on the far side."""
        framed = frame_message(payload)
        # Chunked copy through the hop's staging buffer, as a socket proxy would.
        staging = bytearray()
        for start in range(0, len(framed), _COPY_CHUNK):
            staging += framed[start:start + _COPY_CHUNK]
        frames = self._reader.feed(bytes(staging))
        if len(frames) != 1:
            raise NetworkError(f"hop {self.name} expected one frame, saw {len(frames)}")
        delivered = frames[0]
        # Integrity checksum on both sides, mirroring TLS/AEAD per-record costs.
        if sha256(delivered) != sha256(payload):
            raise NetworkError(f"hop {self.name} corrupted a payload")
        delay = self.latency.sample(len(framed))
        self.clock.advance(delay)
        self.stats.forwarded_messages += 1
        self.stats.forwarded_bytes += len(framed)
        self.stats.simulated_latency += delay
        return delivered


class VsockProxyChain:
    """A chain of socket hops a request traverses in order (and in reverse for replies)."""

    def __init__(self, hops: list[SocketHop]):
        self.hops = list(hops)

    @classmethod
    def nitro_style(cls, clock: SimClock | None = None) -> "VsockProxyChain":
        """The paper's deployment: client→framework vsock hop + framework→app socket hop."""
        clock = clock or SimClock()
        return cls([
            SocketHop("host-to-enclave-vsock", clock=clock),
            SocketHop("framework-to-sandbox-socket", clock=clock),
        ])

    def request(self, payload: bytes) -> bytes:
        """Carry a request payload inward through every hop."""
        for hop in self.hops:
            payload = hop.forward(payload)
        return payload

    def respond(self, payload: bytes) -> bytes:
        """Carry a response payload back outward through every hop in reverse."""
        for hop in reversed(self.hops):
            payload = hop.forward(payload)
        return payload

    def round_trip(self, payload: bytes) -> bytes:
        """Forward a payload in and back out again (used by loopback health checks)."""
        return self.respond(self.request(payload))

    @property
    def total_forwarded_messages(self) -> int:
        """Total messages forwarded across all hops."""
        return sum(h.stats.forwarded_messages for h in self.hops)

    @property
    def total_simulated_latency(self) -> float:
        """Total simulated latency charged across all hops."""
        return sum(h.stats.simulated_latency for h in self.hops)
