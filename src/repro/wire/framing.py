"""Length-prefixed message framing for simulated byte streams.

The vsock-style proxy between the host and the enclave (and the socket between
the framework and the sandboxed application) carries a byte stream; framing
turns that stream back into discrete messages. Each frame is ``length (4 bytes,
big-endian) || payload``.
"""

from __future__ import annotations

from repro.errors import DecodingError

__all__ = ["frame_message", "split_frames", "FrameReader"]

MAX_FRAME_SIZE = 16 * 1024 * 1024  # 16 MiB — ample for code packages


def frame_message(payload: bytes) -> bytes:
    """Wrap a payload in a length-prefixed frame."""
    if len(payload) > MAX_FRAME_SIZE:
        raise DecodingError("frame payload too large")
    return len(payload).to_bytes(4, "big") + payload


def split_frames(data: bytes) -> list[bytes]:
    """Split a byte string containing zero or more complete frames."""
    reader = FrameReader()
    frames = reader.feed(data)
    if reader.pending_bytes:
        raise DecodingError("trailing partial frame")
    return frames


class FrameReader:
    """Incremental frame parser for streamed data.

    Feed arbitrary chunks with :meth:`feed`; complete frames are returned as
    they become available and partial data is buffered internally.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._failed = False

    @property
    def pending_bytes(self) -> int:
        """Number of buffered bytes that do not yet form a complete frame."""
        return len(self._buffer)

    @property
    def failed(self) -> bool:
        """Whether the stream hit an unrecoverable framing error (see :meth:`reset`)."""
        return self._failed

    def reset(self) -> None:
        """Discard all buffered state and clear the failed flag.

        After an oversized-frame error the stream position is lost (there is
        no way to know where the next frame starts), so the reader drops its
        buffer deterministically; ``reset`` re-arms it for a fresh stream.
        """
        self._buffer.clear()
        self._failed = False

    def feed(self, chunk: bytes) -> list[bytes]:
        """Add a chunk of stream data; return any frames completed by it.

        Raises:
            DecodingError: a frame header announced an oversized frame, or the
                reader is in the failed state from a previous oversized frame.
                The poisoned buffer is discarded (once desynchronized, the
                stream cannot be re-framed), so the error is reported
                deterministically instead of re-raising over stale bytes;
                call :meth:`reset` to reuse the reader for a new stream.
        """
        if self._failed:
            raise DecodingError("frame stream previously failed; reset() to reuse the reader")
        self._buffer.extend(chunk)
        frames = []
        while True:
            if len(self._buffer) < 4:
                break
            length = int.from_bytes(self._buffer[:4], "big")
            if length > MAX_FRAME_SIZE:
                self._buffer.clear()
                self._failed = True
                raise DecodingError("incoming frame exceeds maximum size")
            if len(self._buffer) < 4 + length:
                break
            frames.append(bytes(self._buffer[4:4 + length]))
            del self._buffer[:4 + length]
        return frames
