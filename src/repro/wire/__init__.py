"""Canonical binary wire format used by every protocol message in the system.

Distributed-trust auditing relies on *canonical* encodings: when a client
compares digests or signed structures received from different trust domains,
byte-level equality has to mean semantic equality. :mod:`repro.wire.codec`
provides a small, deterministic, length-prefixed encoding for the handful of
types the protocols need (ints, bytes, strings, bools, lists, dicts, None),
and :mod:`repro.wire.framing` provides length-prefixed message framing for the
simulated socket streams.
"""

from repro.wire.codec import encode, decode, canonical_digest
from repro.wire.framing import FrameReader, frame_message, split_frames

__all__ = [
    "encode",
    "decode",
    "canonical_digest",
    "FrameReader",
    "frame_message",
    "split_frames",
]
