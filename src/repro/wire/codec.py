"""A deterministic, self-describing binary codec.

The format is deliberately tiny — a tag byte followed by a big-endian length
and the payload — and biased toward canonical output:

* dictionary keys are sorted lexicographically before encoding, so two
  semantically equal dicts always serialize identically;
* integers use a minimal-length two's-complement-free encoding (sign byte +
  magnitude), so there is exactly one encoding per value;
* no floats: protocol messages that need fractional values carry scaled
  integers instead, which keeps encodings exact and comparable.

Tags::

    N  None          I  int            B  bytes        S  str (UTF-8)
    T  True/False    L  list           D  dict

The implementation is the throughput floor of the whole system — every RPC
frame, sandbox boundary copy, and digest passes through here — so both
directions are written allocation-lean: encoding appends into one shared
``bytearray`` (no per-value generator frames or intermediate joins), and
decoding walks integer offsets with the length/bounds checks inlined. The
wire format and every canonical-form rejection are unchanged.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256
from repro.errors import DecodingError, EncodingError

__all__ = ["encode", "decode", "canonical_digest"]

_MAX_DEPTH = 64


def encode(value) -> bytes:
    """Encode a Python value into canonical bytes.

    Supported types: ``None``, ``bool``, ``int``, ``bytes``, ``str``, ``list``,
    ``tuple`` (encoded as a list), and ``dict`` with string keys.
    """
    out = bytearray()
    _encode_into(out, value, 0)
    return bytes(out)


def _encode_into(out: bytearray, value, depth: int) -> None:
    # Exact-type checks first, ordered by frequency on the RPC hot path.
    # ``type(x) is int`` is both faster than isinstance and safely excludes
    # bool (a subclass of int, which must encode as T, not I); subclasses
    # fall through to the isinstance chain at the bottom.
    if depth > _MAX_DEPTH:
        raise EncodingError("value nesting too deep to encode")
    kind = type(value)
    if kind is int:
        if value >= 0:
            size = (value.bit_length() + 7) >> 3
            out += b"I\x00"
        else:
            value = -value
            size = (value.bit_length() + 7) >> 3
            out += b"I\x01"
        out += size.to_bytes(4, "big")
        if size:
            out += value.to_bytes(size, "big")
    elif kind is str:
        raw = value.encode("utf-8")
        size = len(raw)
        if size > 0xFFFFFFFF:
            raise EncodingError("length out of range")
        out += b"S"
        out += size.to_bytes(4, "big")
        out += raw
    elif kind is bytes:
        size = len(value)
        if size > 0xFFFFFFFF:
            raise EncodingError("length out of range")
        out += b"B"
        out += size.to_bytes(4, "big")
        out += value
    elif kind is dict:
        size = len(value)
        if size > 0xFFFFFFFF:
            raise EncodingError("length out of range")
        try:
            keys = sorted(value)
        except TypeError:
            raise EncodingError("dict keys must be strings") from None
        out += b"D"
        out += size.to_bytes(4, "big")
        next_depth = depth + 1
        for key in keys:
            if type(key) is not str:
                raise EncodingError("dict keys must be strings")
            raw = key.encode("utf-8")
            out += len(raw).to_bytes(4, "big")
            out += raw
            _encode_into(out, value[key], next_depth)
    elif kind is list or kind is tuple:
        size = len(value)
        if size > 0xFFFFFFFF:
            raise EncodingError("length out of range")
        out += b"L"
        out += size.to_bytes(4, "big")
        next_depth = depth + 1
        for item in value:
            _encode_into(out, item, next_depth)
    elif value is None:
        out += b"N"
    elif kind is bool:
        out += b"T\x01" if value else b"T\x00"
    elif kind is bytearray:
        size = len(value)
        if size > 0xFFFFFFFF:
            raise EncodingError("length out of range")
        out += b"B"
        out += size.to_bytes(4, "big")
        out += value
    # Subclass fallbacks, in the original precedence order (bool before int).
    elif isinstance(value, bool):
        out += b"T\x01" if value else b"T\x00"
    elif isinstance(value, int):
        _encode_into(out, int(value), depth)
    elif isinstance(value, bytes):
        _encode_into(out, bytes(value), depth)
    elif isinstance(value, bytearray):
        _encode_into(out, bytes(value), depth)
    elif isinstance(value, str):
        _encode_into(out, str(value), depth)
    elif isinstance(value, (list, tuple)):
        size = len(value)
        if size > 0xFFFFFFFF:
            raise EncodingError("length out of range")
        out += b"L"
        out += size.to_bytes(4, "big")
        next_depth = depth + 1
        for item in value:
            _encode_into(out, item, next_depth)
    elif isinstance(value, dict):
        _encode_into(out, dict(value), depth)
    else:
        raise EncodingError(f"cannot encode values of type {type(value).__name__}")


def decode(data: bytes):
    """Decode bytes produced by :func:`encode`; rejects trailing garbage."""
    value, offset = _decode_value(data, 0, 0)
    if offset != len(data):
        raise DecodingError("trailing bytes after decoded value")
    return value


def _decode_value(data: bytes, offset: int, depth: int):
    if depth > _MAX_DEPTH:
        raise DecodingError("value nesting too deep to decode")
    size = len(data)
    if offset >= size:
        raise DecodingError("unexpected end of input")
    tag = data[offset]
    offset += 1
    if tag == 0x49:  # I
        if offset >= size:
            raise DecodingError("truncated int sign")
        negative = data[offset] == 1
        offset += 1
        end = offset + 4
        if end > size:
            raise DecodingError("truncated input")
        length = int.from_bytes(data[offset:end], "big")
        offset = end
        end = offset + length
        if end > size:
            raise DecodingError("truncated input")
        raw = data[offset:end]
        magnitude = int.from_bytes(raw, "big") if raw else 0
        if magnitude == 0 and negative:
            raise DecodingError("non-canonical negative zero")
        if raw and raw[0] == 0:
            raise DecodingError("non-canonical int with leading zero")
        return (-magnitude if negative else magnitude), end
    if tag == 0x44:  # D
        end = offset + 4
        if end > size:
            raise DecodingError("truncated input")
        count = int.from_bytes(data[offset:end], "big")
        offset = end
        result = {}
        previous_key = None
        next_depth = depth + 1
        for _ in range(count):
            end = offset + 4
            if end > size:
                raise DecodingError("truncated input")
            key_length = int.from_bytes(data[offset:end], "big")
            offset = end
            end = offset + key_length
            if end > size:
                raise DecodingError("truncated input")
            try:
                key = data[offset:end].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodingError("invalid UTF-8 in dict key") from exc
            if previous_key is not None and key <= previous_key:
                raise DecodingError("dict keys not in canonical order")
            previous_key = key
            value, offset = _decode_value(data, end, next_depth)
            result[key] = value
        return result, offset
    if tag == 0x4C:  # L
        end = offset + 4
        if end > size:
            raise DecodingError("truncated input")
        count = int.from_bytes(data[offset:end], "big")
        offset = end
        items = []
        append = items.append
        next_depth = depth + 1
        for _ in range(count):
            item, offset = _decode_value(data, offset, next_depth)
            append(item)
        return items, offset
    if tag == 0x42:  # B
        end = offset + 4
        if end > size:
            raise DecodingError("truncated input")
        length = int.from_bytes(data[offset:end], "big")
        offset = end
        end = offset + length
        if end > size:
            raise DecodingError("truncated input")
        return data[offset:end], end
    if tag == 0x53:  # S
        end = offset + 4
        if end > size:
            raise DecodingError("truncated input")
        length = int.from_bytes(data[offset:end], "big")
        offset = end
        end = offset + length
        if end > size:
            raise DecodingError("truncated input")
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise DecodingError("invalid UTF-8 in string") from exc
    if tag == 0x4E:  # N
        return None, offset
    if tag == 0x54:  # T
        if offset >= size:
            raise DecodingError("truncated bool")
        return data[offset] == 1, offset + 1
    raise DecodingError(f"unknown tag {data[offset - 1:offset]!r}")


def canonical_digest(value) -> bytes:
    """SHA-256 over the canonical encoding of ``value``.

    This is how the framework computes code-package digests, update-manifest
    digests, and the signed payloads of tree heads: the digest of a structure
    is well-defined regardless of which party computes it.
    """
    return sha256(encode(value))
