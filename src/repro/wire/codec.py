"""A deterministic, self-describing binary codec.

The format is deliberately tiny — a tag byte followed by a big-endian length
and the payload — and biased toward canonical output:

* dictionary keys are sorted lexicographically before encoding, so two
  semantically equal dicts always serialize identically;
* integers use a minimal-length two's-complement-free encoding (sign byte +
  magnitude), so there is exactly one encoding per value;
* no floats: protocol messages that need fractional values carry scaled
  integers instead, which keeps encodings exact and comparable.

Tags::

    N  None          I  int            B  bytes        S  str (UTF-8)
    T  True/False    L  list           D  dict
"""

from __future__ import annotations

from repro.crypto.hashes import sha256
from repro.errors import DecodingError, EncodingError

__all__ = ["encode", "decode", "canonical_digest"]

_MAX_DEPTH = 64


def encode(value) -> bytes:
    """Encode a Python value into canonical bytes.

    Supported types: ``None``, ``bool``, ``int``, ``bytes``, ``str``, ``list``,
    ``tuple`` (encoded as a list), and ``dict`` with string keys.
    """
    return b"".join(_encode_value(value, 0))


def _encode_value(value, depth: int):
    if depth > _MAX_DEPTH:
        raise EncodingError("value nesting too deep to encode")
    if value is None:
        yield b"N"
    elif isinstance(value, bool):
        # bool must be checked before int (bool is a subclass of int).
        yield b"T" + (b"\x01" if value else b"\x00")
    elif isinstance(value, int):
        yield _encode_int(value)
    elif isinstance(value, bytes):
        yield b"B" + _length(len(value)) + value
    elif isinstance(value, bytearray):
        yield b"B" + _length(len(value)) + bytes(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        yield b"S" + _length(len(raw)) + raw
    elif isinstance(value, (list, tuple)):
        yield b"L" + _length(len(value))
        for item in value:
            yield from _encode_value(item, depth + 1)
    elif isinstance(value, dict):
        keys = list(value.keys())
        if not all(isinstance(k, str) for k in keys):
            raise EncodingError("dict keys must be strings")
        if len(set(keys)) != len(keys):
            raise EncodingError("dict has duplicate keys")
        yield b"D" + _length(len(keys))
        for key in sorted(keys):
            raw = key.encode("utf-8")
            yield _length(len(raw)) + raw
            yield from _encode_value(value[key], depth + 1)
    else:
        raise EncodingError(f"cannot encode values of type {type(value).__name__}")


def _encode_int(value: int) -> bytes:
    sign = b"\x01" if value < 0 else b"\x00"
    magnitude = abs(value)
    if magnitude == 0:
        raw = b""
    else:
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
    return b"I" + sign + _length(len(raw)) + raw


def _length(n: int) -> bytes:
    if n < 0 or n > 0xFFFFFFFF:
        raise EncodingError("length out of range")
    return n.to_bytes(4, "big")


def decode(data: bytes):
    """Decode bytes produced by :func:`encode`; rejects trailing garbage."""
    value, offset = _decode_value(data, 0, 0)
    if offset != len(data):
        raise DecodingError("trailing bytes after decoded value")
    return value


def _decode_value(data: bytes, offset: int, depth: int):
    if depth > _MAX_DEPTH:
        raise DecodingError("value nesting too deep to decode")
    if offset >= len(data):
        raise DecodingError("unexpected end of input")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        if offset >= len(data):
            raise DecodingError("truncated bool")
        return data[offset] == 1, offset + 1
    if tag == b"I":
        if offset >= len(data):
            raise DecodingError("truncated int sign")
        negative = data[offset] == 1
        offset += 1
        length, offset = _read_length(data, offset)
        raw = _read_bytes(data, offset, length)
        offset += length
        magnitude = int.from_bytes(raw, "big") if raw else 0
        if magnitude == 0 and negative:
            raise DecodingError("non-canonical negative zero")
        if raw and raw[0] == 0:
            raise DecodingError("non-canonical int with leading zero")
        return (-magnitude if negative else magnitude), offset
    if tag == b"B":
        length, offset = _read_length(data, offset)
        raw = _read_bytes(data, offset, length)
        return raw, offset + length
    if tag == b"S":
        length, offset = _read_length(data, offset)
        raw = _read_bytes(data, offset, length)
        try:
            return raw.decode("utf-8"), offset + length
        except UnicodeDecodeError as exc:
            raise DecodingError("invalid UTF-8 in string") from exc
    if tag == b"L":
        count, offset = _read_length(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset, depth + 1)
            items.append(item)
        return items, offset
    if tag == b"D":
        count, offset = _read_length(data, offset)
        result = {}
        previous_key = None
        for _ in range(count):
            key_length, offset = _read_length(data, offset)
            key_raw = _read_bytes(data, offset, key_length)
            offset += key_length
            try:
                key = key_raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodingError("invalid UTF-8 in dict key") from exc
            if previous_key is not None and key <= previous_key:
                raise DecodingError("dict keys not in canonical order")
            previous_key = key
            value, offset = _decode_value(data, offset, depth + 1)
            result[key] = value
        return result, offset
    raise DecodingError(f"unknown tag {tag!r}")


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    raw = _read_bytes(data, offset, 4)
    return int.from_bytes(raw, "big"), offset + 4


def _read_bytes(data: bytes, offset: int, length: int) -> bytes:
    if offset + length > len(data):
        raise DecodingError("truncated input")
    return data[offset:offset + length]


def canonical_digest(value) -> bytes:
    """SHA-256 over the canonical encoding of ``value``.

    This is how the framework computes code-package digests, update-manifest
    digests, and the signed payloads of tree heads: the digest of a structure
    is well-defined regardless of which party computes it.
    """
    return sha256(encode(value))
