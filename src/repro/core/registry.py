"""The open-source release registry.

The paper requires the developer to "publish her code to allow clients and
third-party auditors to inspect it and check that it hashes to the value
provided by the TEEs" (§1, §3.3). The registry is that publication point: it
stores every released package (and the framework's own source), keyed by
digest, alongside the signed update manifest that introduced it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.package import CodePackage, UpdateManifest
from repro.errors import AuditError

__all__ = ["ReleaseRecord", "ReleaseRegistry"]


@dataclass(frozen=True)
class ReleaseRecord:
    """One published release: the package source plus its signed manifest."""

    package: CodePackage
    manifest: UpdateManifest


class ReleaseRegistry:
    """Where the developer publishes source code for public inspection."""

    def __init__(self, framework_source_text: str):
        self._framework_source = framework_source_text
        self._releases: dict[bytes, ReleaseRecord] = {}
        self._by_version: dict[str, bytes] = {}

    # ------------------------------------------------------------------
    # Developer side
    # ------------------------------------------------------------------
    def publish(self, package: CodePackage, manifest: UpdateManifest) -> bytes:
        """Publish a release; returns the package digest.

        Raises:
            AuditError: the manifest does not describe this package.
        """
        digest = package.digest()
        if manifest.package_digest != digest:
            raise AuditError("manifest digest does not match the published package")
        if manifest.version != package.version or manifest.package_name != package.name:
            raise AuditError("manifest metadata does not match the published package")
        self._releases[digest] = ReleaseRecord(package, manifest)
        self._by_version[package.version] = digest
        return digest

    # ------------------------------------------------------------------
    # Public (client / auditor) side
    # ------------------------------------------------------------------
    def framework_source(self) -> str:
        """The published source of the application-independent framework."""
        return self._framework_source

    def lookup(self, digest: bytes) -> ReleaseRecord:
        """Fetch the release whose package hashes to ``digest``."""
        record = self._releases.get(bytes(digest))
        if record is None:
            raise AuditError(f"no published release with digest {bytes(digest).hex()[:16]}...")
        return record

    def lookup_version(self, version: str) -> ReleaseRecord:
        """Fetch a release by version string."""
        digest = self._by_version.get(version)
        if digest is None:
            raise AuditError(f"no published release with version {version!r}")
        return self._releases[digest]

    def versions(self) -> list[str]:
        """All published versions."""
        return sorted(self._by_version)

    def digests(self) -> list[bytes]:
        """All published package digests."""
        return list(self._releases)

    def contains(self, digest: bytes) -> bool:
        """Whether a digest corresponds to a published release."""
        return bytes(digest) in self._releases

    def verify_source(self, digest: bytes) -> bool:
        """Recompute the digest of the published source and compare.

        This is the auditor's "does the published code hash to the value the
        TEEs reported" check.
        """
        record = self.lookup(digest)
        return record.package.digest() == bytes(digest)
