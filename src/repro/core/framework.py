"""The application-independent framework (the code sealed into every TEE).

This is the layer of indirection §4.1 of the paper introduces. Instead of
sealing the application itself into the enclave (which would make updates
impossible), the enclave seals this framework plus the developer's public key.
The framework then:

* accepts application code and signed code updates, verifying each manifest
  against the sealed developer key and enforcing a strictly increasing
  sequence number (no replay, no rollback);
* **announces** every update to clients *before* switching to the new code —
  because the new code is untrusted, the announcement cannot be left to it;
* appends the digest of every version it has ever run to an append-only
  per-TEE digest log (a hash chain), so a malicious developer cannot erase
  evidence of malicious code;
* executes the application inside a sandbox (WVM bytecode or restricted
  Python) so the application cannot tamper with the framework, the log, or
  the sealed key; and
* answers audit queries: current digest, digest history, and the binding that
  goes into attestation user data.

The framework is deliberately application-independent: nothing in this module
knows anything about key backup, threshold signing, or private aggregation.
"""

from __future__ import annotations

import inspect
import sys
from dataclasses import dataclass

from repro.core.package import CodePackage, UpdateManifest
from repro.crypto.keys import VerifyingKey
from repro.errors import FrameworkError, UnauthorizedUpdateError, UpdateRejectedError
from repro.net.clock import SimClock
from repro.sandbox.pysandbox import PythonSandbox
from repro.sandbox.wvm.assembler import assemble
from repro.sandbox.wvm.vm import WvmLimits
from repro.sandbox.wvm_executor import WvmExecutor
from repro.transparency.log import DigestLog
from repro.wire.codec import canonical_digest, encode

__all__ = ["framework_source", "UpdateAnnouncement", "FrameworkState", "TrustDomainFramework"]


def framework_source() -> str:
    """The framework's own published source code.

    This is the text the developer open-sources and whose measurement clients
    expect to see in every attestation: the enclave is provisioned with exactly
    these bytes.
    """
    return inspect.getsource(sys.modules[__name__])


@dataclass(frozen=True)
class UpdateAnnouncement:
    """A notification that the framework is about to switch to new code."""

    sequence: int
    version: str
    package_digest: bytes
    announced_at: float

    def to_dict(self) -> dict:
        """Plain-data form served to clients."""
        return {
            "sequence": self.sequence,
            "version": self.version,
            "package_digest": self.package_digest,
            "announced_at_us": int(self.announced_at * 1_000_000),
        }


@dataclass(frozen=True)
class FrameworkState:
    """A snapshot of what the framework is currently running."""

    domain_id: str
    app_digest: bytes
    app_version: str
    sequence: int
    log_head: bytes
    log_length: int


class TrustDomainFramework:
    """One trust domain's instance of the application-independent framework."""

    def __init__(self, domain_id: str, developer_public_key: VerifyingKey,
                 clock: SimClock | None = None, wvm_limits: WvmLimits | None = None):
        self.domain_id = domain_id
        self._developer_key = developer_public_key
        self._clock = clock or SimClock()
        self._wvm_limits = wvm_limits or WvmLimits()
        self._log = DigestLog(domain_id)
        self._announcements: list[UpdateAnnouncement] = []
        self._current_package: CodePackage | None = None
        self._current_manifest: UpdateManifest | None = None
        self._sequence = -1
        self._wvm_executor: WvmExecutor | None = None
        self._python_sandbox: PythonSandbox | None = None
        self.update_listeners = []

    # ------------------------------------------------------------------
    # Enclave entry point
    # ------------------------------------------------------------------
    def dispatch(self, method: str, params=None):
        """Route a request from outside the enclave to a framework operation.

        This is the single entry point installed on the simulated enclave; it
        accepts and returns plain data only.
        """
        handlers = {
            "install_update": self._rpc_install_update,
            "invoke": self._rpc_invoke,
            "invoke_many": self._rpc_invoke_many,
            "get_state": self._rpc_get_state,
            "get_log": self._rpc_get_log,
            "get_announcements": self._rpc_get_announcements,
            "health": lambda _params: {"ok": True, "domain_id": self.domain_id},
        }
        handler = handlers.get(method)
        if handler is None:
            raise FrameworkError(f"framework has no method {method!r}")
        return handler(params or {})

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def install_update(self, manifest: UpdateManifest, package: CodePackage) -> dict:
        """Verify and install a signed code update.

        The order of operations is the one the paper's design requires:
        announce first, log second, only then run the new code.
        """
        if not manifest.verify(self._developer_key):
            raise UnauthorizedUpdateError(
                f"{self.domain_id}: update signature does not verify under the sealed developer key"
            )
        digest = package.digest()
        if digest != manifest.package_digest:
            raise UpdateRejectedError(
                f"{self.domain_id}: package digest does not match the signed manifest"
            )
        if manifest.version != package.version or manifest.package_name != package.name:
            raise UpdateRejectedError(f"{self.domain_id}: manifest metadata mismatch")
        if manifest.sequence != self._sequence + 1:
            raise UpdateRejectedError(
                f"{self.domain_id}: expected update sequence {self._sequence + 1}, "
                f"got {manifest.sequence} (replay or rollback)"
            )

        # 1. Announce the pending update so clients learn about it even if the
        #    new code is malicious and would rather stay quiet.
        announcement = UpdateAnnouncement(
            sequence=manifest.sequence,
            version=package.version,
            package_digest=digest,
            announced_at=self._clock.now(),
        )
        self._announcements.append(announcement)
        for listener in self.update_listeners:
            listener(announcement)

        # 2. Record the digest in the append-only log.
        self._log.append(digest, package.version, self._clock.now())

        # 3. Instantiate the new code inside a fresh sandbox.
        self._load_package(package)
        self._current_package = package
        self._current_manifest = manifest
        self._sequence = manifest.sequence
        return {
            "installed": True,
            "sequence": self._sequence,
            "package_digest": digest,
            "log_head": self._log.head(),
        }

    def _load_package(self, package: CodePackage) -> None:
        if package.language == "wvm":
            module = assemble(package.source)
            self._wvm_executor = WvmExecutor(module, limits=self._wvm_limits)
            self._python_sandbox = None
        else:
            previous_state = self._python_sandbox.state if self._python_sandbox else None
            config = {"previous_state": previous_state} if previous_state is not None else {}
            self._python_sandbox = PythonSandbox(package.source, config=config)
            self._wvm_executor = None

    # ------------------------------------------------------------------
    # Application invocation
    # ------------------------------------------------------------------
    def invoke_application(self, entry: str, params):
        """Run one application request inside the sandbox."""
        if self._current_package is None:
            raise FrameworkError(f"{self.domain_id}: no application installed")
        if self._current_package.language == "wvm":
            if not isinstance(params, list):
                raise FrameworkError("WVM applications take a list of integer arguments")
            result = self._wvm_executor.invoke(entry, params)
            return {"value": result.value, "fuel_used": result.fuel_used}
        return {"value": self._python_sandbox.invoke(entry, params), "fuel_used": 0}

    def invoke_application_many(self, calls: list, wire_boundary: bool = False) -> list:
        """Run a batch of application requests with one sandbox boundary crossing.

        ``calls`` is a list of ``{"entry": str, "params": ...}`` dicts. Each
        outcome is either the same shape :meth:`invoke_application` returns or
        ``{"error": text}``, so a failing request is isolated from the rest of
        the batch. Python applications cross the sandbox's codec boundary once
        for the whole batch; WVM applications execute per call (the VM run
        itself dominates there, so there is nothing to amortize).

        ``wire_boundary`` asserts that ``calls`` was just produced by the
        canonical wire decoder — already a fresh plain-data copy — so the
        sandbox may skip its redundant inbound boundary copy.
        """
        if self._current_package is None:
            raise FrameworkError(f"{self.domain_id}: no application installed")
        if self._current_package.language == "wvm":
            outcomes = []
            for call in calls:
                try:
                    outcomes.append(self.invoke_application(call["entry"], call.get("params")))
                except Exception as exc:
                    outcomes.append({"error": f"{type(exc).__name__}: {exc}"})
            return outcomes
        sandbox_calls = [
            {"method": call["entry"], "params": call.get("params")} for call in calls
        ]
        outcomes = []
        # Batched outcomes skip the per-call ``fuel_used`` field: Python apps
        # never burn fuel, and at batch scale every wrapper key costs wire
        # bytes and codec time per operation.
        for result in self._python_sandbox.invoke_many(sandbox_calls,
                                                       wire_boundary=wire_boundary):
            if result["ok"]:
                outcomes.append({"value": result["value"]})
            else:
                outcomes.append({"error": result["error"]})
        return outcomes

    # ------------------------------------------------------------------
    # Audit surface
    # ------------------------------------------------------------------
    def state(self) -> FrameworkState:
        """A snapshot of the currently running code and log position."""
        return FrameworkState(
            domain_id=self.domain_id,
            app_digest=self.current_digest(),
            app_version=self._current_package.version if self._current_package else "",
            sequence=self._sequence,
            log_head=self._log.head(),
            log_length=len(self._log),
        )

    def current_digest(self) -> bytes:
        """Digest of the application code currently running (empty before install)."""
        if self._current_package is None:
            return b""
        return self._current_package.digest()

    @property
    def current_package(self) -> CodePackage | None:
        """The application package currently running (``None`` before install)."""
        return self._current_package

    def application_state(self):
        """The sandboxed application's live state (``None`` for WVM apps).

        This models *host-level* visibility into the domain and exists for the
        simulation's probes — adversary memory extraction and the scenario
        engine's privacy invariants. Remote clients can never call it; it is
        deliberately not exposed through :meth:`dispatch`.
        """
        if self._python_sandbox is None:
            return None
        return self._python_sandbox.state

    def log_export(self) -> list[dict]:
        """The full digest history, for clients and auditors."""
        return self._log.export()

    def log_head(self) -> bytes:
        """The current head of the per-TEE digest log."""
        return self._log.head()

    def announcements(self) -> list[UpdateAnnouncement]:
        """Every update announcement made so far."""
        return list(self._announcements)

    def audit_user_data(self) -> bytes:
        """The binding included in attestation user data.

        Committing to both the current application digest and the log head
        means a single attestation pins the domain to its entire code history.
        """
        return canonical_digest({
            "domain_id": self.domain_id,
            "app_digest": self.current_digest(),
            "log_head": self._log.head(),
            "sequence": self._sequence,
        })

    # ------------------------------------------------------------------
    # RPC adapters (plain-data in, plain-data out)
    # ------------------------------------------------------------------
    def _rpc_install_update(self, params: dict) -> dict:
        manifest = UpdateManifest.from_dict(params["manifest"])
        package = CodePackage.from_dict(params["package"])
        return self.install_update(manifest, package)

    def _rpc_invoke(self, params: dict) -> dict:
        return self.invoke_application(params["entry"], params.get("params"))

    def _rpc_invoke_many(self, params: dict) -> list:
        calls = params.get("calls")
        if calls is None:
            # Homogeneous batch: the entry name is sent once for the whole
            # batch instead of once per call (the common shape under load).
            entry = params["entry"]
            calls = [{"entry": entry, "params": call_params}
                     for call_params in params["params_list"]]
        return self.invoke_application_many(
            calls, wire_boundary=bool(params.get("wire"))
        )

    def _rpc_get_state(self, _params: dict) -> dict:
        state = self.state()
        return {
            "domain_id": state.domain_id,
            "app_digest": state.app_digest,
            "app_version": state.app_version,
            "sequence": state.sequence,
            "log_head": state.log_head,
            "log_length": state.log_length,
        }

    def _rpc_get_log(self, _params: dict) -> list:
        return self.log_export()

    def _rpc_get_announcements(self, _params: dict) -> list:
        return [announcement.to_dict() for announcement in self._announcements]
