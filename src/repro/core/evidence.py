"""Publicly verifiable misbehavior evidence.

The paper's central guarantee is not "nothing bad can happen" but "the user
will be able to detect whenever the system does not execute the expected code
... and the user will obtain a publicly verifiable proof of misbehavior" (§1).
These classes are those proofs: each bundles the signed artifacts (attestation
evidence, exported logs, tree heads) that contradict each other, and exposes a
``verify`` method any third party can run with only public keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.enclave.attestation import AttestationVerifier
from repro.enclave.measurement import Measurement
from repro.errors import LogError
from repro.transparency.log import DigestLog

__all__ = [
    "MisbehaviorEvidence",
    "DigestMismatchEvidence",
    "LogMismatchEvidence",
    "AttestationFailureEvidence",
]


@dataclass(frozen=True)
class MisbehaviorEvidence:
    """Base class: a labelled, self-describing piece of evidence."""

    kind: str
    description: str

    def verify(self, verifier: AttestationVerifier,
               expected_measurement: Measurement | None = None) -> bool:
        """Re-check the evidence from its constituent artifacts."""
        raise NotImplementedError


@dataclass(frozen=True)
class DigestMismatchEvidence(MisbehaviorEvidence):
    """Two trust domains attested to different current code digests.

    Attributes:
        first_domain / second_domain: domain identifiers.
        first_response / second_response: the full audit responses (attestation
            evidence dict, reported digest, nonce) returned by each domain.
    """

    first_domain: str = ""
    second_domain: str = ""
    first_response: dict = field(default_factory=dict)
    second_response: dict = field(default_factory=dict)

    def verify(self, verifier: AttestationVerifier,
               expected_measurement: Measurement | None = None) -> bool:
        """Both attestations must be genuine and their reported digests must differ."""
        first_ok = self._attested_digest(verifier, self.first_response, expected_measurement)
        second_ok = self._attested_digest(verifier, self.second_response, expected_measurement)
        if first_ok is None or second_ok is None:
            return False
        return first_ok != second_ok

    @staticmethod
    def _attested_digest(verifier: AttestationVerifier, response: dict,
                         expected_measurement: Measurement | None):
        evidence = response.get("attestation")
        nonce = response.get("nonce", b"")
        user_data = response.get("user_data", b"")
        if evidence is None:
            return None
        result = verifier.verify(evidence, nonce, expected_measurement, user_data=user_data)
        if not result:
            return None
        return bytes(response.get("app_digest", b""))


@dataclass(frozen=True)
class LogMismatchEvidence(MisbehaviorEvidence):
    """A trust domain's exported digest log contradicts its attested log head.

    Attributes:
        domain_id: the offending domain.
        exported_log: the log entries the domain served.
        attested_head: the chain head bound into the attestation user data.
    """

    domain_id: str = ""
    exported_log: list = field(default_factory=list)
    attested_head: bytes = b""

    def verify(self, verifier: AttestationVerifier,
               expected_measurement: Measurement | None = None) -> bool:
        """The export must fail to re-verify against the attested head."""
        try:
            DigestLog.verify_export(self.exported_log, self.attested_head)
        except LogError:
            return True
        return False


@dataclass(frozen=True)
class AttestationFailureEvidence(MisbehaviorEvidence):
    """A trust domain returned attestation evidence that does not verify.

    This covers wrong framework measurements (the domain is not running the
    published framework), stale nonces (replay), and untrusted hardware roots.
    """

    domain_id: str = ""
    response: dict = field(default_factory=dict)
    expected_measurement_digest: bytes = b""
    failure_reason: str = ""

    def verify(self, verifier: AttestationVerifier,
               expected_measurement: Measurement | None = None) -> bool:
        """The recorded evidence must still fail verification when re-checked."""
        evidence = self.response.get("attestation")
        if evidence is None:
            return True  # refusing to attest at all is itself misbehavior
        result = verifier.verify(
            evidence,
            self.response.get("nonce", b""),
            expected_measurement,
            user_data=self.response.get("user_data", b""),
        )
        return not result.valid
