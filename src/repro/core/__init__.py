"""The paper's primary contribution: an auditable bootstrapping framework.

The pieces map directly onto §3–§4 of the paper:

* :mod:`repro.core.package` — application code packages and the signed update
  manifests the developer ships;
* :mod:`repro.core.framework` — the application-independent framework sealed
  into every TEE: it verifies update signatures against the sealed developer
  key, runs application code inside a sandbox, maintains the per-TEE digest
  log, announces updates to clients before switching, and answers attestation
  and audit queries;
* :mod:`repro.core.trust_domain` — one trust domain: a (simulated) enclave
  running the framework behind vsock-style socket hops, exposed over RPC;
  trust domain 0 runs the same framework without secure hardware;
* :mod:`repro.core.deployment` — the developer-side orchestrator that stands
  up ``n`` heterogeneous trust domains, publishes releases to a CT-style log
  and a source registry, and pushes signed updates;
* :mod:`repro.core.client` — the auditing client: attest every domain, verify
  digest logs against attested heads, cross-check domains against each other
  and against the public release log;
* :mod:`repro.core.auditor` — a third-party auditor built from the same
  checks plus source-code inspection and log monitoring;
* :mod:`repro.core.evidence` — publicly verifiable misbehavior evidence.
"""

from repro.core.package import CodePackage, DeveloperIdentity, UpdateManifest
from repro.core.framework import FrameworkState, TrustDomainFramework, UpdateAnnouncement, framework_source
from repro.core.trust_domain import TrustDomain
from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.client import AuditReport, AuditingClient, DomainAuditResult
from repro.core.auditor import AuditorFinding, ThirdPartyAuditor
from repro.core.evidence import (
    DigestMismatchEvidence,
    LogMismatchEvidence,
    MisbehaviorEvidence,
)
from repro.core.registry import ReleaseRegistry

__all__ = [
    "CodePackage",
    "DeveloperIdentity",
    "UpdateManifest",
    "TrustDomainFramework",
    "FrameworkState",
    "UpdateAnnouncement",
    "framework_source",
    "TrustDomain",
    "Deployment",
    "DeploymentConfig",
    "AuditingClient",
    "AuditReport",
    "DomainAuditResult",
    "ThirdPartyAuditor",
    "AuditorFinding",
    "MisbehaviorEvidence",
    "DigestMismatchEvidence",
    "LogMismatchEvidence",
    "ReleaseRegistry",
]
