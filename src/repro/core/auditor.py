"""Third-party auditors.

Clients are not the only parties that can check a deployment: the paper relies
on third-party auditors to inspect published source code and watch public logs
so that ordinary clients "will generally have confidence in the deployment"
without each of them reading the code themselves (§4.1). The auditor here
combines three activities:

* the same cross-domain attestation/log audit a client performs,
* source inspection — recomputing the digest of every published release and
  confirming that the code every domain runs is exactly some published source,
* release-log monitoring — following the CT-style log for unannounced or
  inconsistent entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import AuditingClient, AuditReport
from repro.core.deployment import Deployment
from repro.errors import AuditError
from repro.transparency.monitor import LogMonitor
from repro.wire.codec import decode

__all__ = ["AuditorFinding", "ThirdPartyAuditor"]


@dataclass(frozen=True)
class AuditorFinding:
    """One finding from a third-party audit pass."""

    severity: str  # "info", "warning", or "critical"
    category: str
    detail: str


class ThirdPartyAuditor:
    """A standing auditor for one deployment."""

    def __init__(self, name: str, deployment: Deployment,
                 client: AuditingClient | None = None):
        self.name = name
        self.deployment = deployment
        self.client = client or AuditingClient(deployment.vendor_registry)
        self.monitor = LogMonitor(deployment.release_log, entry_inspector=self._inspect_entry)
        self.findings: list[AuditorFinding] = []

    # ------------------------------------------------------------------
    # Audit passes
    # ------------------------------------------------------------------
    def run_audit(self) -> list[AuditorFinding]:
        """Run one full audit pass; returns (and records) the findings."""
        findings: list[AuditorFinding] = []
        findings.extend(self._audit_domains())
        findings.extend(self._audit_sources())
        findings.extend(self._audit_release_log())
        self.findings.extend(findings)
        return findings

    @property
    def deployment_healthy(self) -> bool:
        """True when no warning or critical finding has been recorded."""
        return not any(f.severity in ("warning", "critical") for f in self.findings)

    # ------------------------------------------------------------------
    # Individual passes
    # ------------------------------------------------------------------
    def _audit_domains(self) -> list[AuditorFinding]:
        report: AuditReport = self.client.audit_deployment(self.deployment)
        findings = []
        for result in report.domain_results:
            if not result.ok:
                findings.append(AuditorFinding("critical", "domain-audit",
                                               f"{result.domain_id}: {result.reason}"))
        for evidence in report.evidence:
            findings.append(AuditorFinding("critical", evidence.kind, evidence.description))
        if report.ok:
            findings.append(AuditorFinding(
                "info", "domain-audit",
                f"all {len(report.domain_results)} trust domains passed attestation and log checks",
            ))
        return findings

    def _audit_sources(self) -> list[AuditorFinding]:
        findings = []
        registry = self.deployment.registry
        for digest in registry.digests():
            if not registry.verify_source(digest):
                findings.append(AuditorFinding(
                    "critical", "source-mismatch",
                    f"published source does not hash to its claimed digest {digest.hex()[:16]}",
                ))
        if not registry.versions():
            findings.append(AuditorFinding("warning", "source-inspection",
                                           "no releases have been published yet"))
        else:
            findings.append(AuditorFinding(
                "info", "source-inspection",
                f"inspected {len(registry.versions())} published releases",
            ))
        return findings

    def _audit_release_log(self) -> list[AuditorFinding]:
        findings = []
        for alert in self.monitor.poll():
            severity = "critical" if alert.kind in ("inconsistency", "truncation") else "warning"
            findings.append(AuditorFinding(severity, f"release-log-{alert.kind}", alert.detail))
        return findings

    # ------------------------------------------------------------------
    # Release-log entry inspection
    # ------------------------------------------------------------------
    def _inspect_entry(self, entry: bytes) -> str | None:
        """Flag release-log entries that do not correspond to published source."""
        try:
            manifest = decode(entry)
            digest = bytes(manifest["package_digest"])
        except Exception:
            return "release-log entry is not a well-formed update manifest"
        if not self.deployment.registry.contains(digest):
            return "release-log entry references source that was never published"
        return None
