"""One trust domain: secure hardware + framework + the sockets between them.

A trust domain bundles:

* a simulated enclave (Nitro-style or SGX-style) whose measured launch image
  is the framework's published source — or no enclave at all for "trust
  domain 0", the domain the developer runs herself (§3.2, Figure 2);
* a :class:`~repro.core.framework.TrustDomainFramework` instance registered as
  the enclave's entry point;
* a vsock-style proxy chain in front of the enclave, reproducing the two
  extra socket hops the paper identifies as the source of TEE overhead; and
* an RPC surface so deployments, clients, and auditors reach the domain over
  the simulated network.
"""

from __future__ import annotations

from typing import Optional

from repro.core.framework import TrustDomainFramework, framework_source
from repro.core.package import CodePackage, UpdateManifest
from repro.crypto.keys import VerifyingKey
from repro.enclave.measurement import Measurement, measure_code
from repro.enclave.nitro import NitroStyleEnclave
from repro.enclave.sgx import SgxStyleEnclave
from repro.enclave.tee import EnclaveBase, HardwareType
from repro.enclave.vendor import HardwareVendor
from repro.errors import DeploymentError
from repro.net.clock import SimClock
from repro.net.rpc import RpcServer
from repro.net.vsock import VsockProxyChain
from repro.sandbox.wvm.vm import WvmLimits
from repro.wire.codec import decode, encode

__all__ = ["TrustDomain", "expected_framework_measurement", "FRAMEWORK_CODE_LABEL"]

FRAMEWORK_CODE_LABEL = "repro-framework"


def expected_framework_measurement() -> Measurement:
    """The measurement every honest enclave-backed trust domain should attest to.

    Clients compute it themselves from the framework's published source; they
    never take the deployment's word for it.
    """
    return measure_code(framework_source().encode("utf-8"), FRAMEWORK_CODE_LABEL)


class TrustDomain:
    """A single trust domain in a distributed-trust deployment."""

    def __init__(self, domain_id: str, hardware_type: HardwareType,
                 developer_public_key: VerifyingKey,
                 vendor: HardwareVendor | None = None,
                 clock: SimClock | None = None,
                 use_vsock: bool = True,
                 wvm_limits: WvmLimits | None = None):
        self.domain_id = domain_id
        self.hardware_type = hardware_type
        self.clock = clock or SimClock()
        self.framework = TrustDomainFramework(
            domain_id, developer_public_key, clock=self.clock, wvm_limits=wvm_limits
        )
        self.enclave: Optional[EnclaveBase] = None
        self.vsock: Optional[VsockProxyChain] = None

        framework_code = framework_source().encode("utf-8")
        if hardware_type == HardwareType.NITRO:
            if vendor is None:
                raise DeploymentError("Nitro-style domains need a hardware vendor")
            self.enclave = NitroStyleEnclave(domain_id, vendor, framework_code,
                                             code_label=FRAMEWORK_CODE_LABEL)
        elif hardware_type == HardwareType.SGX:
            if vendor is None:
                raise DeploymentError("SGX-style domains need a hardware vendor")
            self.enclave = SgxStyleEnclave(domain_id, vendor, framework_code,
                                           code_label=FRAMEWORK_CODE_LABEL)
        elif hardware_type != HardwareType.NONE:
            raise DeploymentError(f"unknown hardware type {hardware_type!r}")

        if self.enclave is not None:
            self.enclave.set_entry_point(self.framework.dispatch)
            # Seal the developer key the way a real provisioning step would.
            self.enclave.memory.write("developer_public_key", developer_public_key.to_bytes())
            if use_vsock:
                self.vsock = VsockProxyChain.nitro_style(clock=self.clock)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def handle(self, method: str, params=None):
        """Carry one request to the framework through this domain's full path.

        For enclave-backed domains the request and response traverse the
        vsock-style socket hops (host → enclave, framework → sandbox); for
        trust domain 0 the framework is called directly.
        """
        if self.enclave is None:
            return self.framework.dispatch(method, params)
        if self.vsock is not None:
            request_bytes = self.vsock.request(encode({"method": method, "params": params}))
            request = decode(request_bytes)
            result = self.enclave.call(request["method"], request["params"])
            response_bytes = self.vsock.respond(encode({"result": result}))
            return decode(response_bytes)["result"]
        return self.enclave.call(method, params)

    # ------------------------------------------------------------------
    # Convenience wrappers used by deployments and tests
    # ------------------------------------------------------------------
    def install_update(self, manifest: UpdateManifest, package: CodePackage) -> dict:
        """Install a signed update through the domain's request path."""
        return self.handle("install_update", {
            "manifest": manifest.to_dict(),
            "package": package.to_dict(),
        })

    def invoke_application(self, entry: str, params) -> dict:
        """Invoke the running application through the domain's request path."""
        return self.handle("invoke", {"entry": entry, "params": params})

    def invoke_application_many(self, calls: list) -> list:
        """Invoke a batch of application requests through one request-path trip.

        ``calls`` is a list of ``{"entry": str, "params": ...}`` dicts; the
        whole batch crosses the vsock hops (and the sandbox boundary) once,
        which is what makes high request rates affordable. Per-call outcomes
        follow :meth:`TrustDomainFramework.invoke_application_many`.
        """
        return self.handle("invoke_many", {"calls": calls})

    def _invoke_many_wire(self, request: dict, frame: bytes) -> bytes:
        """Raw RPC fast path for batched invocation (see ``RpcServer.register_raw``).

        The batch is decoded exactly once (by the RPC server, for routing and
        dedup); the resulting object graph is by construction a fresh
        plain-data copy, so it doubles as the sandbox's inbound boundary copy
        (``wire`` flag below). The original frame still travels through the
        vsock hops as opaque bytes — per-byte forwarding is the TEE cost the
        paper measures, and it must not be optimized away — and the response
        envelope is serialized once on the way out; those envelope bytes are
        the only thing that leaves the domain, which is what lets the
        redundant per-layer codec round trips be cut. A non-encodable
        application result fails its whole chunk with one error envelope
        (the per-call isolation in ``invoke_application_many`` still covers
        ordinary application exceptions).
        """
        if self.enclave is not None and self.vsock is not None:
            self.vsock.request(frame)
            params = request.get("params") or {}
            params["wire"] = True
            try:
                envelope = {"id": request["id"],
                            "result": self.enclave.call("invoke_many", params)}
            except Exception as exc:
                envelope = {"id": request["id"], "error": f"{type(exc).__name__}: {exc}"}
            return self.vsock.respond(encode(envelope))
        # No vsock hops to traverse. The params still came straight off the
        # RPC server's decoder, so the same fresh-plain-data argument applies
        # — but an enclave-backed domain must still cross the enclave
        # boundary (and its compromised/operational check), exactly like
        # :meth:`handle`.
        params = request.get("params") or {}
        params["wire"] = True
        try:
            if self.enclave is not None:
                result = self.enclave.call("invoke_many", params)
            else:
                result = self.framework.dispatch("invoke_many", params)
            envelope = {"id": request["id"], "result": result}
        except Exception as exc:
            envelope = {"id": request["id"], "error": f"{type(exc).__name__}: {exc}"}
        return encode(envelope)

    def get_state(self) -> dict:
        """Fetch the framework's current state snapshot."""
        return self.handle("get_state", {})

    # ------------------------------------------------------------------
    # Audit surface
    # ------------------------------------------------------------------
    def audit_response(self, nonce: bytes) -> dict:
        """Answer a client's audit challenge.

        Returns the attestation evidence (when secure hardware is present),
        the current application digest and version, the full digest-log
        export, and the attested log head, all as plain data.
        """
        user_data = self.framework.audit_user_data()
        state = self.framework.state()
        response = {
            "domain_id": self.domain_id,
            "hardware_type": self.hardware_type.value,
            "nonce": bytes(nonce),
            "user_data": user_data,
            "app_digest": state.app_digest,
            "app_version": state.app_version,
            "sequence": state.sequence,
            "log_head": state.log_head,
            "log": self.framework.log_export(),
            "announcements": [a.to_dict() for a in self.framework.announcements()],
            "attestation": None,
        }
        if self.enclave is not None:
            evidence = self.enclave.attest(nonce, user_data=user_data)
            response["attestation"] = evidence.to_dict()
        return response

    # ------------------------------------------------------------------
    # RPC integration
    # ------------------------------------------------------------------
    def register_rpc(self, server: RpcServer) -> None:
        """Expose this domain's operations on an RPC server."""
        server.register("audit", lambda params: self.audit_response(params["nonce"]))
        server.register("install_update", lambda params: self.handle("install_update", params))
        server.register("invoke", lambda params: self.handle("invoke", params))
        server.register_raw("invoke_many", self._invoke_many_wire)
        server.register("get_state", lambda params: self.handle("get_state", params))
        server.register("get_log", lambda params: self.handle("get_log", params))
        server.register(
            "get_announcements", lambda params: self.handle("get_announcements", params)
        )

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def compromise(self) -> None:
        """Mark this domain's enclave as exploited (no-op for trust domain 0)."""
        if self.enclave is not None:
            self.enclave.mark_compromised()

    @property
    def compromised(self) -> bool:
        """Whether this domain's enclave has been marked exploited."""
        return self.enclave is not None and self.enclave.compromised
