"""Code packages, developer identities, and signed update manifests.

A *code package* is what the application developer ships: source (WVM assembly
or sandboxed Python), a language tag, a name, and a version. Its digest — the
hash clients compare across trust domains and look up in the public release
log — is the canonical-encoding digest of the whole package, so any change to
source or metadata changes the digest.

An *update manifest* is the signed envelope the framework requires before it
will switch to new code (§4.1 "each subsequent update needs to be accompanied
by a signature that verifies under the original public key"). Manifests carry
a strictly increasing sequence number so a compromised network cannot replay
or roll back updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import SigningKey, VerifyingKey, generate_keypair
from repro.errors import UpdateRejectedError
from repro.wire.codec import canonical_digest, encode

__all__ = ["CodePackage", "UpdateManifest", "DeveloperIdentity"]

SUPPORTED_LANGUAGES = ("wvm", "python")


@dataclass(frozen=True)
class CodePackage:
    """One version of the developer's application code."""

    name: str
    version: str
    language: str
    source: str

    def __post_init__(self):
        if self.language not in SUPPORTED_LANGUAGES:
            raise UpdateRejectedError(
                f"unsupported package language {self.language!r}"
            )
        if not self.name or not self.version:
            raise UpdateRejectedError("package name and version are required")

    def to_dict(self) -> dict:
        """Plain-data form (this is also what gets digested and logged)."""
        return {
            "name": self.name,
            "version": self.version,
            "language": self.language,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CodePackage":
        """Rebuild a package from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            version=str(data["version"]),
            language=str(data["language"]),
            source=str(data["source"]),
        )

    def digest(self) -> bytes:
        """The package digest recorded in digest logs and the release log."""
        return canonical_digest(self.to_dict())


@dataclass(frozen=True)
class UpdateManifest:
    """A signed instruction to install a specific package version."""

    package_name: str
    version: str
    sequence: int
    package_digest: bytes
    signature: bytes

    def signed_payload(self) -> bytes:
        """The canonical bytes the developer signs."""
        return encode({
            "package_name": self.package_name,
            "version": self.version,
            "sequence": self.sequence,
            "package_digest": self.package_digest,
        })

    def verify(self, developer_key: VerifyingKey) -> bool:
        """Verify the manifest signature under the developer's public key."""
        return developer_key.verify(self.signed_payload(), self.signature)

    def to_dict(self) -> dict:
        """Plain-data form for wire transfer and release-log entries."""
        return {
            "package_name": self.package_name,
            "version": self.version,
            "sequence": self.sequence,
            "package_digest": self.package_digest,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UpdateManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        return cls(
            package_name=str(data["package_name"]),
            version=str(data["version"]),
            sequence=int(data["sequence"]),
            package_digest=bytes(data["package_digest"]),
            signature=bytes(data["signature"]),
        )


class DeveloperIdentity:
    """The application developer's signing identity.

    The public half is sealed into every TEE at provisioning time; the private
    half signs update manifests. Compromise of this key lets the attacker
    *push updates* — but thanks to the digest logs, never silently.
    """

    def __init__(self, name: str, signing_key: SigningKey | None = None):
        self.name = name
        if signing_key is None:
            signing_key, _ = generate_keypair()
        self._signing_key = signing_key

    @property
    def public_key(self) -> VerifyingKey:
        """The verification key trust domains pin at provisioning time."""
        return self._signing_key.verifying_key()

    def sign_update(self, package: CodePackage, sequence: int) -> UpdateManifest:
        """Produce a signed update manifest for ``package`` at ``sequence``."""
        if sequence < 0:
            raise UpdateRejectedError("sequence numbers must be non-negative")
        manifest = UpdateManifest(
            package_name=package.name,
            version=package.version,
            sequence=sequence,
            package_digest=package.digest(),
            signature=b"",
        )
        signature = self._signing_key.sign(manifest.signed_payload())
        return UpdateManifest(
            package_name=manifest.package_name,
            version=manifest.version,
            sequence=manifest.sequence,
            package_digest=manifest.package_digest,
            signature=signature,
        )

    def export_private_key(self) -> bytes:
        """Export the private key (used by compromise scenarios in experiments)."""
        return self._signing_key.to_bytes()
