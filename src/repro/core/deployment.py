"""Deployment orchestration — what the (non-expert) developer actually runs.

The paper's goal is that a single developer can "efficiently and cheaply set
up any distributed-trust system in a publicly auditable way" using existing
cloud TEE offerings and transparency-log infrastructure, with no human-level
cross-organization coordination. :class:`Deployment` is that workflow in code:

1. pick how many trust domains to run and on which (heterogeneous) hardware;
2. stand them up — each one is an enclave measured over the published
   framework source, with the developer's update-verification key sealed in;
3. publish each application release to the source registry and the CT-style
   release log;
4. push the signed update to every domain;
5. hand clients everything they need to audit: vendor roots, the expected
   framework measurement, the release log key, and the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.package import CodePackage, DeveloperIdentity, UpdateManifest
from repro.core.registry import ReleaseRegistry
from repro.core.trust_domain import TrustDomain
from repro.core.framework import framework_source
from repro.enclave.tee import HardwareType
from repro.enclave.vendor import HardwareVendor, VendorRegistry
from repro.errors import DeploymentError, ReproError, RpcError
from repro.net.clock import SimClock
from repro.net.rpc import RpcClient, RpcServer, ServiceTimeModel
from repro.net.transport import Network
from repro.transparency.ct_log import CtLog
from repro.wire.codec import encode

__all__ = ["DeploymentConfig", "Deployment", "PendingInvokeBatch"]


@dataclass(frozen=True)
class DeploymentConfig:
    """How a deployment should be laid out.

    Attributes:
        num_domains: total trust domains, including the developer-run
            "trust domain 0" (so the paper's Figure 2 is ``num_domains=2``).
        include_developer_domain: whether domain 0 runs without secure
            hardware on the developer's own infrastructure.
        heterogeneous: alternate hardware vendors across enclave-backed
            domains (the paper's recommendation); otherwise every enclave
            domain uses the first vendor.
        use_vsock: route enclave requests through the vsock-style socket hops.
    """

    num_domains: int = 2
    include_developer_domain: bool = True
    heterogeneous: bool = True
    use_vsock: bool = True

    def __post_init__(self):
        if self.num_domains < 1:
            raise DeploymentError("a deployment needs at least one trust domain")
        if self.num_domains < 2:
            # A single domain is allowed for micro-benchmarks, but it cannot
            # distribute trust; deployments used by the applications check
            # their own threshold requirements.
            pass


class Deployment:
    """A running distributed-trust deployment plus its public audit artifacts."""

    def __init__(self, name: str, developer: DeveloperIdentity,
                 config: DeploymentConfig | None = None,
                 vendors: list[HardwareVendor] | None = None,
                 clock: SimClock | None = None):
        self.name = name
        self.developer = developer
        self.config = config or DeploymentConfig()
        self.clock = clock or SimClock()
        self.vendors = vendors or [HardwareVendor("aws-nitro-sim"), HardwareVendor("intel-sgx-sim")]
        self.vendor_registry = VendorRegistry(self.vendors)
        self.registry = ReleaseRegistry(framework_source())
        self.release_log = CtLog(f"{name}-releases")
        self.domains: list[TrustDomain] = []
        self._sequence = -1
        self._rpc_clients: list[RpcClient] | None = None
        self._rpc_attempts = 1
        self._route_cache: tuple | None = None
        self._executor_clients: list = []
        self.client_address: str | None = None
        self._servers: list[RpcServer] | None = None
        self._default_service_model: ServiceTimeModel | None = None
        self._domain_service_models: dict[int, ServiceTimeModel] = {}
        self._build_domains()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _build_domains(self) -> None:
        hardware_cycle = [HardwareType.NITRO, HardwareType.SGX]
        enclave_index = 0
        for index in range(self.config.num_domains):
            domain_id = f"{self.name}-domain-{index}"
            if index == 0 and self.config.include_developer_domain:
                domain = TrustDomain(
                    domain_id, HardwareType.NONE, self.developer.public_key, clock=self.clock
                )
            else:
                if self.config.heterogeneous:
                    hardware = hardware_cycle[enclave_index % len(hardware_cycle)]
                else:
                    hardware = HardwareType.NITRO
                vendor = self._vendor_for(hardware)
                domain = TrustDomain(
                    domain_id, hardware, self.developer.public_key, vendor=vendor,
                    clock=self.clock, use_vsock=self.config.use_vsock,
                )
                enclave_index += 1
            self.domains.append(domain)

    def _vendor_for(self, hardware: HardwareType) -> HardwareVendor:
        wanted = "aws-nitro-sim" if hardware == HardwareType.NITRO else "intel-sgx-sim"
        for vendor in self.vendors:
            if vendor.name == wanted:
                return vendor
        return self.vendors[0]

    # ------------------------------------------------------------------
    # Release and update workflow
    # ------------------------------------------------------------------
    def publish_and_install(self, package: CodePackage) -> UpdateManifest:
        """Publish a release publicly and install it on every trust domain.

        Returns the signed manifest. Raises if any domain rejects the update —
        a deployment must never be left half-updated silently.
        """
        manifest = self.developer.sign_update(package, self._sequence + 1)
        self.registry.publish(package, manifest)
        self.release_log.append(encode(manifest.to_dict()))
        for domain in self.domains:
            domain.install_update(manifest, package)
        self._sequence = manifest.sequence
        return manifest

    def install_on_domain(self, domain_index: int, manifest: UpdateManifest,
                          package: CodePackage) -> dict:
        """Install a specific (already signed) update on one domain only.

        Used by experiments that model partially applied or malicious updates.
        """
        return self.domains[domain_index].install_update(manifest, package)

    # ------------------------------------------------------------------
    # Application access
    # ------------------------------------------------------------------
    def invoke(self, domain_index: int, entry: str, params) -> dict:
        """Invoke the application on one specific trust domain.

        When :meth:`route_via_network` is active the request travels over the
        simulated network as framed RPC bytes (and is therefore subject to any
        injected faults); otherwise the domain is called directly.
        """
        if self._rpc_clients is not None:
            return self._rpc_clients[domain_index].call_with_retry(
                "invoke", {"entry": entry, "params": params},
                attempts=self._rpc_attempts,
            )
        return self.domains[domain_index].invoke_application(entry, params)

    def invoke_all(self, entry: str, params) -> list[dict]:
        """Invoke the application on every trust domain (e.g. collect shares)."""
        return [domain.invoke_application(entry, params) for domain in self.domains]

    def invoke_batch(self, domain_index: int, calls: list, chunk_size: int = 128) -> list:
        """Invoke a batch of application requests on one trust domain.

        ``calls`` is a sequence of ``(entry, params)`` pairs. When routed over
        the network the batch is split into ``invoke_many`` chunks that all
        travel in a single framed payload (see :meth:`RpcClient.call_many`),
        so a thousand requests cost a handful of messages and one vsock/
        sandbox crossing per chunk instead of one per request.

        Returns one outcome per call, in order: the same result dict
        :meth:`invoke` returns, or an exception *instance*
        (:class:`~repro.errors.RpcError` for a request the domain answered
        with an error or that went unanswered) — failures are isolated per
        call so one bad request cannot mask the rest of the batch.
        """
        return self.begin_invoke_batch(domain_index, calls,
                                       chunk_size=chunk_size).collect()

    def begin_invoke_batch(self, domain_index: int, calls: list,
                           chunk_size: int = 128) -> "PendingInvokeBatch":
        """Send a batch of invokes *without* waiting for the responses.

        The split-phase form of :meth:`invoke_batch`: when routed over the
        network, the batch payload is put on the wire immediately and a
        :class:`PendingInvokeBatch` handle is returned; nothing is delivered
        until the handle's :meth:`~PendingInvokeBatch.collect` (or anything
        else) pumps the network. Beginning several batches — against different
        trust domains or different shard deployments — before the first
        collect is what makes their round trips and service time overlap in
        simulated time (the scatter/gather path of
        :class:`repro.service.ShardedService`).

        When not routed, the calls execute synchronously and the returned
        handle is already complete.
        """
        calls = list(calls)
        chunks = [calls[start:start + chunk_size]
                  for start in range(0, len(calls), chunk_size)]
        if self._rpc_clients is not None and chunks:
            rpc_calls = [("invoke_many", self._batch_params(chunk)) for chunk in chunks]
            batch = self._rpc_clients[domain_index].begin_many(rpc_calls)
            return PendingInvokeBatch(chunks, batch, self._rpc_attempts)
        domain = self.domains[domain_index]
        chunk_results = []
        for chunk in chunks:
            try:
                chunk_results.append(domain.invoke_application_many(
                    [{"entry": entry, "params": params} for entry, params in chunk]
                ))
            except ReproError as exc:
                chunk_results.append(exc)
        return PendingInvokeBatch(chunks, None, 1, chunk_results)

    # ------------------------------------------------------------------
    # Service-time model
    # ------------------------------------------------------------------
    def set_service_time(self, per_request: float, domain_index: int | None = None,
                         per_byte: float = 0.0) -> None:
        """Make each trust domain's RPC server a serial busy-until queue.

        ``per_request`` simulated seconds are charged per request a domain
        processes (``domain_index=None`` applies to every domain; a specific
        index overrides the default for that domain only). The model takes
        effect on the servers created by :meth:`attach_to_network` /
        :meth:`route_via_network`, including ones created later. Without a
        service model, domains answer in zero simulated time and horizontal
        scaling is invisible in sim-time measurements.
        """
        model = ServiceTimeModel(per_request=per_request, per_byte=per_byte)
        if domain_index is None:
            self._default_service_model = model
        else:
            self._domain_service_models[domain_index] = model
        self._apply_service_models()

    def _apply_service_models(self) -> None:
        if self._servers is None:
            return
        for index, server in enumerate(self._servers):
            model = self._domain_service_models.get(index, self._default_service_model)
            if model is not None:
                server.service_model = model

    @staticmethod
    def _batch_params(chunk: list) -> dict:
        """The ``invoke_many`` params for one chunk of ``(entry, params)`` pairs.

        A chunk where every call targets the same entry point — the common
        shape under load — uses the compact homogeneous form, carrying the
        entry name once instead of once per call.
        """
        first_entry = chunk[0][0]
        if all(entry == first_entry for entry, _ in chunk):
            return {"entry": first_entry,
                    "params_list": [params for _, params in chunk]}
        return {"calls": [{"entry": entry, "params": params}
                          for entry, params in chunk]}

    # ------------------------------------------------------------------
    # Audit artifacts clients need
    # ------------------------------------------------------------------
    @property
    def current_sequence(self) -> int:
        """Sequence number of the most recent release (-1 before any release)."""
        return self._sequence

    def enclave_domains(self) -> list[TrustDomain]:
        """The domains backed by secure hardware."""
        return [domain for domain in self.domains if domain.enclave is not None]

    def hardware_census(self) -> dict:
        """How many domains run on each hardware type (for ablation reporting)."""
        census: dict[str, int] = {}
        for domain in self.domains:
            census[domain.hardware_type.value] = census.get(domain.hardware_type.value, 0) + 1
        return census

    # ------------------------------------------------------------------
    # Networked access (optional)
    # ------------------------------------------------------------------
    def attach_to_network(self, network: Network) -> dict[str, RpcServer]:
        """Expose every trust domain as an RPC server on a simulated network.

        Returns a mapping of domain id to its RPC server; endpoint addresses
        equal the domain ids.
        """
        servers: dict[str, RpcServer] = {}
        for domain in self.domains:
            endpoint = network.endpoint(domain.domain_id)
            server = RpcServer(endpoint, name=domain.domain_id)
            domain.register_rpc(server)
            servers[domain.domain_id] = server
        self._servers = [servers[domain.domain_id] for domain in self.domains]
        self._apply_service_models()
        return servers

    def route_via_network(self, network: Network, client_address: str | None = None,
                          attempts: int = 3) -> dict[str, RpcServer]:
        """Route every :meth:`invoke` through RPC over ``network``.

        Attaches the domains as RPC servers, creates one shared client
        endpoint, and rebinds the application invocation path so that requests
        cross the simulated wire — this is what exposes application traffic to
        injected faults. Returns the domain RPC servers.

        Calling this again with the same network (e.g. after :meth:`unroute`)
        reuses the endpoints and clients created the first time; attaching to
        a *different* network requires a fresh deployment, since endpoint
        addresses are already registered on the old one.

        Args:
            client_address: address for the shared client endpoint (defaults
                to ``"<deployment-name>-client"``).
            attempts: per-request send attempts used by the retrying RPC path.
        """
        if self._route_cache is not None and self._route_cache[0] is network:
            _, clients, servers, address = self._route_cache
            self._rpc_clients = clients
        else:
            servers = self.attach_to_network(network)
            address = client_address or f"{self.name}-client"
            endpoint = network.endpoint(address)
            self._rpc_clients = [
                RpcClient(network, endpoint, domain.domain_id) for domain in self.domains
            ]
            self._route_cache = (network, self._rpc_clients, servers, address)
        self._rpc_attempts = attempts
        self.client_address = address
        return servers

    @property
    def executor_routed(self) -> bool:
        """Whether invokes currently travel to parallel worker processes."""
        return bool(self._executor_clients)

    def route_via_executor(self, executor) -> None:
        """Route every :meth:`invoke` through a parallel shard executor.

        The executor's clients (:class:`repro.service.parallel
        .ExecutorRpcClient`) are call-compatible with the networked RPC
        clients, so the whole invoke/batch/scatter surface works unchanged —
        but requests are served by worker *processes* holding this
        deployment's state, over OS pipes instead of the simulated network.
        Pipes are lossless, so the retry budget is pinned to one attempt.
        """
        self._rpc_clients = executor.clients_for(self)
        self._executor_clients = list(self._rpc_clients)
        self._rpc_attempts = 1
        self.client_address = f"{self.name}-client"

    def unroute(self) -> None:
        """Restore direct (in-process) invocation after :meth:`route_via_network`."""
        self._rpc_clients = None
        self._rpc_attempts = 1
        self._executor_clients = []

    def rpc_retry_total(self) -> int:
        """Total RPC retransmissions performed while routed (0 if never routed)."""
        total = sum(client.retries for client in self._executor_clients)
        if self._route_cache is None:
            return total
        return total + sum(client.retries for client in self._route_cache[1])

    def duplicates_answered_total(self) -> int:
        """Duplicate requests the domains' at-most-once servers deduplicated
        (0 before the deployment is attached to a network)."""
        if self._servers is None:
            return 0
        return sum(server.duplicates_answered for server in self._servers)

    def max_queue_depths(self) -> list[int]:
        """Per-domain high-water service-queue depth (empty if never attached).

        The observable left behind by the serial service queue: how many
        application calls were simultaneously queued or in service on each
        domain's RPC server at the worst moment of the run.
        """
        if self._servers is None:
            return []
        return [server.max_queue_depth for server in self._servers]

    def queue_depths(self) -> list[int]:
        """Per-domain service-queue depth *right now* (empty if never attached).

        Unlike :meth:`max_queue_depths` this is instantaneous, so it can fall
        as load subsides — the signal an autoscaler needs to decide a shard
        fleet is idle, where the high-water mark only ever ratchets up.
        """
        if self._servers is None:
            return []
        return [server.queue_depth() for server in self._servers]


class PendingInvokeBatch:
    """An in-flight application batch from :meth:`Deployment.begin_invoke_batch`.

    :meth:`collect` returns exactly what :meth:`Deployment.invoke_batch`
    returns — one outcome per call, in order, with failures isolated per call
    as exception instances. Collecting is idempotent.
    """

    def __init__(self, chunks: list, rpc_batch, attempts: int,
                 chunk_results: list | None = None):
        self._chunks = chunks
        self._rpc_batch = rpc_batch
        self._attempts = attempts
        self._chunk_results = chunk_results
        self._outcomes: list | None = None

    def wait_event(self, timeout: float = 0.25):
        """Resolve inside an event loop; returns what :meth:`collect` returns.

        A generator for :class:`repro.net.eventloop.EventLoop` — it defers to
        :meth:`PendingRpcBatch.wait_event` for the waiting/retransmission and
        then unpacks outcomes without pumping the network. For an unrouted
        (already complete) batch it finishes without yielding at all.
        """
        if (self._outcomes is None and self._chunk_results is None
                and self._rpc_batch is not None):
            yield from self._rpc_batch.wait_event(attempts=self._attempts,
                                                  timeout=timeout)
        return self.collect()

    def collect(self) -> list:
        """Wait for (and unpack) every call's outcome, in call order."""
        if self._outcomes is not None:
            return self._outcomes
        chunk_results = self._chunk_results
        if chunk_results is None:
            chunk_results = self._rpc_batch.collect(attempts=self._attempts,
                                                    return_errors=True)
        outcomes = []
        for chunk, result in zip(self._chunks, chunk_results):
            if isinstance(result, Exception):
                outcomes.extend([result] * len(chunk))
                continue
            for entry in result:
                if isinstance(entry, dict) and entry.get("error") is not None:
                    outcomes.append(RpcError(f"invoke failed: {entry['error']}"))
                else:
                    outcomes.append(entry)
        self._outcomes = outcomes
        return outcomes
