"""The auditing client.

This is the user-side of the paper's guarantee (§3.3 "Auditable"): before (and
while) using a distributed-trust application, a client can check, for every
trust domain,

1. that it runs the published application-independent framework inside genuine
   (simulated) secure hardware — via attestation against vendor roots and the
   framework measurement the client computes from published source;
2. that the attested state binds the current application digest and the head
   of the domain's append-only digest log;
3. that the digest log the domain serves actually hashes to that head; and
4. that all domains agree — same current digest, mutually consistent digest
   histories — and that every digest they have ever run corresponds to a
   release published in the developer's public release log and source
   registry.

Every failed check yields a :class:`~repro.core.evidence.MisbehaviorEvidence`
object that third parties can verify independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import random_bytes
from repro.core.deployment import Deployment
from repro.core.evidence import (
    AttestationFailureEvidence,
    DigestMismatchEvidence,
    LogMismatchEvidence,
    MisbehaviorEvidence,
)
from repro.core.trust_domain import TrustDomain, expected_framework_measurement
from repro.enclave.attestation import AttestationVerifier
from repro.enclave.measurement import Measurement
from repro.enclave.tee import HardwareType
from repro.errors import LogError, MisbehaviorDetected
from repro.transparency.log import DigestLog

__all__ = ["DomainAuditResult", "AuditReport", "AuditingClient"]


@dataclass(frozen=True)
class DomainAuditResult:
    """Outcome of auditing one trust domain."""

    domain_id: str
    hardware_type: str
    ok: bool
    reason: str
    app_digest: bytes
    app_version: str
    log_length: int
    attested: bool


@dataclass
class AuditReport:
    """Outcome of auditing an entire deployment."""

    ok: bool
    domain_results: list[DomainAuditResult] = field(default_factory=list)
    evidence: list[MisbehaviorEvidence] = field(default_factory=list)
    agreed_digest: bytes = b""
    checked_against_release_log: bool = False

    def failures(self) -> list[DomainAuditResult]:
        """Per-domain results that failed."""
        return [result for result in self.domain_results if not result.ok]


class AuditingClient:
    """Audits a distributed-trust deployment before trusting it with secrets."""

    def __init__(self, vendor_registry=None, expected_measurement: Measurement | None = None,
                 require_attestation_from_all_enclaves: bool = True):
        self.verifier = AttestationVerifier(vendor_registry)
        self.expected_measurement = expected_measurement or expected_framework_measurement()
        self.require_attestation = require_attestation_from_all_enclaves

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def audit_deployment(self, deployment: Deployment) -> AuditReport:
        """Audit every domain of a deployment, including release-log cross-checks."""
        report = self.audit_domains(deployment.domains)
        report.checked_against_release_log = self._check_release_log(deployment, report)
        report.ok = report.ok and report.checked_against_release_log
        return report

    def audit_or_raise(self, deployment: Deployment) -> AuditReport:
        """Audit and raise :class:`MisbehaviorDetected` when anything fails."""
        report = self.audit_deployment(deployment)
        if not report.ok:
            evidence = report.evidence[0] if report.evidence else None
            reasons = "; ".join(result.reason for result in report.failures() if result.reason)
            raise MisbehaviorDetected(
                f"deployment failed audit: {reasons or 'cross-domain checks failed'}",
                evidence=evidence,
            )
        return report

    def audit_domains(self, domains: list[TrustDomain]) -> AuditReport:
        """Audit a list of trust domains and cross-check them against each other."""
        report = AuditReport(ok=True)
        responses: list[dict] = []
        for domain in domains:
            result, response, evidence = self._audit_single(domain)
            report.domain_results.append(result)
            if evidence is not None:
                report.evidence.append(evidence)
            if not result.ok:
                report.ok = False
            if response is not None:
                responses.append(response)

        self._cross_check_digests(report, responses)
        self._cross_check_logs(report, responses)
        if report.domain_results and report.ok:
            report.agreed_digest = report.domain_results[0].app_digest
        return report

    # ------------------------------------------------------------------
    # Per-domain checks
    # ------------------------------------------------------------------
    def _audit_single(self, domain: TrustDomain):
        """Audit one domain; returns ``(result, response_or_None, evidence_or_None)``."""
        nonce = random_bytes(32)
        try:
            response = domain.audit_response(nonce)
        except Exception as exc:
            # A domain that cannot answer the challenge (crashed, exploited,
            # unreachable) fails its audit rather than aborting the client's
            # audit of the rest of the deployment.
            return self._failed(
                {"domain_id": domain.domain_id, "hardware_type": domain.hardware_type.value},
                f"domain did not answer the audit challenge: {exc}",
                AttestationFailureEvidence(
                    kind="attestation-failure",
                    description="domain failed to answer an audit challenge",
                    domain_id=domain.domain_id,
                    response={},
                    expected_measurement_digest=self.expected_measurement.digest,
                    failure_reason=str(exc),
                ),
            )
        hardware = response.get("hardware_type", HardwareType.NONE.value)
        attested = False

        if hardware != HardwareType.NONE.value:
            evidence_dict = response.get("attestation")
            if evidence_dict is None:
                if self.require_attestation:
                    return self._failed(
                        response, "domain refused to attest",
                        AttestationFailureEvidence(
                            kind="attestation-failure",
                            description="enclave-backed domain returned no attestation",
                            domain_id=response["domain_id"],
                            response=response,
                            expected_measurement_digest=self.expected_measurement.digest,
                            failure_reason="missing attestation",
                        ),
                    )
            else:
                verification = self.verifier.verify(
                    evidence_dict, nonce, self.expected_measurement,
                    user_data=response.get("user_data", b""),
                )
                if not verification.valid:
                    return self._failed(
                        response, f"attestation invalid: {verification.reason}",
                        AttestationFailureEvidence(
                            kind="attestation-failure",
                            description="attestation evidence failed verification",
                            domain_id=response["domain_id"],
                            response=response,
                            expected_measurement_digest=self.expected_measurement.digest,
                            failure_reason=verification.reason,
                        ),
                    )
                attested = True

        # The digest log must hash to the head bound into the attestation.
        try:
            DigestLog.verify_export(response.get("log", []), response.get("log_head", b""))
        except LogError as exc:
            return self._failed(
                response, f"digest log invalid: {exc}",
                LogMismatchEvidence(
                    kind="log-mismatch",
                    description="digest log does not match attested head",
                    domain_id=response["domain_id"],
                    exported_log=response.get("log", []),
                    attested_head=response.get("log_head", b""),
                ),
            )

        result = DomainAuditResult(
            domain_id=response["domain_id"],
            hardware_type=hardware,
            ok=True,
            reason="",
            app_digest=bytes(response.get("app_digest", b"")),
            app_version=str(response.get("app_version", "")),
            log_length=len(response.get("log", [])),
            attested=attested,
        )
        return result, response, None

    @staticmethod
    def _failed(response: dict, reason: str, evidence: MisbehaviorEvidence):
        result = DomainAuditResult(
            domain_id=response.get("domain_id", "?"),
            hardware_type=response.get("hardware_type", "?"),
            ok=False,
            reason=reason,
            app_digest=bytes(response.get("app_digest", b"")),
            app_version=str(response.get("app_version", "")),
            log_length=len(response.get("log", [])),
            attested=False,
        )
        return result, None, evidence

    # ------------------------------------------------------------------
    # Cross-domain checks
    # ------------------------------------------------------------------
    def _cross_check_digests(self, report: AuditReport, responses: list[dict]) -> None:
        for i in range(len(responses)):
            for j in range(i + 1, len(responses)):
                first, second = responses[i], responses[j]
                if bytes(first.get("app_digest", b"")) != bytes(second.get("app_digest", b"")):
                    report.ok = False
                    if first.get("attestation") and second.get("attestation"):
                        # Only attested responses yield *publicly verifiable*
                        # evidence; a mismatch involving the developer's own
                        # un-attested domain 0 still fails the audit.
                        report.evidence.append(DigestMismatchEvidence(
                            kind="digest-mismatch",
                            description="two trust domains report different current code",
                            first_domain=first["domain_id"],
                            second_domain=second["domain_id"],
                            first_response=first,
                            second_response=second,
                        ))

    def _cross_check_logs(self, report: AuditReport, responses: list[dict]) -> None:
        for i in range(len(responses)):
            for j in range(i + 1, len(responses)):
                first, second = responses[i], responses[j]
                if not DigestLog.views_consistent(first.get("log", []), second.get("log", [])):
                    report.ok = False
                    if first.get("attestation") and second.get("attestation"):
                        report.evidence.append(DigestMismatchEvidence(
                            kind="history-divergence",
                            description="two trust domains report diverging code histories",
                            first_domain=first["domain_id"],
                            second_domain=second["domain_id"],
                            first_response=first,
                            second_response=second,
                        ))

    # ------------------------------------------------------------------
    # Release-log cross-check
    # ------------------------------------------------------------------
    def _check_release_log(self, deployment: Deployment, report: AuditReport) -> bool:
        """Every digest any domain has ever run must be a published release."""
        published = set(deployment.registry.digests())
        ok = True
        for result in report.domain_results:
            if result.app_digest and result.app_digest not in published:
                ok = False
                report.evidence.append(AttestationFailureEvidence(
                    kind="unpublished-code",
                    description=(
                        f"domain {result.domain_id} runs code whose source was never published"
                    ),
                    domain_id=result.domain_id,
                    response={},
                    expected_measurement_digest=self.expected_measurement.digest,
                    failure_reason="digest missing from release registry",
                ))
        return ok
