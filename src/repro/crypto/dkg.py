"""Pedersen-style distributed key generation (DKG) for threshold BLS keys.

The basic threshold custody setup in the paper lets a dealer split a signing
key. For deployments where even a one-time trusted dealer is unacceptable (the
developer herself may be the adversary), the trust domains can instead run a
DKG: every participant deals a Feldman-verified sharing of a random value and
the group key is the sum of all dealt secrets. No single party — including the
application developer — ever sees the full signing key.

The protocol here is the classic Pedersen DKG (without complaint rounds being
networked; invalid dealings are simply excluded), executed synchronously in
memory. The core framework's custody application uses it as an optional
"dealerless" key-generation mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.bilinear import BLS_SCALAR_ORDER, BilinearGroup, G2Element
from repro.crypto.field import PrimeField
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.errors import CryptoError, SecretSharingError

__all__ = ["DkgDealing", "DkgParticipant", "DistributedKeyGeneration"]

_GROUP = BilinearGroup()
_FIELD = PrimeField(BLS_SCALAR_ORDER, unsafe_skip_check=True)


@dataclass(frozen=True)
class DkgDealing:
    """One participant's dealing: per-recipient shares plus public commitments.

    Commitments are to the polynomial coefficients in G2 (``A_j = a_j · g2``),
    so recipients can verify their share without learning the polynomial.
    """

    dealer_index: int
    shares: dict[int, Share]
    commitments: tuple[G2Element, ...]

    def verify_share_for(self, recipient_index: int) -> bool:
        """Check the recipient's share against the dealer's commitments."""
        share = self.shares.get(recipient_index)
        if share is None:
            return False
        left = _GROUP.multiply(_GROUP.g2_generator(), share.value)
        right = _GROUP.g2_identity()
        for j, commitment in enumerate(self.commitments):
            right = _GROUP.add(
                right, _GROUP.multiply(commitment, pow(recipient_index, j, BLS_SCALAR_ORDER))
            )
        return left == right


class DkgParticipant:
    """One participant in the distributed key generation protocol."""

    def __init__(self, index: int, threshold: int, num_participants: int):
        if index < 1 or index > num_participants:
            raise CryptoError("participant index out of range")
        self.index = index
        self.threshold = threshold
        self.num_participants = num_participants
        self._sharing = ShamirSecretSharing(threshold, num_participants, _FIELD)
        self._received: dict[int, Share] = {}
        self._commitments: dict[int, tuple[G2Element, ...]] = {}

    def deal(self, seed: bytes | None = None) -> DkgDealing:
        """Deal a Feldman-verified sharing of a fresh random secret."""
        if seed is None:
            secret = _GROUP.random_scalar()
        else:
            secret = _GROUP.hash_to_scalar(seed + bytes([self.index]), domain="repro/dkg/seed")
        shares, coefficients = self._sharing.split_with_polynomial(secret)
        commitments = tuple(
            _GROUP.multiply(_GROUP.g2_generator(), c) for c in coefficients
        )
        return DkgDealing(self.index, {s.index: s for s in shares}, commitments)

    def receive(self, dealing: DkgDealing) -> bool:
        """Verify and record the share addressed to this participant.

        Returns ``True`` when the share verified and was accepted; invalid
        dealings are ignored (the dealer is excluded from the final key).
        """
        if not dealing.verify_share_for(self.index):
            return False
        self._received[dealing.dealer_index] = dealing.shares[self.index]
        self._commitments[dealing.dealer_index] = dealing.commitments
        return True

    def finalize(self, qualified: set[int]) -> Share:
        """Combine the shares received from the qualified dealer set.

        Args:
            qualified: dealer indices every honest participant accepted.

        Returns:
            this participant's share of the group secret key.
        """
        missing = qualified - set(self._received)
        if missing:
            raise SecretSharingError(f"missing dealings from participants {sorted(missing)}")
        total = 0
        for dealer_index in sorted(qualified):
            total = (total + self._received[dealer_index].value) % BLS_SCALAR_ORDER
        return Share(self.index, total)

    def group_public_key(self, qualified: set[int]) -> G2Element:
        """Compute the group public key from the qualified dealers' commitments."""
        key = _GROUP.g2_identity()
        for dealer_index in sorted(qualified):
            commitments = self._commitments.get(dealer_index)
            if commitments is None:
                raise SecretSharingError(f"no commitments recorded for dealer {dealer_index}")
            key = _GROUP.add(key, commitments[0])
        return key


class DistributedKeyGeneration:
    """Synchronous orchestration of a full Pedersen DKG run.

    This is a convenience driver used by tests, examples, and the custody
    application's dealerless mode; real deployments would exchange dealings over
    :mod:`repro.net`.
    """

    def __init__(self, threshold: int, num_participants: int):
        if threshold < 1 or num_participants < threshold:
            raise CryptoError("invalid DKG parameters")
        self.threshold = threshold
        self.num_participants = num_participants
        self.participants = [
            DkgParticipant(i, threshold, num_participants)
            for i in range(1, num_participants + 1)
        ]

    def run(self, seed: bytes | None = None) -> tuple[G2Element, list[Share]]:
        """Execute the DKG and return ``(group_public_key, per-participant shares)``."""
        dealings = [p.deal(seed) for p in self.participants]
        qualified: set[int] = set()
        for dealing in dealings:
            accepted = all(p.receive(dealing) for p in self.participants)
            if accepted:
                qualified.add(dealing.dealer_index)
        if len(qualified) < self.threshold:
            raise SecretSharingError("not enough qualified dealers to finish the DKG")
        shares = [p.finalize(qualified) for p in self.participants]
        public_key = self.participants[0].group_public_key(qualified)
        return public_key, shares
