"""Shamir secret sharing over a prime field.

Shamir's scheme [Shamir79] is the core of the paper's motivating application
(Figure 1): a user splits their secret key across ``n`` trust domains so that
any ``t`` shares reconstruct the key but ``t - 1`` shares reveal nothing.
The implementation is generic over :class:`~repro.crypto.field.PrimeField` and
is reused by Feldman VSS, the DKG, and threshold BLS key generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.field import FieldElement, PrimeField
from repro.crypto.rng import randbelow
from repro.errors import SecretSharingError, ThresholdError

__all__ = ["Share", "ShamirSecretSharing", "horner_evaluate_many"]


def _lagrange_at_zero_int(points: list[tuple[int, int]], modulus: int) -> int:
    """Lagrange interpolation at zero on raw integers (the reconstruction hot path).

    Equivalent to :func:`repro.crypto.field.lagrange_interpolate_at_zero` but
    without per-operation :class:`FieldElement` allocations, which dominate
    reconstruction cost when recovering thousands of keys.
    """
    total = 0
    for i, (x_i, y_i) in enumerate(points):
        numerator = 1
        denominator = 1
        for j, (x_j, _) in enumerate(points):
            if i == j:
                continue
            numerator = numerator * x_j % modulus
            denominator = denominator * (x_j - x_i) % modulus
        total = (total + y_i * numerator % modulus
                 * pow(denominator, -1, modulus)) % modulus
    return total


def horner_evaluate_many(coefficients: list[int], xs: list[int], modulus: int) -> list[int]:
    """Evaluate one polynomial at many points with a single Horner sweep.

    Operates on raw integers (no :class:`FieldElement` wrappers), so the inner
    loop is one multiply-add-reduce per (coefficient, point) pair. This is the
    hot path when a dealer issues shares to many clients at once: one sweep
    over the coefficients covers every client index.
    """
    results = [0] * len(xs)
    for coefficient in reversed(coefficients):
        for position, x in enumerate(xs):
            results[position] = (results[position] * x + coefficient) % modulus
    return results

# A 256-bit prime (the secp256k1 group order) works well as a default share field:
# secrets up to 32 bytes embed directly.
DEFAULT_MODULUS = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation ``(index, value)`` of the sharing polynomial."""

    index: int
    value: int

    def to_bytes(self, byte_length: int = 32) -> bytes:
        """Serialize as ``index (4 bytes) || value (byte_length bytes)``.

        Raises:
            SecretSharingError: the index or value does not fit the encoding.
        """
        try:
            return self.index.to_bytes(4, "big") + self.value.to_bytes(byte_length, "big")
        except OverflowError as exc:
            raise SecretSharingError(
                f"share ({self.index}, value of {self.value.bit_length()} bits) "
                f"does not fit a {byte_length}-byte encoding"
            ) from exc

    @classmethod
    def from_bytes(cls, data: bytes, byte_length: int = 32) -> "Share":
        """Deserialize a share produced by :meth:`to_bytes`."""
        if len(data) != 4 + byte_length:
            raise SecretSharingError("bad share encoding length")
        return cls(int.from_bytes(data[:4], "big"), int.from_bytes(data[4:], "big"))


class ShamirSecretSharing:
    """A (t, n) Shamir secret-sharing scheme over a prime field.

    Args:
        threshold: number of shares required to reconstruct (``t``).
        num_shares: total number of shares issued (``n``).
        field: the prime field to share over; defaults to a 256-bit field.
    """

    def __init__(self, threshold: int, num_shares: int, field: PrimeField | None = None):
        if threshold < 1:
            raise SecretSharingError("threshold must be at least 1")
        if num_shares < threshold:
            raise SecretSharingError("cannot issue fewer shares than the threshold")
        self.threshold = threshold
        self.num_shares = num_shares
        self.field = field or PrimeField(DEFAULT_MODULUS, unsafe_skip_check=True)
        if num_shares >= self.field.modulus:
            raise SecretSharingError("too many shares for the chosen field")

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------
    def _random_polynomial(self, secret: FieldElement) -> list[FieldElement]:
        coefficients = [secret]
        for _ in range(self.threshold - 1):
            coefficients.append(self.field(randbelow(self.field.modulus)))
        return coefficients

    def _evaluate(self, coefficients: list[FieldElement], x: FieldElement) -> FieldElement:
        # Horner evaluation.
        result = self.field.zero()
        for coefficient in reversed(coefficients):
            result = result * x + coefficient
        return result

    def split(self, secret: int | bytes) -> list[Share]:
        """Split ``secret`` into ``n`` shares, any ``t`` of which reconstruct it."""
        return self.split_with_polynomial(secret)[0]

    def split_with_polynomial(self, secret: int | bytes) -> tuple[list[Share], list[int]]:
        """Like :meth:`split`, but also return the polynomial coefficients.

        Feldman VSS and the DKG need the coefficients to publish commitments.
        All ``n`` share values come from one Horner sweep over the
        coefficients (see :func:`horner_evaluate_many`).
        """
        secret_element = self._coerce_secret(secret)
        coefficients = [c.value for c in self._random_polynomial(secret_element)]
        indices = list(range(1, self.num_shares + 1))
        values = horner_evaluate_many(coefficients, indices, self.field.modulus)
        return [Share(index, value) for index, value in zip(indices, values)], coefficients

    def split_many(self, secrets: list[int | bytes]) -> list[list[Share]]:
        """Split many secrets at once; returns one share list per secret.

        Each secret gets its own fresh random polynomial (shares of different
        secrets must stay independent); the batch form exists so callers
        sharing thousands of client keys go through one call.
        """
        return [self.split(secret) for secret in secrets]

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def reconstruct(self, shares: list[Share]) -> int:
        """Reconstruct the secret from at least ``t`` distinct shares."""
        if len(shares) < self.threshold:
            raise ThresholdError(
                f"need at least {self.threshold} shares, got {len(shares)}"
            )
        seen = set()
        points = []
        for share in shares:
            if share.index in seen:
                raise SecretSharingError(f"duplicate share index {share.index}")
            if not 1 <= share.index <= self.num_shares:
                raise SecretSharingError(f"share index {share.index} out of range")
            seen.add(share.index)
            points.append((share.index, share.value % self.field.modulus))
        # Only the first t shares are needed; extra shares are accepted but ignored
        # after a consistency check against the interpolated polynomial.
        secret = _lagrange_at_zero_int(points[: self.threshold], self.field.modulus)
        if len(points) > self.threshold:
            element_points = [(self.field(x), self.field(y)) for x, y in points]
            expected = self._interpolate_full(element_points[: self.threshold])
            for x, y in element_points[self.threshold:]:
                if self._evaluate(expected, x) != y:
                    raise SecretSharingError(
                        "extra shares are inconsistent with the reconstruction"
                    )
        return secret

    def reconstruct_bytes(self, shares: list[Share], length: int = 32) -> bytes:
        """Reconstruct and return the secret as a fixed-length byte string."""
        return self.reconstruct(shares).to_bytes(length, "big")

    def _interpolate_full(self, points: list[tuple[FieldElement, FieldElement]]) -> list[FieldElement]:
        """Recover polynomial coefficients by Lagrange interpolation (for consistency checks)."""
        field = self.field
        degree = len(points)
        coefficients = [field.zero()] * degree
        for i, (x_i, y_i) in enumerate(points):
            # Build the i-th Lagrange basis polynomial iteratively.
            basis = [field.one()]
            denominator = field.one()
            for j, (x_j, _) in enumerate(points):
                if i == j:
                    continue
                # basis *= (x - x_j)
                new_basis = [field.zero()] * (len(basis) + 1)
                for k, coefficient in enumerate(basis):
                    new_basis[k] = new_basis[k] + coefficient * (-x_j)
                    new_basis[k + 1] = new_basis[k + 1] + coefficient
                basis = new_basis
                denominator = denominator * (x_i - x_j)
            scale = y_i * denominator.inverse()
            for k, coefficient in enumerate(basis):
                coefficients[k] = coefficients[k] + coefficient * scale
        return coefficients

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _coerce_secret(self, secret: int | bytes) -> FieldElement:
        if isinstance(secret, bytes):
            value = int.from_bytes(secret, "big")
        else:
            value = secret
        if value < 0:
            raise SecretSharingError("secret must be non-negative")
        if value >= self.field.modulus:
            raise SecretSharingError("secret does not fit in the share field")
        return self.field(value)
