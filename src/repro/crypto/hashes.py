"""Hashing helpers: SHA-256 wrappers, HKDF, domain-separated hash-to-int.

The framework hashes code packages into digests, chains log entries, derives
sealing keys inside simulated enclaves, and hashes messages onto the simulated
bilinear group for BLS signing. All of that funnels through this module so that
domain separation is applied consistently.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = [
    "sha256",
    "sha256_hex",
    "double_sha256",
    "hmac_sha256",
    "hkdf_extract",
    "hkdf_expand",
    "hkdf",
    "hash_to_int",
    "tagged_hash",
]

DIGEST_SIZE = 32


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()


def sha256_hex(*parts: bytes) -> str:
    """SHA-256 over the concatenation of ``parts``, rendered as hex."""
    return sha256(*parts).hex()


def double_sha256(data: bytes) -> bytes:
    """SHA-256 applied twice (used by the hash-chain entries)."""
    return sha256(sha256(data))


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256."""
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract (RFC 5869) with SHA-256."""
    if not salt:
        salt = b"\x00" * DIGEST_SIZE
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand (RFC 5869) with SHA-256."""
    if length > 255 * DIGEST_SIZE:
        raise ValueError("HKDF-Expand length too large")
    blocks = []
    previous = b""
    counter = 1
    while len(b"".join(blocks)) < length:
        previous = hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot HKDF (extract-then-expand)."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


def tagged_hash(tag: str, *parts: bytes) -> bytes:
    """Domain-separated hash: ``SHA256(SHA256(tag) || SHA256(tag) || parts...)``.

    The construction mirrors BIP-340's tagged hashes and keeps every use of the
    hash function in the library on its own domain.
    """
    tag_digest = sha256(tag.encode("utf-8"))
    return sha256(tag_digest, tag_digest, *parts)


def hash_to_int(data: bytes, modulus: int, tag: str = "repro/hash-to-int") -> int:
    """Hash arbitrary bytes to an integer in ``[0, modulus)``.

    Uses rejection-free wide reduction: 64 bytes of tagged output reduced
    modulo ``modulus``, which keeps bias below 2^-128 for moduli up to 384 bits.
    """
    if modulus <= 1:
        raise ValueError("modulus must be > 1")
    wide = tagged_hash(tag, data) + tagged_hash(tag + "/2", data)
    return int.from_bytes(wide, "big") % modulus
