"""secp256k1 elliptic-curve arithmetic.

The framework uses a real elliptic-curve group for the signatures that matter
to its security argument: the developer's code-update signing key (sealed into
each TEE at provisioning time) and the simulated hardware vendors' attestation
keys. Schnorr and ECDSA signatures are built on top of this module.

The implementation is textbook short-Weierstrass arithmetic in affine
coordinates with a Jacobian fast path for scalar multiplication. It is not
constant time — the repository is a simulator, not a production crypto library
— but it is functionally correct and validated against the curve equation and
known-answer tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import CryptoError, InvalidPointError

__all__ = ["Secp256k1", "Point", "FixedBaseTable", "SECP256K1"]

# Standard secp256k1 domain parameters (SEC 2).
_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
_N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_A = 0
_B = 7
_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

# GLV endomorphism constants (secp256k1 has j-invariant 0, so the map
# phi(x, y) = (beta * x, y) is an endomorphism acting as multiplication by
# lambda on the prime-order group). Decomposing a scalar k into
# k = k1 + k2 * lambda (mod n) with |k1|, |k2| ~ sqrt(n) halves the doubling
# count of a variable-point multiply; the result is the same group element,
# bit for bit, as textbook double-and-add.
_BETA = 0x7AE96A2B657C07106E64479EAC3434E99CF0497512F58995C1396C28719501EE
_LAMBDA = 0x5363AD4CC05C30E0A5261C028812645A122E22EA20816678DF02967C1B23BD72
_GLV_A1 = 0x3086D221A7D46BCDE86C90E49284EB15
_GLV_B1 = -0xE4437ED6010E88286F547FA90ABFE4C3
_GLV_A2 = 0x114CA50F7A8E2F3F657C1108D9D44CFD8
_GLV_B2 = _GLV_A1

# Bound on the number of per-point multiplication tables retained by
# ``Secp256k1.table_for`` (LRU). Each table is ~1k Jacobian tuples.
_TABLE_CACHE_SIZE = 64

# Window width for the non-adjacent-form ladder inside ``multiply``: width 4
# means 8 precomputed odd multiples per half-scalar and roughly one addition
# every 6 ladder steps.
_WNAF_WIDTH = 4


def _wnaf(scalar: int, width: int = _WNAF_WIDTH) -> list[int]:
    """Width-``width`` non-adjacent form of a non-negative scalar, LSB first.

    Every non-zero digit is odd and in ``(-2^width, 2^width)``, and any two
    non-zero digits are at least ``width + 1`` positions apart — the digit
    density that makes the wNAF ladder cheap.
    """
    digits: list[int] = []
    modulus = 1 << (width + 1)
    half = 1 << width
    while scalar:
        if scalar & 1:
            digit = scalar & (modulus - 1)
            if digit >= half:
                digit -= modulus
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


@dataclass(frozen=True)
class Point:
    """A point on secp256k1 in affine coordinates; ``None`` coordinates = infinity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        """True for the point at infinity (the group identity)."""
        return self.x is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_infinity:
            return "Point(infinity)"
        return f"Point(x={hex(self.x)}, y={hex(self.y)})"


INFINITY = Point(None, None)


class FixedBaseTable:
    """Windowed precomputation table for repeated scalar multiplication of one point.

    Splits a scalar into ``ceil(256 / window)`` digits of ``window`` bits and
    precomputes ``digit * 2^(window*i) * P`` for every window position ``i``
    and digit value, so each multiplication costs one Jacobian addition per
    non-zero digit — no doublings at all — instead of the ~256 doublings plus
    ~128 additions of textbook double-and-add. Build the table once for a
    point that is multiplied many times (the curve generator, a server's
    long-lived public key) and amortize the one-time setup across calls.
    """

    def __init__(self, curve: "Secp256k1", point: Point, window: int = 4):
        if not 1 <= window <= 8:
            raise CryptoError("window width must be between 1 and 8 bits")
        if point.is_infinity:
            raise CryptoError("cannot precompute a table for the point at infinity")
        self.curve = curve
        self.point = point
        self.window = window
        self._mask = (1 << window) - 1
        bits = curve.n.bit_length()
        self._num_windows = (bits + window - 1) // window
        # _rows[i][d] = (d << (window * i)) * point in Jacobian coordinates,
        # for digits d in 1 .. 2^window - 1 (index 0 is unused: a zero digit
        # contributes nothing).
        self._rows: list[list[tuple[int, int, int]]] = []
        base = curve._to_jacobian(point)
        for _ in range(self._num_windows):
            accumulator = base
            row = [None, accumulator]
            for _ in range(self._mask - 1):
                accumulator = curve._jacobian_add(accumulator, base)
                row.append(accumulator)
            self._rows.append(row)
            for _ in range(window):
                base = curve._jacobian_double(base)

    def multiply(self, scalar: int) -> Point:
        """Return ``scalar * point`` using only table lookups and additions."""
        return self.curve._from_jacobian(self.multiply_jacobian(scalar))

    def multiply_jacobian(self, scalar: int) -> tuple[int, int, int]:
        """Like :meth:`multiply` but return Jacobian coordinates.

        Skips the final inversion, for callers that keep accumulating (e.g.
        batch Feldman verification sums many table multiplications before
        converting once).
        """
        scalar %= self.curve.n
        result = (0, 1, 0)
        window_index = 0
        while scalar:
            digit = scalar & self._mask
            if digit:
                result = self.curve._jacobian_add(result, self._rows[window_index][digit])
            scalar >>= self.window
            window_index += 1
        return result


class Secp256k1:
    """Group operations on the secp256k1 curve."""

    def __init__(self):
        self.p = _P
        self.n = _N
        self.a = _A
        self.b = _B
        self.generator = Point(_GX, _GY)
        self._generator_table: FixedBaseTable | None = None
        self._table_cache: OrderedDict[tuple, FixedBaseTable] = OrderedDict()
        self._point_sightings: OrderedDict[tuple, int] = OrderedDict()
        if not self.is_on_curve(self.generator):
            raise CryptoError("secp256k1 generator failed curve-equation check")

    # ------------------------------------------------------------------
    # Basic point predicates
    # ------------------------------------------------------------------
    def is_on_curve(self, point: Point) -> bool:
        """Check the curve equation y^2 = x^3 + 7 (mod p)."""
        if point.is_infinity:
            return True
        x, y = point.x, point.y
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    # ------------------------------------------------------------------
    # Affine group law (used for small cases and as a reference)
    # ------------------------------------------------------------------
    def add(self, p1: Point, p2: Point) -> Point:
        """Add two points using the affine group law."""
        if p1.is_infinity:
            return p2
        if p2.is_infinity:
            return p1
        if p1.x == p2.x and (p1.y + p2.y) % self.p == 0:
            return INFINITY
        if p1.x == p2.x:
            # Doubling
            slope = (3 * p1.x * p1.x + self.a) * pow(2 * p1.y, -1, self.p) % self.p
        else:
            slope = (p2.y - p1.y) * pow(p2.x - p1.x, -1, self.p) % self.p
        x3 = (slope * slope - p1.x - p2.x) % self.p
        y3 = (slope * (p1.x - x3) - p1.y) % self.p
        return Point(x3, y3)

    def negate(self, point: Point) -> Point:
        """Return the additive inverse of a point."""
        if point.is_infinity:
            return INFINITY
        return Point(point.x, (-point.y) % self.p)

    # ------------------------------------------------------------------
    # Jacobian scalar multiplication (fast path)
    # ------------------------------------------------------------------
    def _to_jacobian(self, point: Point) -> tuple[int, int, int]:
        if point.is_infinity:
            return (0, 1, 0)
        return (point.x, point.y, 1)

    def _from_jacobian(self, jac: tuple[int, int, int]) -> Point:
        x, y, z = jac
        if z == 0:
            return INFINITY
        z_inv = pow(z, -1, self.p)
        z_inv2 = z_inv * z_inv % self.p
        return Point(x * z_inv2 % self.p, y * z_inv2 * z_inv % self.p)

    def _jacobian_double(self, jac: tuple[int, int, int]) -> tuple[int, int, int]:
        x, y, z = jac
        if y == 0 or z == 0:
            return (0, 1, 0)
        p = self.p
        yy = y * y % p
        s = 4 * x * yy % p
        m = 3 * x * x % p
        x3 = (m * m - 2 * s) % p
        y3 = (m * (s - x3) - 8 * yy * yy) % p
        z3 = 2 * y * z % p
        return (x3, y3, z3)

    def _jacobian_add(self, a: tuple[int, int, int], b: tuple[int, int, int]) -> tuple[int, int, int]:
        p = self.p
        x1, y1, z1 = a
        x2, y2, z2 = b
        if z1 == 0:
            return b
        if z2 == 0:
            return a
        z1z1 = z1 * z1 % p
        z2z2 = z2 * z2 % p
        u1 = x1 * z2z2 % p
        u2 = x2 * z1z1 % p
        s1 = y1 * z2 * z2z2 % p
        s2 = y2 * z1 * z1z1 % p
        if u1 == u2:
            if s1 != s2:
                return (0, 1, 0)
            return self._jacobian_double(a)
        h = (u2 - u1) % p
        i = 4 * h * h % p
        j = h * i % p
        r = 2 * (s2 - s1) % p
        v = u1 * i % p
        x3 = (r * r - j - 2 * v) % p
        y3 = (r * (v - x3) - 2 * s1 * j) % p
        z3 = 2 * h * z1 * z2 % p
        return (x3, y3, z3)

    def multiply(self, point: Point, scalar: int) -> Point:
        """Scalar multiplication ``scalar * point``.

        Uses the GLV endomorphism: the scalar is split into two half-width
        components processed in one interleaved wNAF ladder (half the
        doublings and far fewer additions than textbook double-and-add).
        The returned point is identical to the textbook result — this is a
        speedup, not a behavior change, so seeded runs stay bit-identical.
        """
        scalar %= self.n
        if scalar == 0 or point.is_infinity:
            return INFINITY
        k1, k2 = self._glv_split(scalar)
        p = self.p
        base1 = (point.x, point.y, 1)
        if k1 < 0:
            k1 = -k1
            base1 = (base1[0], p - base1[1], 1)
        base2 = (point.x * _BETA % p, point.y, 1)
        if k2 < 0:
            k2 = -k2
            base2 = (base2[0], p - base2[1], 1)
        naf1 = _wnaf(k1)
        naf2 = _wnaf(k2)
        odd1 = self._odd_multiples(base1) if naf1 else None
        odd2 = self._odd_multiples(base2) if naf2 else None
        result = (0, 1, 0)
        double = self._jacobian_double
        add = self._jacobian_add
        length1 = len(naf1)
        length2 = len(naf2)
        for index in range(max(length1, length2) - 1, -1, -1):
            result = double(result)
            if index < length1:
                digit = naf1[index]
                if digit:
                    if digit > 0:
                        result = add(result, odd1[digit >> 1])
                    else:
                        x, y, z = odd1[(-digit) >> 1]
                        result = add(result, (x, p - y if y else 0, z))
            if index < length2:
                digit = naf2[index]
                if digit:
                    if digit > 0:
                        result = add(result, odd2[digit >> 1])
                    else:
                        x, y, z = odd2[(-digit) >> 1]
                        result = add(result, (x, p - y if y else 0, z))
        return self._from_jacobian(result)

    def _glv_split(self, scalar: int) -> tuple[int, int]:
        """Decompose ``scalar`` into ``(k1, k2)`` with ``k1 + k2*lambda = scalar (mod n)``."""
        n = self.n
        c1 = (_GLV_B2 * scalar + (n >> 1)) // n
        c2 = (-_GLV_B1 * scalar + (n >> 1)) // n
        k1 = scalar - c1 * _GLV_A1 - c2 * _GLV_A2
        k2 = -c1 * _GLV_B1 - c2 * _GLV_B2
        return k1, k2

    def _odd_multiples(self, base: tuple[int, int, int]) -> list[tuple[int, int, int]]:
        """Jacobian odd multiples ``[1, 3, 5, ..., 2^w - 1] * base`` for the wNAF ladder."""
        twice = self._jacobian_double(base)
        multiples = [base]
        add = self._jacobian_add
        for _ in range((1 << (_WNAF_WIDTH - 1)) - 1):
            multiples.append(add(multiples[-1], twice))
        return multiples

    def precompute(self, point: Point, window: int = 4) -> FixedBaseTable:
        """Build a :class:`FixedBaseTable` for a point that is multiplied often."""
        return FixedBaseTable(self, point, window=window)

    def table_for(self, point: Point, window: int = 4) -> FixedBaseTable:
        """A shared, LRU-bounded :class:`FixedBaseTable` for ``point``.

        Signature verification multiplies the *signer's* public key by a fresh
        scalar on every call; for long-lived keys (a vendor's attestation key,
        a deployment's update-signing key, an auditor checkpoint key) the same
        point recurs thousands of times. This cache amortizes one table build
        across all of them while staying memory-bounded: at most
        ``_TABLE_CACHE_SIZE`` distinct points are retained, least recently
        used evicted first. Ephemeral points simply age out.
        """
        key = (point.x, point.y, window)
        table = self._table_cache.get(key)
        if table is not None:
            self._table_cache.move_to_end(key)
            return table
        table = FixedBaseTable(self, point, window=window)
        self._table_cache[key] = table
        while len(self._table_cache) > _TABLE_CACHE_SIZE:
            self._table_cache.popitem(last=False)
        return table

    def multiply_cached(self, point: Point, scalar: int) -> Point:
        """Like :meth:`multiply`, but amortize repeated points through a table.

        A :class:`FixedBaseTable` costs roughly ten plain multiplies to build,
        so building one eagerly would penalize points seen once (a fresh
        ephemeral key). Instead the point is multiplied directly on first
        sighting and promoted to a cached table on its second — after that,
        every multiply is table lookups plus additions. Signature
        verification over long-lived keys (attestation roots, update-signing
        keys, log heads) is the intended caller.
        """
        if point.is_infinity:
            return INFINITY
        key = (point.x, point.y, 4)
        table = self._table_cache.get(key)
        if table is not None:
            self._table_cache.move_to_end(key)
            return table.multiply(scalar)
        seen = self._point_sightings
        count = seen.get(key, 0) + 1
        if count >= 2:
            seen.pop(key, None)
            return self.table_for(point).multiply(scalar)
        seen[key] = count
        while len(seen) > _TABLE_CACHE_SIZE * 4:
            seen.popitem(last=False)
        return self.multiply(point, scalar)

    def generator_multiply(self, scalar: int) -> Point:
        """Multiply the standard generator by ``scalar``.

        Uses a lazily built fixed-base window table, so every caller of the
        hot fixed-base path (key generation, Schnorr/ECDSA signing, Feldman
        commitments) shares one precomputation.
        """
        if self._generator_table is None:
            self._generator_table = FixedBaseTable(self, self.generator)
        return self._generator_table.multiply(scalar)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def encode_point(self, point: Point, compressed: bool = True) -> bytes:
        """Serialize a point (SEC 1: 0x02/0x03 compressed, 0x04 uncompressed, 0x00 infinity)."""
        if point.is_infinity:
            return b"\x00"
        if compressed:
            prefix = b"\x02" if point.y % 2 == 0 else b"\x03"
            return prefix + point.x.to_bytes(32, "big")
        return b"\x04" + point.x.to_bytes(32, "big") + point.y.to_bytes(32, "big")

    def decode_point(self, data: bytes) -> Point:
        """Deserialize a point produced by :meth:`encode_point`."""
        if data == b"\x00":
            return INFINITY
        if not data:
            raise InvalidPointError("empty point encoding")
        prefix = data[0]
        if prefix == 0x04:
            if len(data) != 65:
                raise InvalidPointError("bad uncompressed point length")
            x = int.from_bytes(data[1:33], "big")
            y = int.from_bytes(data[33:65], "big")
            point = Point(x, y)
        elif prefix in (0x02, 0x03):
            if len(data) != 33:
                raise InvalidPointError("bad compressed point length")
            x = int.from_bytes(data[1:33], "big")
            if x >= self.p:
                raise InvalidPointError("x coordinate out of range")
            y_squared = (pow(x, 3, self.p) + self.a * x + self.b) % self.p
            y = pow(y_squared, (self.p + 1) // 4, self.p)
            if y * y % self.p != y_squared:
                raise InvalidPointError("point is not on the curve")
            if (y % 2 == 0) != (prefix == 0x02):
                y = self.p - y
            point = Point(x, y)
        else:
            raise InvalidPointError(f"unknown point prefix {prefix:#x}")
        if not self.is_on_curve(point):
            raise InvalidPointError("decoded point is not on the curve")
        return point


# Shared curve instance: the curve is stateless, so one instance serves the package.
SECP256K1 = Secp256k1()
