"""Merkle trees with RFC 6962 / RFC 9162 (Certificate Transparency) semantics.

The CT-style transparency log in :mod:`repro.transparency.ct_log` stores code
digests as leaves of a Merkle tree and serves *inclusion proofs* ("this digest
is in the tree with this root") and *consistency proofs* ("the tree with root A
is a prefix of the tree with root B"). Proof generation follows RFC 6962 §2.1
and verification follows the RFC 9162 algorithms, so the log behaves like the
deployed certificate-transparency infrastructure the paper points to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.errors import InclusionProofError, LogConsistencyError

__all__ = ["MerkleTree", "InclusionProof", "BatchInclusionProof", "ConsistencyProof",
           "leaf_hash", "node_hash"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    """RFC 6962 leaf hash: ``SHA-256(0x00 || data)``."""
    return sha256(_LEAF_PREFIX, data)


def node_hash(left: bytes, right: bytes) -> bytes:
    """RFC 6962 interior-node hash: ``SHA-256(0x01 || left || right)``."""
    return sha256(_NODE_PREFIX, left, right)


def _largest_power_of_two_less_than(n: int) -> int:
    """Largest power of two strictly less than ``n`` (requires ``n >= 2``)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


@dataclass(frozen=True)
class InclusionProof:
    """Proof that the leaf at ``leaf_index`` is included in a tree of ``tree_size`` leaves."""

    leaf_index: int
    tree_size: int
    audit_path: tuple[bytes, ...]

    def verify(self, leaf_data: bytes, root: bytes) -> bool:
        """Verify against a leaf's raw data and an expected root (RFC 9162 §2.1.3.2)."""
        if not 0 <= self.leaf_index < self.tree_size:
            return False
        fn = self.leaf_index
        sn = self.tree_size - 1
        result = leaf_hash(leaf_data)
        for sibling in self.audit_path:
            if sn == 0:
                return False
            if fn & 1 or fn == sn:
                result = node_hash(sibling, result)
                if not fn & 1:
                    while fn & 1 == 0 and fn != 0:
                        fn >>= 1
                        sn >>= 1
            else:
                result = node_hash(result, sibling)
            fn >>= 1
            sn >>= 1
        return sn == 0 and result == root

    def to_dict(self) -> dict:
        """Plain-data representation (hex-encoded path) for wire transfer."""
        return {
            "leaf_index": self.leaf_index,
            "tree_size": self.tree_size,
            "audit_path": [h.hex() for h in self.audit_path],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InclusionProof":
        """Rebuild a proof from :meth:`to_dict` output."""
        return cls(
            int(data["leaf_index"]),
            int(data["tree_size"]),
            tuple(bytes.fromhex(h) for h in data["audit_path"]),
        )


@dataclass(frozen=True)
class BatchInclusionProof:
    """One proof that *several* leaves are included in the same tree.

    Many clients sharing an audit checkpoint all need inclusion proofs against
    the same signed tree head. Issuing one :class:`InclusionProof` per leaf
    repeats every shared interior node once per client; this proof instead
    supplies each uncovered subtree root exactly once, so the proof size (and
    the verification work) grows with the *frontier* of the target set, not
    with ``len(targets) * log(tree_size)``.

    ``path`` lists the roots of the maximal subtrees containing no target
    leaf, in the deterministic order of an in-order walk of the RFC 6962
    recursion (left subtree before right). Verification replays the same walk,
    consuming one path element per target-free subtree and recomputing every
    subtree that contains a target from the claimed leaf data.
    """

    leaf_indices: tuple[int, ...]
    tree_size: int
    path: tuple[bytes, ...]

    def verify(self, leaves: tuple[bytes, ...], root: bytes) -> bool:
        """Verify that ``leaves`` (aligned with ``leaf_indices``) are all included."""
        indices = self.leaf_indices
        if len(leaves) != len(indices) or not indices:
            return False
        if list(indices) != sorted(set(indices)):
            return False
        if not (0 <= indices[0] and indices[-1] < self.tree_size):
            return False
        by_index = {index: bytes(leaf) for index, leaf in zip(indices, leaves)}
        path = iter(self.path)
        try:
            computed = self._walk(by_index, 0, self.tree_size, path)
        except StopIteration:
            return False  # proof path too short for this target set
        if next(path, None) is not None:
            return False  # unconsumed path elements: proof/target mismatch
        return computed == root

    @classmethod
    def _walk(cls, by_index: dict, start: int, size: int, path) -> bytes:
        if not any(start <= index < start + size for index in by_index):
            return next(path)
        if size == 1:
            return leaf_hash(by_index[start])
        mid = _largest_power_of_two_less_than(size)
        left = cls._walk(by_index, start, mid, path)
        right = cls._walk(by_index, start + mid, size - mid, path)
        return node_hash(left, right)

    def to_dict(self) -> dict:
        """Plain-data representation (hex-encoded path) for wire transfer."""
        return {
            "leaf_indices": list(self.leaf_indices),
            "tree_size": self.tree_size,
            "path": [h.hex() for h in self.path],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchInclusionProof":
        """Rebuild a proof from :meth:`to_dict` output."""
        return cls(
            tuple(int(i) for i in data["leaf_indices"]),
            int(data["tree_size"]),
            tuple(bytes.fromhex(h) for h in data["path"]),
        )


@dataclass(frozen=True)
class ConsistencyProof:
    """Proof that the tree of size ``old_size`` is a prefix of the tree of size ``new_size``."""

    old_size: int
    new_size: int
    path: tuple[bytes, ...]

    def verify(self, old_root: bytes, new_root: bytes) -> bool:
        """Verify between two tree heads (RFC 9162 §2.1.4.2)."""
        if self.old_size > self.new_size:
            return False
        if self.old_size == 0:
            # An empty tree is a prefix of every tree; no path needed.
            return not self.path
        if self.old_size == self.new_size:
            return old_root == new_root and not self.path
        path = list(self.path)
        # If old_size is an exact power of two, the old root itself seeds the walk.
        if self.old_size & (self.old_size - 1) == 0:
            path.insert(0, old_root)
        if not path:
            return False
        fn = self.old_size - 1
        sn = self.new_size - 1
        while fn & 1:
            fn >>= 1
            sn >>= 1
        fr = sr = path[0]
        for sibling in path[1:]:
            if sn == 0:
                return False
            if fn & 1 or fn == sn:
                fr = node_hash(sibling, fr)
                sr = node_hash(sibling, sr)
                if not fn & 1:
                    while fn & 1 == 0 and fn != 0:
                        fn >>= 1
                        sn >>= 1
            else:
                sr = node_hash(sr, sibling)
            fn >>= 1
            sn >>= 1
        return sn == 0 and fr == old_root and sr == new_root

    def to_dict(self) -> dict:
        """Plain-data representation (hex-encoded path) for wire transfer."""
        return {
            "old_size": self.old_size,
            "new_size": self.new_size,
            "path": [h.hex() for h in self.path],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConsistencyProof":
        """Rebuild a proof from :meth:`to_dict` output."""
        return cls(
            int(data["old_size"]),
            int(data["new_size"]),
            tuple(bytes.fromhex(h) for h in data["path"]),
        )


class MerkleTree:
    """An append-only Merkle tree over byte-string leaves (RFC 6962 hashing)."""

    def __init__(self, leaves: list[bytes] | None = None):
        self._leaves: list[bytes] = []
        self._leaf_hashes: list[bytes] = []
        for leaf in leaves or []:
            self.append(leaf)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, leaf: bytes) -> int:
        """Append a leaf; returns its index."""
        self._leaves.append(bytes(leaf))
        self._leaf_hashes.append(leaf_hash(leaf))
        return len(self._leaves) - 1

    def extend(self, leaves: list[bytes]) -> None:
        """Append several leaves in order."""
        for leaf in leaves:
            self.append(leaf)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of leaves currently in the tree."""
        return len(self._leaves)

    def leaf(self, index: int) -> bytes:
        """Return the raw leaf data at ``index``."""
        return self._leaves[index]

    def leaves(self) -> list[bytes]:
        """Return a copy of all leaves in append order."""
        return list(self._leaves)

    def root(self, size: int | None = None) -> bytes:
        """Merkle root over the first ``size`` leaves (default: all of them).

        The empty tree's root is ``SHA-256("")`` per RFC 6962.
        """
        if size is None:
            size = self.size
        if not 0 <= size <= self.size:
            raise InclusionProofError("requested root for size beyond the tree")
        if size == 0:
            return sha256(b"")
        return self._subtree_root(0, size)

    def _subtree_root(self, start: int, size: int) -> bytes:
        if size == 1:
            return self._leaf_hashes[start]
        mid = _largest_power_of_two_less_than(size)
        return node_hash(
            self._subtree_root(start, mid),
            self._subtree_root(start + mid, size - mid),
        )

    # ------------------------------------------------------------------
    # Proof generation
    # ------------------------------------------------------------------
    def inclusion_proof(self, leaf_index: int, tree_size: int | None = None) -> InclusionProof:
        """Build an inclusion proof for ``leaf_index`` in the tree of ``tree_size`` leaves."""
        if tree_size is None:
            tree_size = self.size
        if not 0 <= leaf_index < tree_size <= self.size:
            raise InclusionProofError("leaf index or tree size out of range")
        path = self._inclusion_path(leaf_index, 0, tree_size)
        return InclusionProof(leaf_index, tree_size, tuple(path))

    def _inclusion_path(self, index: int, start: int, size: int) -> list[bytes]:
        if size == 1:
            return []
        mid = _largest_power_of_two_less_than(size)
        if index < mid:
            path = self._inclusion_path(index, start, mid)
            path.append(self._subtree_root(start + mid, size - mid))
        else:
            path = self._inclusion_path(index - mid, start + mid, size - mid)
            path.append(self._subtree_root(start, mid))
        return path

    def batch_inclusion_proof(self, leaf_indices, tree_size: int | None = None) -> BatchInclusionProof:
        """Build one shared proof covering every leaf in ``leaf_indices``.

        The path contains the root of each maximal target-free subtree exactly
        once, in the in-order position where verification will consume it.
        """
        if tree_size is None:
            tree_size = self.size
        indices = sorted(set(int(i) for i in leaf_indices))
        if not indices:
            raise InclusionProofError("batch inclusion proof needs at least one leaf")
        if not (0 <= indices[0] and indices[-1] < tree_size <= self.size):
            raise InclusionProofError("leaf index or tree size out of range")
        path: list[bytes] = []
        self._batch_path(indices, 0, tree_size, path)
        return BatchInclusionProof(tuple(indices), tree_size, tuple(path))

    def _batch_path(self, indices: list[int], start: int, size: int, path: list[bytes]) -> None:
        if not any(start <= index < start + size for index in indices):
            path.append(self._subtree_root(start, size))
            return
        if size == 1:
            return  # the verifier recomputes target leaves from their data
        mid = _largest_power_of_two_less_than(size)
        self._batch_path(indices, start, mid, path)
        self._batch_path(indices, start + mid, size - mid, path)

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> ConsistencyProof:
        """Build a consistency proof between two tree sizes (RFC 6962 §2.1.2)."""
        if new_size is None:
            new_size = self.size
        if not 0 <= old_size <= new_size <= self.size:
            raise LogConsistencyError("inconsistent sizes for consistency proof")
        if old_size == 0 or old_size == new_size:
            return ConsistencyProof(old_size, new_size, tuple())
        path = self._consistency_subproof(old_size, 0, new_size, True)
        return ConsistencyProof(old_size, new_size, tuple(path))

    def _consistency_subproof(self, m: int, start: int, n: int, complete: bool) -> list[bytes]:
        if m == n:
            if complete:
                return []
            return [self._subtree_root(start, n)]
        mid = _largest_power_of_two_less_than(n)
        if m <= mid:
            path = self._consistency_subproof(m, start, mid, complete)
            path.append(self._subtree_root(start + mid, n - mid))
        else:
            path = self._consistency_subproof(m - mid, start + mid, n - mid, False)
            path.append(self._subtree_root(start, mid))
        return path
