"""A simulated bilinear (pairing-friendly) group.

The paper's prototype builds a BLS threshold-signature application on libBLS,
which works over the pairing-friendly curve BLS12-381. A production pairing
implementation is far outside the scope of a simulator, so this module provides
a *structurally faithful*, cryptographically insecure stand-in:

* three groups G1, G2, GT of the same prime order ``r`` (the BLS12-381 scalar
  field order, so exponent arithmetic matches the real curve),
* elements are represented internally by their discrete logarithms relative to
  fixed generators, but the public API is the same as a real pairing library's
  (``add``, ``multiply``, ``hash_to_g1``, ``pairing``), and the representation
  is wrapped in opaque classes plus a masked serialization so application code
  cannot "accidentally" use the trapdoor,
* the pairing satisfies bilinearity exactly: ``e(a·P, b·Q) = e(P, Q)^{ab}``.

Every algebraic identity that BLS signing, verification, aggregation, and
Lagrange-in-the-exponent rely on therefore holds, which is what the
reproduction needs; only the hardness assumption is simulated. DESIGN.md
documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import hash_to_int, hkdf, sha256
from repro.errors import CryptoError, InvalidPointError

__all__ = ["BilinearGroup", "G1Element", "G2Element", "GTElement", "BLS_SCALAR_ORDER"]

# The BLS12-381 scalar-field order r (a 255-bit prime), so exponent arithmetic
# is identical to what libBLS would perform.
BLS_SCALAR_ORDER = 0x73EDA753299D7D483339D80809A1D80553BDA402FFFE5BFEFFFFFFFF00000001

# Masks applied during serialization so that serialized elements do not expose
# the internal discrete-log representation directly.
_G1_MASK = int.from_bytes(sha256(b"repro/bilinear/g1-mask"), "big")
_G2_MASK = int.from_bytes(sha256(b"repro/bilinear/g2-mask"), "big")
_GT_MASK = int.from_bytes(sha256(b"repro/bilinear/gt-mask"), "big")


@dataclass(frozen=True)
class _GroupElement:
    """Base class for simulated group elements (internal exponent representation)."""

    exponent: int

    _mask: int = 0
    _tag: str = "?"

    def __eq__(self, other) -> bool:
        if isinstance(other, _GroupElement):
            return self._tag == other._tag and self.exponent == other.exponent
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._tag, self.exponent))

    def to_bytes(self) -> bytes:
        """Serialize the element (masked, fixed 48-byte encoding)."""
        masked = (self.exponent ^ self._mask) % (1 << 384)
        return self._tag.encode("ascii").ljust(4, b"\x00") + masked.to_bytes(44, "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_bytes().hex()[:16]}...)"


class G1Element(_GroupElement):
    """An element of the simulated G1 group (where BLS signatures live)."""

    def __init__(self, exponent: int):
        super().__init__(exponent % BLS_SCALAR_ORDER, _G1_MASK, "G1")


class G2Element(_GroupElement):
    """An element of the simulated G2 group (where BLS public keys live)."""

    def __init__(self, exponent: int):
        super().__init__(exponent % BLS_SCALAR_ORDER, _G2_MASK, "G2")


class GTElement(_GroupElement):
    """An element of the simulated target group GT (pairing outputs)."""

    def __init__(self, exponent: int):
        super().__init__(exponent % BLS_SCALAR_ORDER, _GT_MASK, "GT")


_CLASS_BY_TAG = {"G1": G1Element, "G2": G2Element, "GT": GTElement}
_MASK_BY_TAG = {"G1": _G1_MASK, "G2": _G2_MASK, "GT": _GT_MASK}


class BilinearGroup:
    """Operations on the simulated bilinear group (G1, G2, GT) of prime order r."""

    order = BLS_SCALAR_ORDER

    # ------------------------------------------------------------------
    # Generators and identities
    # ------------------------------------------------------------------
    def g1_generator(self) -> G1Element:
        """The fixed G1 generator."""
        return G1Element(1)

    def g2_generator(self) -> G2Element:
        """The fixed G2 generator."""
        return G2Element(1)

    def g1_identity(self) -> G1Element:
        """The G1 identity element."""
        return G1Element(0)

    def g2_identity(self) -> G2Element:
        """The G2 identity element."""
        return G2Element(0)

    def gt_identity(self) -> GTElement:
        """The GT identity element."""
        return GTElement(0)

    # ------------------------------------------------------------------
    # Group operations
    # ------------------------------------------------------------------
    def add(self, a: _GroupElement, b: _GroupElement) -> _GroupElement:
        """Group operation (written additively for G1/G2, multiplicatively for GT)."""
        if type(a) is not type(b):
            raise CryptoError("cannot combine elements of different groups")
        return type(a)((a.exponent + b.exponent) % self.order)

    def negate(self, a: _GroupElement) -> _GroupElement:
        """Inverse element."""
        return type(a)((-a.exponent) % self.order)

    def multiply(self, a: _GroupElement, scalar: int) -> _GroupElement:
        """Scalar multiplication ``scalar · a``."""
        return type(a)((a.exponent * (scalar % self.order)) % self.order)

    def hash_to_g1(self, message: bytes, domain: bytes = b"repro/bls/h2c") -> G1Element:
        """Hash an arbitrary message onto G1 (the BLS ``H(m)`` map)."""
        # Expand-then-reduce so the map is indistinguishable from uniform.
        expanded = hkdf(message, salt=domain, info=b"hash-to-g1", length=64)
        return G1Element(int.from_bytes(expanded, "big") % self.order)

    def hash_to_scalar(self, message: bytes, domain: str = "repro/bls/h2s") -> int:
        """Hash a message to a scalar in [0, r)."""
        return hash_to_int(message, self.order, tag=domain)

    def pairing(self, p: G1Element, q: G2Element) -> GTElement:
        """The bilinear map ``e : G1 × G2 → GT``.

        Satisfies ``e(aP, bQ) = e(P, Q)^{ab}`` exactly, which is the only
        property BLS verification and aggregation rely on.
        """
        if not isinstance(p, G1Element) or not isinstance(q, G2Element):
            raise CryptoError("pairing expects (G1, G2) arguments")
        return GTElement((p.exponent * q.exponent) % self.order)

    def multi_pairing(self, pairs: list[tuple[G1Element, G2Element]]) -> GTElement:
        """Product of pairings, as used by batched BLS verification."""
        accumulator = self.gt_identity()
        for p, q in pairs:
            accumulator = self.add(accumulator, self.pairing(p, q))
        return accumulator

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def element_from_bytes(self, data: bytes) -> _GroupElement:
        """Deserialize a group element produced by ``to_bytes``."""
        if len(data) != 48:
            raise InvalidPointError("bilinear group elements serialize to 48 bytes")
        tag = data[:4].rstrip(b"\x00").decode("ascii", errors="replace")
        if tag not in _CLASS_BY_TAG:
            raise InvalidPointError(f"unknown group tag {tag!r}")
        masked = int.from_bytes(data[4:], "big")
        exponent = (masked ^ _MASK_BY_TAG[tag]) % self.order
        return _CLASS_BY_TAG[tag](exponent)

    def random_scalar(self, rng=None) -> int:
        """Sample a random scalar in [1, r)."""
        if rng is None:
            from repro.crypto.rng import randbelow

            return 1 + randbelow(self.order - 1)
        return 1 + rng.randrange(self.order - 1)
