"""BLS signatures, aggregation, and (t, n) threshold signing.

This is the application evaluated in the paper's §5/Table 3: each trust domain
holds one share of a BLS signing key and produces a *signature share* on a
message; any ``t`` shares combine (via Lagrange interpolation in the exponent)
into a signature that verifies under the single group public key.

The scheme runs over :class:`~repro.crypto.bilinear.BilinearGroup` — a
simulated pairing (see that module and DESIGN.md for the substitution
rationale). All of the algebra (minimal-pubkey-size BLS: signatures in G1,
public keys in G2) matches libBLS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.bilinear import (
    BLS_SCALAR_ORDER,
    BilinearGroup,
    G1Element,
    G2Element,
)
from repro.crypto.field import PrimeField, lagrange_interpolate_at_zero
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.errors import CryptoError, ThresholdError

__all__ = [
    "BlsKeyPair",
    "BlsSignature",
    "BlsSignatureShare",
    "BlsThresholdScheme",
    "bls_keygen",
    "bls_sign",
    "bls_verify",
    "bls_aggregate",
    "bls_aggregate_verify",
]

_GROUP = BilinearGroup()
_SCALAR_FIELD = PrimeField(BLS_SCALAR_ORDER, unsafe_skip_check=True)


@dataclass(frozen=True)
class BlsSignature:
    """A BLS signature (an element of G1)."""

    element: G1Element

    def to_bytes(self) -> bytes:
        """Serialize the signature (48 bytes)."""
        return self.element.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BlsSignature":
        """Deserialize a signature produced by :meth:`to_bytes`."""
        element = _GROUP.element_from_bytes(data)
        if not isinstance(element, G1Element):
            raise CryptoError("BLS signature must be a G1 element")
        return cls(element)


@dataclass(frozen=True)
class BlsSignatureShare:
    """A partial signature produced by one trust domain in the threshold scheme."""

    signer_index: int
    signature: BlsSignature


@dataclass(frozen=True)
class BlsKeyPair:
    """A BLS key pair: secret scalar and public key in G2."""

    secret_key: int
    public_key: G2Element

    def public_bytes(self) -> bytes:
        """Serialize the public key."""
        return self.public_key.to_bytes()


def bls_keygen(seed: bytes | None = None) -> BlsKeyPair:
    """Generate a BLS key pair, optionally deterministically from a seed."""
    if seed is None:
        from repro.crypto.rng import randbelow

        secret = 1 + randbelow(BLS_SCALAR_ORDER - 1)
    else:
        secret = 1 + _GROUP.hash_to_scalar(seed, domain="repro/bls/keygen") % (
            BLS_SCALAR_ORDER - 1
        )
    public = _GROUP.multiply(_GROUP.g2_generator(), secret)
    return BlsKeyPair(secret, public)


def bls_sign(secret_key: int, message: bytes) -> BlsSignature:
    """Sign a message: ``sigma = sk · H(m)`` with ``H`` hashing onto G1."""
    h = _GROUP.hash_to_g1(message)
    return BlsSignature(_GROUP.multiply(h, secret_key))


def bls_verify(public_key: G2Element, message: bytes, signature: BlsSignature) -> bool:
    """Verify a BLS signature with the pairing check ``e(sigma, g2) == e(H(m), pk)``."""
    h = _GROUP.hash_to_g1(message)
    left = _GROUP.pairing(signature.element, _GROUP.g2_generator())
    right = _GROUP.pairing(h, public_key)
    return left == right


def bls_aggregate(signatures: list[BlsSignature]) -> BlsSignature:
    """Aggregate signatures on (possibly distinct) messages into one G1 element."""
    if not signatures:
        raise CryptoError("cannot aggregate zero signatures")
    accumulator = _GROUP.g1_identity()
    for signature in signatures:
        accumulator = _GROUP.add(accumulator, signature.element)
    return BlsSignature(accumulator)


def bls_aggregate_verify(
    public_keys: list[G2Element], messages: list[bytes], signature: BlsSignature
) -> bool:
    """Verify an aggregate signature over per-signer messages."""
    if len(public_keys) != len(messages) or not public_keys:
        return False
    left = _GROUP.pairing(signature.element, _GROUP.g2_generator())
    right = _GROUP.multi_pairing(
        [(_GROUP.hash_to_g1(m), pk) for m, pk in zip(messages, public_keys)]
    )
    return left == right


class BlsThresholdScheme:
    """A (t, n) threshold BLS signature scheme.

    The dealer (or a DKG) Shamir-shares the secret key across ``n`` signers.
    Each signer produces a signature share; any ``t`` shares combine into a
    signature under the group public key.
    """

    def __init__(self, threshold: int, num_signers: int):
        if threshold < 1 or num_signers < threshold:
            raise CryptoError("invalid threshold parameters")
        self.threshold = threshold
        self.num_signers = num_signers
        self.group = _GROUP

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------
    def keygen(self, seed: bytes | None = None) -> tuple[G2Element, list[Share]]:
        """Generate a group key pair and Shamir shares of the secret key.

        Returns:
            ``(group_public_key, secret_key_shares)`` where share ``i`` goes to
            signer ``i`` (1-indexed).
        """
        keypair = bls_keygen(seed)
        sharing = ShamirSecretSharing(self.threshold, self.num_signers, _SCALAR_FIELD)
        shares = sharing.split(keypair.secret_key)
        return keypair.public_key, shares

    def public_key_share(self, share: Share) -> G2Element:
        """Derive the public verification key for a single signer's share."""
        return self.group.multiply(self.group.g2_generator(), share.value)

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def sign_share(self, share: Share, message: bytes) -> BlsSignatureShare:
        """Produce one signer's partial signature: ``sk_i · H(m)``."""
        return BlsSignatureShare(share.index, bls_sign(share.value, message))

    def verify_share(
        self, share_public_key: G2Element, message: bytes, signature_share: BlsSignatureShare
    ) -> bool:
        """Verify a single partial signature against that signer's public key share."""
        return bls_verify(share_public_key, message, signature_share.signature)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def combine(self, shares: list[BlsSignatureShare]) -> BlsSignature:
        """Combine at least ``t`` signature shares via Lagrange interpolation in the exponent."""
        if len(shares) < self.threshold:
            raise ThresholdError(
                f"need {self.threshold} signature shares, got {len(shares)}"
            )
        selected = shares[: self.threshold]
        indices = [s.signer_index for s in selected]
        if len(set(indices)) != len(indices):
            raise CryptoError("duplicate signer indices in signature shares")
        coefficients = self._lagrange_coefficients(indices)
        accumulator = self.group.g1_identity()
        for signature_share, coefficient in zip(selected, coefficients):
            term = self.group.multiply(signature_share.signature.element, coefficient)
            accumulator = self.group.add(accumulator, term)
        return BlsSignature(accumulator)

    def _lagrange_coefficients(self, indices: list[int]) -> list[int]:
        """Lagrange coefficients at zero for the given signer indices."""
        coefficients = []
        for i in indices:
            numerator = _SCALAR_FIELD.one()
            denominator = _SCALAR_FIELD.one()
            for j in indices:
                if i == j:
                    continue
                numerator = numerator * _SCALAR_FIELD(-j)
                denominator = denominator * _SCALAR_FIELD(i - j)
            coefficients.append((numerator * denominator.inverse()).value)
        return coefficients

    def verify(self, public_key: G2Element, message: bytes, signature: BlsSignature) -> bool:
        """Verify a combined threshold signature under the group public key."""
        return bls_verify(public_key, message, signature)
