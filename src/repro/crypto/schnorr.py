"""Schnorr signatures over secp256k1.

This is the default signature scheme for developer code-update manifests and
for the signed tree heads emitted by transparency logs. The construction
follows the classic Schnorr identification-scheme transform with RFC-6979-style
deterministic nonces (derived from the key and message via a tagged hash), so
signing never needs an external RNG and is reproducible in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import tagged_hash
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.crypto.secp256k1 import SECP256K1
from repro.errors import CryptoError

__all__ = ["SchnorrSignature", "schnorr_sign", "schnorr_verify"]


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(R, s)`` with ``R`` a curve point and ``s`` a scalar."""

    r_bytes: bytes
    s: int

    def to_bytes(self) -> bytes:
        """Serialize as ``R (33 bytes, compressed) || s (32 bytes)``."""
        return self.r_bytes + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "SchnorrSignature":
        """Deserialize a signature produced by :meth:`to_bytes`."""
        if len(data) != 65:
            raise CryptoError("schnorr signature must be 65 bytes")
        return cls(data[:33], int.from_bytes(data[33:], "big"))


def _challenge(r_bytes: bytes, pub_bytes: bytes, message: bytes) -> int:
    digest = tagged_hash("repro/schnorr-challenge", r_bytes, pub_bytes, message)
    return int.from_bytes(digest, "big") % SECP256K1.n


def schnorr_sign(key: SigningKey, message: bytes) -> SchnorrSignature:
    """Sign ``message`` with a deterministic-nonce Schnorr signature."""
    pub_bytes = key.verifying_key().to_bytes()
    nonce_digest = tagged_hash("repro/schnorr-nonce", key.to_bytes(), message)
    k = int.from_bytes(nonce_digest, "big") % SECP256K1.n
    if k == 0:
        # Astronomically unlikely; adjust deterministically rather than failing.
        k = 1
    r_point = SECP256K1.generator_multiply(k)
    r_bytes = SECP256K1.encode_point(r_point, compressed=True)
    e = _challenge(r_bytes, pub_bytes, message)
    s = (k + e * key.scalar) % SECP256K1.n
    return SchnorrSignature(r_bytes, s)


def schnorr_verify(key: VerifyingKey, message: bytes, signature: SchnorrSignature) -> bool:
    """Verify a Schnorr signature; returns ``False`` on any failure."""
    try:
        r_point = SECP256K1.decode_point(signature.r_bytes)
    except Exception:
        return False
    if not 0 <= signature.s < SECP256K1.n:
        return False
    pub_bytes = key.to_bytes()
    e = _challenge(signature.r_bytes, pub_bytes, message)
    # Check s*G == R + e*P. The signer's point recurs across verifications
    # (vendor roots, update keys), so it goes through the curve's bounded
    # per-point table cache.
    left = SECP256K1.generator_multiply(signature.s)
    right = SECP256K1.add(r_point, SECP256K1.multiply_cached(key.point, e))
    return left == right
