"""A hash chain — the per-TEE append-only log primitive from the paper (§4.1).

Each simulated TEE maintains an append-only log of code digests "implemented at
each TEE as a hash chain". Every entry commits to the previous entry's head, so
removing or editing history changes every subsequent head and is detectable by
any client that remembers an earlier head (the same check certificate
transparency clients perform on signed tree heads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.crypto.hashes import sha256
from repro.errors import LogError

__all__ = ["ChainEntry", "HashChain"]

GENESIS_HEAD = sha256(b"repro/hashchain/genesis")


@dataclass(frozen=True)
class ChainEntry:
    """One hash-chain entry: payload plus the head it produced."""

    index: int
    payload: bytes
    previous_head: bytes
    head: bytes

    @staticmethod
    def compute_head(index: int, payload: bytes, previous_head: bytes) -> bytes:
        """Head = SHA-256(index || previous_head || payload)."""
        return sha256(index.to_bytes(8, "big"), previous_head, payload)

    def verify_link(self) -> bool:
        """Check that this entry's head matches its contents."""
        return self.head == self.compute_head(self.index, self.payload, self.previous_head)


class HashChain:
    """An append-only hash chain over byte-string payloads."""

    def __init__(self):
        self._entries: list[ChainEntry] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, payload: bytes) -> ChainEntry:
        """Append a payload and return the new entry."""
        index = len(self._entries)
        previous_head = self.head()
        head = ChainEntry.compute_head(index, payload, previous_head)
        entry = ChainEntry(index, bytes(payload), previous_head, head)
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChainEntry]:
        return iter(self._entries)

    def head(self) -> bytes:
        """The current chain head (a fixed genesis value for the empty chain)."""
        if not self._entries:
            return GENESIS_HEAD
        return self._entries[-1].head

    def entry(self, index: int) -> ChainEntry:
        """Return the entry at ``index``; raises :class:`LogError` if absent."""
        if not 0 <= index < len(self._entries):
            raise LogError(f"hash chain has no entry {index}")
        return self._entries[index]

    def entries(self, start: int = 0, end: int | None = None) -> list[ChainEntry]:
        """Return entries in ``[start, end)`` (end defaults to the chain length)."""
        if end is None:
            end = len(self._entries)
        if start < 0 or end > len(self._entries) or start > end:
            raise LogError("invalid hash chain range")
        return list(self._entries[start:end])

    def payloads(self) -> list[bytes]:
        """All payloads in append order."""
        return [e.payload for e in self._entries]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    @staticmethod
    def verify_entries(entries: list[ChainEntry], genesis: bytes = GENESIS_HEAD) -> bool:
        """Verify that a list of entries forms a valid chain starting at ``genesis``.

        Clients use this to audit the digest history returned by a trust domain:
        the entries must link correctly and the final head must match the head
        the TEE attested to.
        """
        previous = genesis
        for expected_index, entry in enumerate(entries):
            if entry.index != expected_index:
                return False
            if entry.previous_head != previous:
                return False
            if not entry.verify_link():
                return False
            previous = entry.head
        return True

    @staticmethod
    def verify_extension(
        old_entries: list[ChainEntry], new_entries: list[ChainEntry]
    ) -> bool:
        """Verify that ``new_entries`` extends ``old_entries`` without rewriting history."""
        if len(new_entries) < len(old_entries):
            return False
        for old, new in zip(old_entries, new_entries):
            if old != new:
                return False
        return HashChain.verify_entries(new_entries)
