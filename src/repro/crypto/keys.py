"""Key types used throughout the framework.

A :class:`SigningKey` wraps a secp256k1 scalar; a :class:`VerifyingKey` wraps
the corresponding curve point. Both Schnorr (default) and ECDSA signatures are
exposed through convenience methods, so the rest of the code base can pass key
objects around without caring about the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.secp256k1 import SECP256K1, Point
from repro.errors import CryptoError

__all__ = ["SigningKey", "VerifyingKey", "generate_keypair"]


@dataclass(frozen=True)
class VerifyingKey:
    """A public verification key (a secp256k1 point)."""

    point: Point

    def to_bytes(self) -> bytes:
        """Serialize as a compressed SEC 1 point."""
        return SECP256K1.encode_point(self.point, compressed=True)

    @classmethod
    def from_bytes(cls, data: bytes) -> "VerifyingKey":
        """Deserialize from a compressed SEC 1 point."""
        return cls(SECP256K1.decode_point(data))

    def fingerprint(self) -> str:
        """A short hex identifier for logs and registry entries."""
        from repro.crypto.hashes import sha256

        return sha256(self.to_bytes()).hex()[:16]

    def verify(self, message: bytes, signature: bytes, scheme: str = "schnorr") -> bool:
        """Verify a signature produced by :meth:`SigningKey.sign`.

        Args:
            message: signed message bytes.
            signature: serialized signature.
            scheme: ``"schnorr"`` or ``"ecdsa"``.
        """
        if scheme == "schnorr":
            from repro.crypto.schnorr import SchnorrSignature, schnorr_verify

            return schnorr_verify(self, message, SchnorrSignature.from_bytes(signature))
        if scheme == "ecdsa":
            from repro.crypto.ecdsa import EcdsaSignature, ecdsa_verify

            return ecdsa_verify(self, message, EcdsaSignature.from_bytes(signature))
        raise CryptoError(f"unknown signature scheme {scheme!r}")


@dataclass(frozen=True)
class SigningKey:
    """A private signing key (a secp256k1 scalar)."""

    scalar: int

    def __post_init__(self):
        if not 1 <= self.scalar < SECP256K1.n:
            raise CryptoError("signing key scalar out of range")

    @classmethod
    def generate(cls) -> "SigningKey":
        """Sample a fresh uniformly random signing key."""
        from repro.crypto.rng import randbelow

        return cls(1 + randbelow(SECP256K1.n - 1))

    @classmethod
    def from_seed(cls, seed: bytes) -> "SigningKey":
        """Derive a deterministic key from a seed (used by simulated vendors)."""
        from repro.crypto.hashes import hash_to_int

        scalar = hash_to_int(seed, SECP256K1.n - 1, tag="repro/key-from-seed") + 1
        return cls(scalar)

    def verifying_key(self) -> VerifyingKey:
        """Return the matching public key."""
        return VerifyingKey(SECP256K1.generator_multiply(self.scalar))

    def to_bytes(self) -> bytes:
        """Serialize the scalar as 32 big-endian bytes."""
        return self.scalar.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "SigningKey":
        """Deserialize a 32-byte big-endian scalar."""
        if len(data) != 32:
            raise CryptoError("signing key must be 32 bytes")
        return cls(int.from_bytes(data, "big"))

    def sign(self, message: bytes, scheme: str = "schnorr") -> bytes:
        """Sign a message and return the serialized signature.

        Args:
            message: message bytes to sign.
            scheme: ``"schnorr"`` (default) or ``"ecdsa"``.
        """
        if scheme == "schnorr":
            from repro.crypto.schnorr import schnorr_sign

            return schnorr_sign(self, message).to_bytes()
        if scheme == "ecdsa":
            from repro.crypto.ecdsa import ecdsa_sign

            return ecdsa_sign(self, message).to_bytes()
        raise CryptoError(f"unknown signature scheme {scheme!r}")


def generate_keypair() -> tuple[SigningKey, VerifyingKey]:
    """Generate a fresh (signing key, verifying key) pair."""
    sk = SigningKey.generate()
    return sk, sk.verifying_key()
