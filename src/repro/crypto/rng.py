"""Routable randomness for the crypto layer.

Every random draw the library makes — Shamir polynomial coefficients, signing
and BLS key scalars, ODoH padding, Prio session tags and blinding shares —
goes through this module. By default each helper delegates to the OS CSPRNG
(:mod:`secrets`), which is the right source for anything resembling
production use.

The simulator, however, promises *bit-identical replay under a fixed seed*,
and OS randomness breaks that promise in a subtle way: random bignums
occasionally encode one byte shorter (a leading zero byte), the byte length
of a message feeds the byte-proportional service-cost model, and suddenly two
"identical" runs report different simulated latencies. The workload and
scenario drivers therefore install a seeded deterministic generator for the
duration of a run via :func:`deterministic`; outside that window the module
behaves exactly like :mod:`secrets`.

The deterministic generator is **not** cryptographically secure and is never
active unless a simulation driver explicitly asks for it.
"""

from __future__ import annotations

import contextlib
import random as _random
import secrets as _secrets

__all__ = ["randbelow", "token_bytes", "token_hex", "deterministic"]

# The active deterministic generator, or None for the OS CSPRNG.
_generator: _random.Random | None = None


def randbelow(upper: int) -> int:
    """A uniform integer in ``[0, upper)``, like ``secrets.randbelow``."""
    if _generator is None:
        return _secrets.randbelow(upper)
    return _generator.randrange(upper)


def token_bytes(n: int) -> bytes:
    """``n`` random bytes, like ``secrets.token_bytes``."""
    if _generator is None:
        return _secrets.token_bytes(n)
    return _generator.randbytes(n)


def token_hex(n: int) -> str:
    """``n`` random bytes as lowercase hex, like ``secrets.token_hex``."""
    return token_bytes(n).hex()


@contextlib.contextmanager
def deterministic(seed: int):
    """Route the crypto layer's randomness through a seeded DRBG.

    Scoped and re-entrant: the previous source (usually the OS CSPRNG) is
    restored on exit, and nesting installs a fresh stream without disturbing
    the outer one. The seed is domain-separated from the workload's own
    ``random.Random(seed)`` streams so crypto draws never correlate with
    arrival times or fault decisions derived from the same scenario seed.
    """
    global _generator
    previous = _generator
    _generator = _random.Random(f"repro-crypto-rng:{seed}")
    try:
        yield
    finally:
        _generator = previous
