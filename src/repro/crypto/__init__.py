"""Cryptographic substrate for the distributed-trust bootstrapping framework.

The framework in the paper depends on several cryptographic primitives:

* hashing and hash chains for code digests and per-TEE append-only logs,
* Merkle trees for the CT-style transparency log,
* digital signatures for developer code updates and simulated hardware
  attestation (Schnorr and ECDSA over secp256k1),
* secret sharing for the motivating secret-key-backup application (Shamir and
  Feldman verifiable secret sharing),
* BLS threshold signatures for the evaluated custody application (over a
  simulated bilinear group — see :mod:`repro.crypto.bilinear`).

Every primitive here is implemented from scratch on top of the Python standard
library; nothing requires third-party packages.
"""

from repro.crypto.field import PrimeField, FieldElement
from repro.crypto.hashes import sha256, sha256_hex, hkdf_extract, hkdf_expand, hash_to_int
from repro.crypto.secp256k1 import Secp256k1, Point, SECP256K1
from repro.crypto.keys import SigningKey, VerifyingKey, generate_keypair
from repro.crypto.schnorr import schnorr_sign, schnorr_verify, SchnorrSignature
from repro.crypto.ecdsa import ecdsa_sign, ecdsa_verify, EcdsaSignature
from repro.crypto.shamir import ShamirSecretSharing, Share
from repro.crypto.feldman import FeldmanVSS, FeldmanShare
from repro.crypto.bilinear import BilinearGroup, G1Element, G2Element, GTElement
from repro.crypto.bls import (
    BlsKeyPair,
    BlsSignature,
    BlsThresholdScheme,
    bls_keygen,
    bls_sign,
    bls_verify,
    bls_aggregate,
)
from repro.crypto.merkle import MerkleTree, InclusionProof, ConsistencyProof
from repro.crypto.hashchain import HashChain, ChainEntry
from repro.crypto.dkg import DistributedKeyGeneration, DkgParticipant

__all__ = [
    "PrimeField",
    "FieldElement",
    "sha256",
    "sha256_hex",
    "hkdf_extract",
    "hkdf_expand",
    "hash_to_int",
    "Secp256k1",
    "Point",
    "SECP256K1",
    "SigningKey",
    "VerifyingKey",
    "generate_keypair",
    "schnorr_sign",
    "schnorr_verify",
    "SchnorrSignature",
    "ecdsa_sign",
    "ecdsa_verify",
    "EcdsaSignature",
    "ShamirSecretSharing",
    "Share",
    "FeldmanVSS",
    "FeldmanShare",
    "BilinearGroup",
    "G1Element",
    "G2Element",
    "GTElement",
    "BlsKeyPair",
    "BlsSignature",
    "BlsThresholdScheme",
    "bls_keygen",
    "bls_sign",
    "bls_verify",
    "bls_aggregate",
    "MerkleTree",
    "InclusionProof",
    "ConsistencyProof",
    "HashChain",
    "ChainEntry",
    "DistributedKeyGeneration",
    "DkgParticipant",
]
