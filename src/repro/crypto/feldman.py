"""Feldman verifiable secret sharing (VSS).

Plain Shamir sharing assumes the dealer is honest. In the paper's setting the
application developer *is* a potential adversary, so the key-backup and custody
applications use Feldman VSS: alongside the shares, the dealer publishes
commitments ``C_j = g^{a_j}`` to the coefficients of the sharing polynomial,
and every trust domain can check its share against the commitments before
accepting it. The commitments are secp256k1 points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.secp256k1 import SECP256K1, Point
from repro.crypto.shamir import Share, ShamirSecretSharing
from repro.crypto.field import PrimeField
from repro.errors import SecretSharingError

__all__ = ["FeldmanShare", "FeldmanVSS"]


@dataclass(frozen=True)
class FeldmanShare:
    """A Shamir share bundled with the dealer's public commitments."""

    share: Share
    commitments: tuple[bytes, ...]

    def to_bytes(self) -> bytes:
        """Serialize as share || commitment count || commitments."""
        body = self.share.to_bytes()
        body += len(self.commitments).to_bytes(2, "big")
        for commitment in self.commitments:
            body += len(commitment).to_bytes(1, "big") + commitment
        return body

    @classmethod
    def from_bytes(cls, data: bytes) -> "FeldmanShare":
        """Deserialize a share produced by :meth:`to_bytes`."""
        if len(data) < 38:
            raise SecretSharingError("feldman share encoding too short")
        share = Share.from_bytes(data[:36])
        count = int.from_bytes(data[36:38], "big")
        offset = 38
        commitments = []
        for _ in range(count):
            if offset >= len(data):
                raise SecretSharingError("truncated feldman commitments")
            length = data[offset]
            offset += 1
            commitments.append(data[offset:offset + length])
            offset += length
        return cls(share, tuple(commitments))


class FeldmanVSS:
    """A (t, n) Feldman verifiable secret-sharing scheme.

    The share field is fixed to the secp256k1 group order so that commitments
    ``g^{a_j}`` live on the same curve used elsewhere in the library.
    """

    def __init__(self, threshold: int, num_shares: int):
        field = PrimeField(SECP256K1.n, unsafe_skip_check=True)
        self.shamir = ShamirSecretSharing(threshold, num_shares, field)
        self.threshold = threshold
        self.num_shares = num_shares

    def split(self, secret: int | bytes) -> list[FeldmanShare]:
        """Split a secret and attach coefficient commitments to every share."""
        shares, coefficients = self.shamir.split_with_polynomial(secret)
        commitments = tuple(
            SECP256K1.encode_point(SECP256K1.generator_multiply(c), compressed=True)
            for c in coefficients
        )
        return [FeldmanShare(share, commitments) for share in shares]

    def verify_share(self, feldman_share: FeldmanShare) -> bool:
        """Check ``g^{share} == prod_j C_j^{index^j}`` for one share."""
        share = feldman_share.share
        left = SECP256K1.generator_multiply(share.value)
        right = None
        for j, commitment_bytes in enumerate(feldman_share.commitments):
            commitment = SECP256K1.decode_point(commitment_bytes)
            exponent = pow(share.index, j, SECP256K1.n)
            term = SECP256K1.multiply(commitment, exponent)
            right = term if right is None else SECP256K1.add(right, term)
        if right is None:
            return False
        return left == right

    def verify_shares(self, shares: list[FeldmanShare]) -> list[bool]:
        """Verify many shares against one commitment vector in a single pass.

        All shares of one dealing carry the same commitments, so the batch
        path decodes each commitment point once and — when the batch is large
        enough to amortize the setup — precomputes a fixed-base window table
        per commitment, turning every per-share term into table lookups.
        Returns one verdict per share, in order.

        Raises:
            SecretSharingError: the shares do not all carry the same
                commitment vector (they cannot be from one dealing).
        """
        if not shares:
            return []
        commitments_bytes = shares[0].commitments
        if any(s.commitments != commitments_bytes for s in shares[1:]):
            raise SecretSharingError("batch verification needs shares from one dealing")
        if not commitments_bytes:
            return [False] * len(shares)
        points = [SECP256K1.decode_point(b) for b in commitments_bytes]
        # A window table costs roughly four plain multiplications to build and
        # each commitment is multiplied once per share, so precomputation pays
        # for itself once the batch is bigger than that. All per-share terms
        # are accumulated in Jacobian coordinates — one field inversion per
        # share, instead of one per addition.
        if len(shares) >= 8:
            tables = [SECP256K1.precompute(point, window=4) for point in points]
            multipliers = [table.multiply_jacobian for table in tables]
        else:
            multipliers = [
                (lambda exponent, _p=point: SECP256K1._to_jacobian(
                    SECP256K1.multiply(_p, exponent)))
                for point in points
            ]
        verdicts = []
        for feldman_share in shares:
            share = feldman_share.share
            left = SECP256K1.generator_multiply(share.value)
            right = (0, 1, 0)
            for j, multiply in enumerate(multipliers):
                right = SECP256K1._jacobian_add(right, multiply(pow(share.index, j,
                                                                    SECP256K1.n)))
            verdicts.append(left == SECP256K1._from_jacobian(right))
        return verdicts

    def reconstruct(self, shares: list[FeldmanShare], verify: bool = True) -> int:
        """Reconstruct the secret, optionally verifying every share first."""
        if verify:
            for feldman_share in shares:
                if not self.verify_share(feldman_share):
                    raise SecretSharingError(
                        f"share {feldman_share.share.index} failed Feldman verification"
                    )
        return self.shamir.reconstruct([s.share for s in shares])

    def public_commitment(self, shares: list[FeldmanShare]) -> bytes:
        """Return the commitment to the secret itself (``C_0 = g^{secret}``)."""
        if not shares:
            raise SecretSharingError("no shares provided")
        return shares[0].commitments[0]
