"""Prime-field arithmetic.

:class:`PrimeField` implements GF(p) for an arbitrary prime ``p`` and hands out
:class:`FieldElement` values that support the usual operator overloads. The
field is the workhorse underneath Shamir secret sharing, Feldman VSS, the
distributed key generation protocol, Lagrange interpolation for threshold BLS,
and the Prio-style private aggregation application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import CryptoError

__all__ = ["PrimeField", "FieldElement", "lagrange_interpolate_at_zero"]


def _is_probable_prime(n: int, rounds: int = 16) -> bool:
    """Miller-Rabin primality test (deterministic for small n, probabilistic above)."""
    if n < 2:
        return False
    small_primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
    for p in small_primes:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # Use fixed witnesses: deterministic for n < 3.3e24 and adequate beyond.
    for a in small_primes[:rounds]:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class FieldElement:
    """An element of a prime field.

    Instances are immutable; arithmetic returns new elements. Mixing elements
    from different fields raises :class:`~repro.errors.CryptoError`.
    """

    value: int
    field: "PrimeField"

    def _check_same_field(self, other: "FieldElement") -> None:
        if self.field is not other.field and self.field.modulus != other.field.modulus:
            raise CryptoError("cannot combine elements of different fields")

    def _coerce(self, other) -> "FieldElement":
        if isinstance(other, FieldElement):
            self._check_same_field(other)
            return other
        if isinstance(other, int):
            return self.field(other)
        raise TypeError(f"cannot coerce {type(other).__name__} to FieldElement")

    def __add__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement((self.value + other.value) % self.field.modulus, self.field)

    __radd__ = __add__

    def __sub__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement((self.value - other.value) % self.field.modulus, self.field)

    def __rsub__(self, other) -> "FieldElement":
        return self._coerce(other) - self

    def __mul__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement((self.value * other.value) % self.field.modulus, self.field)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return self * other.inverse()

    def __rtruediv__(self, other) -> "FieldElement":
        return self._coerce(other) / self

    def __neg__(self) -> "FieldElement":
        return FieldElement((-self.value) % self.field.modulus, self.field)

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0 and self.value == 0:
            raise CryptoError("zero has no multiplicative inverse")
        return FieldElement(pow(self.value, exponent, self.field.modulus), self.field)

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        if isinstance(other, FieldElement):
            return self.field.modulus == other.field.modulus and self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.field.modulus))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FieldElement({self.value} mod {self.field.modulus})"

    def inverse(self) -> "FieldElement":
        """Return the multiplicative inverse; raises on zero."""
        if self.value == 0:
            raise CryptoError("zero has no multiplicative inverse")
        return FieldElement(pow(self.value, -1, self.field.modulus), self.field)

    def is_zero(self) -> bool:
        """True when this element is the additive identity."""
        return self.value == 0

    def to_bytes(self) -> bytes:
        """Encode the element big-endian into the field's fixed byte length."""
        return self.value.to_bytes(self.field.byte_length, "big")


class PrimeField:
    """The finite field GF(p) for a prime modulus ``p``.

    The constructor verifies primality (Miller-Rabin) unless ``unsafe_skip_check``
    is given, which is useful in tests exercising very large known primes.
    """

    def __init__(self, modulus: int, unsafe_skip_check: bool = False):
        if modulus < 2:
            raise CryptoError("field modulus must be >= 2")
        if not unsafe_skip_check and not _is_probable_prime(modulus):
            raise CryptoError(f"field modulus {modulus} is not prime")
        self.modulus = modulus
        self.byte_length = (modulus.bit_length() + 7) // 8

    def __call__(self, value: int) -> FieldElement:
        """Create a field element, reducing ``value`` modulo p."""
        return FieldElement(value % self.modulus, self)

    def zero(self) -> FieldElement:
        """The additive identity."""
        return FieldElement(0, self)

    def one(self) -> FieldElement:
        """The multiplicative identity."""
        return FieldElement(1, self)

    def from_bytes(self, data: bytes) -> FieldElement:
        """Decode a big-endian byte string (reduced modulo p)."""
        return self(int.from_bytes(data, "big"))

    def random(self, rng=None) -> FieldElement:
        """Sample a uniformly random field element.

        Args:
            rng: optional ``random.Random``-like object with ``randrange``;
                defaults to the library source (:mod:`repro.crypto.rng`).
        """
        if rng is None:
            from repro.crypto.rng import randbelow

            return self(randbelow(self.modulus))
        return self(rng.randrange(self.modulus))

    def elements(self, values: Iterable[int]) -> list[FieldElement]:
        """Convenience: map a list of ints into field elements."""
        return [self(v) for v in values]

    def __eq__(self, other) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrimeField(modulus={self.modulus})"


def lagrange_interpolate_at_zero(points: Sequence[tuple[FieldElement, FieldElement]]) -> FieldElement:
    """Interpolate the polynomial through ``points`` and evaluate it at zero.

    ``points`` is a sequence of ``(x, y)`` pairs with distinct ``x``. This is the
    reconstruction step shared by Shamir secret sharing and threshold BLS
    signature aggregation (where it runs in the exponent).
    """
    if not points:
        raise CryptoError("cannot interpolate zero points")
    field = points[0][0].field
    xs = [p[0] for p in points]
    if len({x.value for x in xs}) != len(xs):
        raise CryptoError("interpolation points must have distinct x coordinates")
    result = field.zero()
    for i, (x_i, y_i) in enumerate(points):
        numerator = field.one()
        denominator = field.one()
        for j, (x_j, _) in enumerate(points):
            if i == j:
                continue
            numerator = numerator * (-x_j)
            denominator = denominator * (x_i - x_j)
        result = result + y_i * numerator * denominator.inverse()
    return result
