"""ECDSA signatures over secp256k1.

The simulated hardware vendors (AWS-Nitro-style and SGX-style roots of trust in
:mod:`repro.enclave.vendor`) sign attestation documents with ECDSA, mirroring
the signature schemes the real services use. Nonces are derived
deterministically from the key and message so attestation documents are
reproducible in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256, tagged_hash
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.crypto.secp256k1 import SECP256K1
from repro.errors import CryptoError

__all__ = ["EcdsaSignature", "ecdsa_sign", "ecdsa_verify"]


@dataclass(frozen=True)
class EcdsaSignature:
    """An ECDSA signature ``(r, s)`` with low-s normalization applied."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        """Serialize as ``r (32 bytes) || s (32 bytes)``."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "EcdsaSignature":
        """Deserialize a signature produced by :meth:`to_bytes`."""
        if len(data) != 64:
            raise CryptoError("ecdsa signature must be 64 bytes")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


def _message_scalar(message: bytes) -> int:
    return int.from_bytes(sha256(message), "big") % SECP256K1.n


def ecdsa_sign(key: SigningKey, message: bytes) -> EcdsaSignature:
    """Sign ``message`` with deterministic-nonce ECDSA."""
    z = _message_scalar(message)
    counter = 0
    while True:
        nonce_digest = tagged_hash(
            "repro/ecdsa-nonce", key.to_bytes(), message, counter.to_bytes(4, "big")
        )
        k = int.from_bytes(nonce_digest, "big") % SECP256K1.n
        counter += 1
        if k == 0:
            continue
        point = SECP256K1.generator_multiply(k)
        r = point.x % SECP256K1.n
        if r == 0:
            continue
        s = (pow(k, -1, SECP256K1.n) * (z + r * key.scalar)) % SECP256K1.n
        if s == 0:
            continue
        if s > SECP256K1.n // 2:
            s = SECP256K1.n - s
        return EcdsaSignature(r, s)


def ecdsa_verify(key: VerifyingKey, message: bytes, signature: EcdsaSignature) -> bool:
    """Verify an ECDSA signature; returns ``False`` on any failure."""
    r, s = signature.r, signature.s
    if not (1 <= r < SECP256K1.n and 1 <= s < SECP256K1.n):
        return False
    z = _message_scalar(message)
    s_inv = pow(s, -1, SECP256K1.n)
    u1 = z * s_inv % SECP256K1.n
    u2 = r * s_inv % SECP256K1.n
    # The signer's point recurs across verifications (attestation roots are
    # checked once per domain per run), so use the per-point table cache.
    point = SECP256K1.add(
        SECP256K1.generator_multiply(u1),
        SECP256K1.multiply_cached(key.point, u2),
    )
    if point.is_infinity:
        return False
    return point.x % SECP256K1.n == r
