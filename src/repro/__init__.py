"""repro — reproduction of *Reflections on trusting distributed trust* (HotNets '22).

The package implements the paper's auditable bootstrapping framework for
distributed-trust systems, together with every substrate it depends on:

* :mod:`repro.crypto` — finite fields, secp256k1, Schnorr/ECDSA, Shamir and
  Feldman secret sharing, a simulated bilinear group, BLS (threshold)
  signatures, Merkle trees, and hash chains.
* :mod:`repro.wire` / :mod:`repro.net` — canonical binary encoding, a simulated
  network with latency models, an RPC layer, and a vsock-style proxy.
* :mod:`repro.enclave` — simulated trusted execution environments (Nitro-style
  attestation documents, SGX-style quotes), vendor certificate chains, sealing,
  and fault injection.
* :mod:`repro.sandbox` — a from-scratch stack-based bytecode VM with fuel and
  memory metering, plus a restricted Python sandbox and a native baseline.
* :mod:`repro.transparency` — append-only hash-chain logs, a Merkle CT-style
  log with inclusion/consistency proofs, gossip, and monitors.
* :mod:`repro.core` — the application-independent framework, signed code
  updates, trust domains, deployment orchestration, auditing clients,
  third-party auditors, and misbehavior evidence.
* :mod:`repro.apps` — secret-key backup, BLS threshold signing custody,
  Prio-style private aggregation, and ODoH-style oblivious DNS built on the
  public API.
"""

from repro.version import __version__

__all__ = ["__version__"]
