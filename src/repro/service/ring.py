"""Consistent-hash routing for sharded services.

Keyed requests are routed to shards through a classic consistent-hash ring:
every shard owns a set of virtual nodes placed deterministically (sha256)
around a circle, and a key belongs to the first virtual node at or after its
own hash position. The construction has the two properties the service plane
needs:

* **Determinism.** Routing depends only on the shard count, the virtual-node
  count, and the key bytes — every client, the workload driver, and the
  benchmark agree on key placement with no coordination.
* **Stability under resharding — in both directions.** Virtual-node positions
  depend only on ``(salt, shard, replica)``, so growing from N to N+1 shards
  moves only the keys landing in the new shard's arcs (~1/(N+1) of the
  keyspace), and shrinking from N to N-k moves exactly the keys the retired
  shards owned (~k/N) — surviving shards' arcs are untouched either way. A
  naive ``hash(key) % N`` would remap almost everything on every transition.

The ring does *not* balance perfectly: with a finite keyspace the largest
shard typically carries 1.2–1.6x the mean, which is why a 4-shard deployment
yields ~3x (not 4x) aggregate throughput — the slowest shard gates every
scattered batch. More virtual nodes tighten the spread at the cost of a
bigger routing table.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from hashlib import sha256

__all__ = ["HashRing", "RingDiff"]


@dataclass(frozen=True)
class RingDiff:
    """The key movement implied by replacing one ring with another.

    Produced by :meth:`HashRing.diff` over a concrete key population (rings
    hash keys, they cannot enumerate them — the keys come from whoever owns
    the state, i.e. the application migrators). ``moved`` holds one
    ``(key, source_shard, target_shard)`` triple per key whose owner changes;
    everything else stays put, which is the whole point of consistent hashing.

    The diff is direction-agnostic: for a grow every ``target_shard`` is a
    freshly added shard, for a shrink every ``source_shard`` is a retiring
    one, and the moved-fraction/spread properties hold symmetrically
    (:meth:`source_shards` / :meth:`target_shards` expose either side).
    """

    total_keys: int
    moved: tuple = field(default_factory=tuple)

    @property
    def moved_count(self) -> int:
        """How many keys change owner."""
        return len(self.moved)

    @property
    def moved_fraction(self) -> float:
        """Fraction of the key population that changes owner."""
        if self.total_keys == 0:
            return 0.0
        return len(self.moved) / self.total_keys

    def by_route(self) -> dict:
        """Moved keys grouped by ``(source_shard, target_shard)`` pairs."""
        routes: dict[tuple[int, int], list] = {}
        for key, source, target in self.moved:
            routes.setdefault((source, target), []).append(key)
        return routes

    def source_shards(self) -> set:
        """Every shard a moved key leaves (a shrink's retiring shards)."""
        return {source for _, source, _ in self.moved}

    def target_shards(self) -> set:
        """Every shard a moved key lands on (a grow's new shards)."""
        return {target for _, _, target in self.moved}


class HashRing:
    """A deterministic consistent-hash ring over ``shard_count`` shards.

    Args:
        shard_count: number of shards (≥ 1).
        vnodes: virtual nodes per shard; more vnodes → smoother balance.
        salt: domain-separation prefix so distinct services get distinct
            placements for the same keys.
    """

    def __init__(self, shard_count: int, vnodes: int = 128,
                 salt: bytes = b"repro/service/ring"):
        if shard_count < 1:
            raise ValueError("a ring needs at least one shard")
        if vnodes < 1:
            raise ValueError("each shard needs at least one virtual node")
        self.shard_count = shard_count
        self.vnodes = vnodes
        self.salt = bytes(salt)
        points: list[tuple[int, int]] = []
        for shard in range(shard_count):
            for replica in range(vnodes):
                digest = sha256(
                    self.salt + b"|" + str(shard).encode() + b"#" + str(replica).encode()
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    @staticmethod
    def _key_bytes(key) -> bytes:
        if isinstance(key, bytes):
            return key
        if isinstance(key, str):
            return key.encode("utf-8")
        if isinstance(key, int):
            return str(key).encode("ascii")
        raise TypeError(f"unroutable key type {type(key).__name__!r} "
                        "(expected str, bytes, or int)")

    def shard_for(self, key) -> int:
        """The shard index owning ``key`` (first virtual node at/after it)."""
        position = int.from_bytes(
            sha256(self.salt + b"/key|" + self._key_bytes(key)).digest()[:8], "big"
        )
        index = bisect_right(self._hashes, position)
        if index == len(self._hashes):
            index = 0  # wrap past the top of the circle
        return self._shards[index]

    def distribution(self, keys) -> list[int]:
        """How many of ``keys`` land on each shard (diagnostics/benchmarks)."""
        counts = [0] * self.shard_count
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def resize(self, shard_count: int) -> "HashRing":
        """A ring over ``shard_count`` shards with this ring's vnodes and salt.

        Because virtual-node positions depend only on ``(salt, shard,
        replica)``, the arcs of every shard common to both rings are preserved
        exactly — a grow carves the new shards' arcs out of the existing ones,
        and a shrink hands the retired shards' arcs back to the survivors that
        neighbored them. That symmetry is what makes the :meth:`diff` between
        the two rings minimal in either direction.
        """
        return HashRing(shard_count, vnodes=self.vnodes, salt=self.salt)

    def grow(self, shard_count: int) -> "HashRing":
        """:meth:`resize` validated as a grow (``shard_count`` must increase)."""
        if shard_count <= self.shard_count:
            raise ValueError(
                f"grow needs more than the current {self.shard_count} shards "
                f"({shard_count} requested); use shrink() or resize()")
        return self.resize(shard_count)

    def shrink(self, shard_count: int) -> "HashRing":
        """:meth:`resize` validated as a shrink (``1 <= shard_count < current``).

        The shrunk ring is exactly the ring a same-parameter service of
        ``shard_count`` shards would have built from scratch, so
        grow-then-shrink round-trips placement for every unmoved key.
        """
        if not 1 <= shard_count < self.shard_count:
            raise ValueError(
                f"shrink needs between 1 and {self.shard_count - 1} shards "
                f"({shard_count} requested); use grow() or resize()")
        return self.resize(shard_count)

    def diff(self, other: "HashRing", keys) -> RingDiff:
        """Which of ``keys`` change owner when this ring is replaced by ``other``.

        The two rings must share a salt — differently salted rings place the
        same key independently, so "moved" would be meaningless.
        """
        if other.salt != self.salt:
            raise ValueError("cannot diff rings with different salts")
        moved = []
        total = 0
        for key in keys:
            total += 1
            source = self.shard_for(key)
            target = other.shard_for(key)
            if source != target:
                moved.append((key, source, target))
        return RingDiff(total_keys=total, moved=tuple(moved))
