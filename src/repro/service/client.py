"""The unified client session facade.

Every app client used to hand-roll the same glue: build an
:class:`~repro.core.client.AuditingClient`, remember whether this session has
audited yet, audit before (or on first) use, invoke with retries riding the
at-most-once RPC layer, walk domains for failover, chunk batches.
:class:`ServiceClient` is that glue once, against the sharded service plane,
so the four application clients shrink to the crypto and data-shaping that is
genuinely theirs.
"""

from __future__ import annotations

from typing import Callable

from repro.core.client import AuditingClient
from repro.errors import ReproError, ServiceSpecError
from repro.service.sharded import ShardedService

__all__ = ["ServiceClient"]

AUDIT_POLICIES = ("always", "once", "never")


class ServiceClient:
    """A client session against a sharded service plane.

    Args:
        plane: the :class:`~repro.service.ShardedService` to talk to (or a
            bare :class:`~repro.core.deployment.Deployment`, which is adopted
            as a single-shard plane).
        audit_policy: when :meth:`checkpoint` audits — ``"always"`` re-audits
            at every checkpoint (key backup's paranoia: verify before every
            operation that touches secrets), ``"once"`` audits on the first
            checkpoint of the session, ``"never"`` disables auditing (test
            harnesses, workload drivers).
        auditing_client: override the auditing client (defaults to one built
            from the plane's shared vendor registry).
        audit_fn: override what an audit *does* — e.g. ODoH audits each
            domain individually because proxy and resolver run different
            published applications. Must raise on failure.
    """

    def __init__(self, plane, audit_policy: str = "always",
                 auditing_client: AuditingClient | None = None,
                 audit_fn: Callable | None = None):
        if not isinstance(plane, ShardedService):
            plane = ShardedService.adopt(plane)
        if audit_policy not in AUDIT_POLICIES:
            raise ServiceSpecError(
                f"unknown audit policy {audit_policy!r} (expected one of "
                f"{AUDIT_POLICIES})"
            )
        self.plane = plane
        self.audit_policy = audit_policy
        self.auditing_client = auditing_client or AuditingClient(plane.vendor_registry)
        self._audit_fn = audit_fn
        self._audited = False

    # ------------------------------------------------------------------
    # Audit-before-use
    # ------------------------------------------------------------------
    def audit(self) -> list:
        """Audit every shard; raises on any misbehavior, returns the reports.

        Each shard is a complete deployment, so each gets the full treatment:
        attestation against vendor roots, digest-log verification,
        cross-domain agreement, and the release-registry cross-check.
        """
        if self._audit_fn is not None:
            result = self._audit_fn()
            self._audited = True
            return result
        reports = [self.auditing_client.audit_or_raise(shard)
                   for shard in self.plane.shards]
        self._audited = True
        return reports

    def audit_compat(self):
        """Audit, returning the pre-plane shape legacy callers expect.

        A single-shard service yields its one report (exactly what the
        pre-redesign per-app ``audit()`` returned); a sharded one yields the
        list of per-shard reports. App adapters delegate here so the unwrap
        convention lives in one place.
        """
        reports = self.audit()
        return reports[0] if len(reports) == 1 else reports

    def audit_shard(self, shard_index: int):
        """Audit one shard only; raises on misbehavior, returns its report."""
        report = self.auditing_client.audit_or_raise(self.plane.shards[shard_index])
        return report

    def checkpoint(self, key=None) -> None:
        """Apply the session's audit policy at an operation boundary.

        App clients call this at the top of every public operation; whether
        an audit actually runs is the policy's decision. For a keyed
        operation, pass the routing ``key``: under the ``"always"`` policy
        only the shard the operation touches is re-audited (auditing the
        whole fleet before every single-shard request would multiply the
        legacy per-op cost by the shard count). A keyless checkpoint — batch
        operations that span shards, or the first audit of a ``"once"``
        session — covers the full fleet.
        """
        if self.audit_policy == "always":
            if key is None or self._audit_fn is not None:
                self.audit()
            else:
                self.audit_shard(self.plane.shard_for(key))
        elif self.audit_policy == "once" and not self._audited:
            self.audit()

    # ------------------------------------------------------------------
    # Invocation (thin, key-routed passthroughs)
    # ------------------------------------------------------------------
    def invoke(self, key, domain_index: int, entry: str, params) -> dict:
        """Invoke on ``key``'s shard (no implicit audit — see checkpoint)."""
        return self.plane.invoke(key, domain_index, entry, params)

    def invoke_batch(self, key, domain_index: int, calls: list,
                     chunk_size: int = 128) -> list:
        """Batched invoke against ``key``'s shard."""
        return self.plane.invoke_batch(key, domain_index, calls,
                                       chunk_size=chunk_size)

    def scatter(self, calls, chunk_size: int = 128) -> list:
        """Keyed scatter/gather across shards (see ShardedService.scatter)."""
        return self.plane.scatter(calls, chunk_size=chunk_size)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def invoke_failover(self, key, domain_indices, entry: str, params,
                        need: int = 1,
                        accept: Callable[[dict], bool] | None = None) -> list:
        """Walk domains on ``key``'s shard until ``need`` answers are in hand.

        Unreachable or refusing domains (any :class:`~repro.errors.ReproError`)
        are skipped; a result for which ``accept`` returns false is skipped
        too. Returns up to ``need`` ``(domain_index, result)`` pairs — the
        caller decides whether fewer than ``need`` is an error. This is the
        shared shape of "recover from any threshold of domains" and "collect
        a signing quorum from whichever signers answer".
        """
        deployment = self.plane.deployment_for(key)
        collected = []
        for domain_index in domain_indices:
            try:
                result = deployment.invoke(domain_index, entry, params)
            except ReproError:
                continue  # crashed, partitioned, or refusing domain
            if accept is not None and not accept(result):
                continue
            collected.append((domain_index, result))
            if len(collected) == need:
                break
        return collected
