"""Operator gates: the checks a careful operator makes around a reshard.

An autoscaler that can resize a live service is only trustworthy if firing
is *harder* than holding. Every scaling decision therefore runs a gate
pipeline before a single record moves:

* :class:`HeartbeatGate` — is every attached shard domain reachable? A
  reshard launched into a partition would fail mid-evacuation and leave keys
  pinned; better to hold until the fleet answers.
* :class:`CooldownGate` — did the previous transition settle? Resharding
  moves ~1/N of the keyspace; doing it twice in quick succession (flapping)
  pays the migration tax with no steady state in between.

and a :class:`ReconciliationGate` after the move: re-census every record and
refuse to call the transition clean unless nothing was lost and nothing
became authoritative on two shards.

Gates return evidence, not bare booleans — a refused decision records *which*
gate refused and why, so scenarios can distinguish "held by policy" from
"held by hysteresis" and the operator can audit every non-action.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GateResult", "HeartbeatGate", "CooldownGate", "ReconciliationGate"]


@dataclass(frozen=True)
class GateResult:
    """One gate's verdict on one decision: who ruled, what, and why."""

    gate: str
    allowed: bool
    reason: str

    def __bool__(self) -> bool:
        return self.allowed


class HeartbeatGate:
    """Refuses to reshard while any attached shard domain is unreachable.

    Liveness comes from the simulated network's own crash registry
    (:meth:`repro.net.transport.Network.is_down`) — the same signal a
    production control plane would take from missed heartbeats. An
    in-process plane (no network) is trivially healthy: there is no
    transport to partition.
    """

    name = "heartbeat"

    def check(self, plane) -> GateResult:
        network = plane._network
        if network is None:
            return GateResult(self.name, True, "plane is in-process")
        down = [
            domain.domain_id
            for shard in plane.shards
            for domain in shard.domains
            if network.is_down(domain.domain_id)
        ]
        if down:
            return GateResult(
                self.name, False,
                f"{len(down)} domain(s) unreachable: {sorted(down)}")
        return GateResult(self.name, True, "every shard domain is reachable")


class CooldownGate:
    """Refuses a reshard within ``cooldown_s`` of the previous transition.

    The gate is told about every committed transition via :meth:`record`
    (the autoscaler calls it; operator-initiated reshards can too) and
    measures elapsed simulated time against the plane's own clock.
    """

    name = "cooldown"

    def __init__(self, cooldown_s: float):
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.cooldown_s = cooldown_s
        self._last_transition_at: float | None = None

    def record(self, now: float) -> None:
        """Note that a transition committed at simulated time ``now``."""
        self._last_transition_at = now

    def check(self, plane) -> GateResult:
        if self._last_transition_at is None:
            return GateResult(self.name, True, "no previous transition")
        elapsed = plane.clock.now() - self._last_transition_at
        if elapsed < self.cooldown_s:
            return GateResult(
                self.name, False,
                f"last transition {elapsed:.3f}s ago, cooling down for "
                f"{self.cooldown_s:.3f}s")
        return GateResult(self.name, True,
                          f"last transition {elapsed:.3f}s ago")


class ReconciliationGate:
    """Post-move census: every record survived, none became double-owned.

    :meth:`census` snapshots which shard(s) hold each key — asked of the
    shards themselves through the app's migrator, exactly as the reshard
    planner does. :meth:`verify` diffs two snapshots: a key present before
    and absent after was *lost*; a key on two shards after is *duplicated*
    (two authoritative owners — the split-brain the epoch protocol exists to
    prevent). Keys written between the snapshots (present only after) are
    legitimate new arrivals and pass.
    """

    name = "reconciliation"

    def census(self, plane) -> dict:
        """Map each key to the sorted list of shard indices holding it."""
        migrator = plane.migrator
        if migrator is None:
            return {}
        holders: dict = {}
        for shard_index in range(len(plane.shards)):
            for key in migrator.shard_keys(plane, shard_index):
                holders.setdefault(key, []).append(shard_index)
        return {key: sorted(shards) for key, shards in holders.items()}

    def verify(self, before: dict, after: dict) -> GateResult:
        lost = sorted(key for key in before if key not in after)
        duplicated = sorted(key for key, shards in after.items()
                            if len(shards) > 1)
        if lost or duplicated:
            return GateResult(
                self.name, False,
                f"census mismatch: {len(lost)} record(s) lost {lost[:5]}, "
                f"{len(duplicated)} double-owned {duplicated[:5]}")
        return GateResult(
            self.name, True,
            f"{len(after)} records reconciled, none lost or double-owned")
