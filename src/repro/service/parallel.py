"""True-parallel shard execution: worker processes serving real wire bytes.

The discrete-event core is — deliberately — single-threaded: one Python
process advances one simulated clock, which is what makes every run
deterministic and every fault injectable. The flip side is that its
wall-clock throughput numbers measure one interpreter doing all shards' work
serially, so "4 shards" never shows up as wall-clock parallelism.

This module adds the other execution mode. A :class:`ParallelShardExecutor`
spawns one OS process per worker; each worker rebuilds the *same* deployment
the parent built (the build runs under the crypto layer's seeded DRBG, so
keys and enclave state come out identical) and serves its assigned shards
through :meth:`repro.net.rpc.RpcServer.dispatch_payload` — the full trust
domain stack, vsock hops and sandbox included, minus only the simulated
transport. Requests travel as the exact serialize-once wire bytes the
networked path uses, shuttled over OS pipes instead of the event heap.

What this mode is and is not:

* **Wall-clock only.** There is no shared simulated clock across processes,
  so parallel runs report wall seconds and leave ``sim_seconds`` at zero.
  Sim-time numbers from a parallel run would be meaningless and are never
  produced.
* **Not deterministic.** OS scheduling orders worker progress; per-worker
  DRBG streams diverge from the serial run's single stream. Same-seed replay
  reproduces application *state* (the build is seeded) but not byte-for-byte
  traffic. The discrete-event engine remains the default for that reason.
* **No fault injection.** Pipes do not drop, reorder, or duplicate; fault
  rules and scheduled events belong to the simulated transport.

Shard ``i`` is owned by worker ``i % workers``; every request addressed to a
domain of shard ``i`` is serviced by that worker's copy of the deployment, so
per-shard state (stored key shares, accepted submissions, proxy views) stays
exactly as consistent as the serial engine keeps it. Consistency checks and
post-run reads route through the same executor and therefore see worker
state, not the parent's stale copy.
"""

from __future__ import annotations

import itertools
import multiprocessing

from repro.errors import RpcError, TimeoutError
from repro.wire.codec import decode, encode
from repro.wire.framing import frame_message, split_frames

__all__ = ["ParallelShardExecutor", "ExecutorRpcClient", "ExecutorRpcBatch"]

# How long (wall seconds) the parent waits for a worker to finish building
# its deployment before declaring the fleet dead. Builds are CPU-bound key
# generation; a loaded CI box can be slow, so the bound is generous.
_READY_TIMEOUT = 120.0
_RESULT_TIMEOUT = 120.0


def _worker_main(app: str, seed: int, ops: int, shards: int,
                 worker_index: int, conn) -> None:
    """Entry point of one worker process.

    Rebuilds the application deployment deterministically, attaches every
    shard's trust domains as RPC servers, then serves ``(seq, address,
    source, payload)`` requests from the pipe until the ``None`` sentinel.
    The response is whatever :meth:`RpcServer.dispatch_payload` returns —
    the same batched response payload the networked server would send.
    """
    from repro.crypto import rng as crypto_rng
    from repro.net.latency import lan_profile
    from repro.net.transport import Network
    from repro.sim.workload import _ADAPTERS

    # The DRBG context stays entered for the worker's lifetime: the build
    # consumes the same draw sequence as the parent's build (identical keys),
    # and request handling keeps drawing from the worker's own stream.
    rng_context = crypto_rng.deterministic(seed)
    rng_context.__enter__()
    try:
        adapter = _ADAPTERS[app](seed, ops, shards=shards)
        plane = adapter.plane
        network = Network(clock=plane.clock, default_latency=lan_profile())
        servers = {}
        for shard in plane.shards:
            servers.update(shard.attach_to_network(network))
    except Exception as exc:  # surface build failures instead of hanging
        conn.send(("failed", worker_index, f"{type(exc).__name__}: {exc}"))
        return
    conn.send(("ready", worker_index, sorted(servers)))
    while True:
        try:
            item = conn.recv()
        except EOFError:  # parent died; nothing left to serve
            return
        if item is None:
            return
        seq, address, source, payload = item
        server = servers.get(address)
        if server is None:
            conn.send((seq, b"", f"worker {worker_index} serves no address "
                                 f"{address!r}"))
            continue
        try:
            response = server.dispatch_payload(payload, source)
        except Exception as exc:  # a server must answer, never kill the pipe
            conn.send((seq, b"", f"{type(exc).__name__}: {exc}"))
        else:
            conn.send((seq, response, None))


class ParallelShardExecutor:
    """A fleet of worker processes serving one application's shards.

    Args:
        app: workload application name (``keybackup``, ``prio``, ...).
        seed: the workload seed — workers rebuild their deployments under
            this seed, which is what makes their state match the parent's.
        ops: total operation count (the adapters materialize per-op inputs).
        shards: shard count of the service plane.
        workers: process count; shard ``i`` is owned by worker
            ``i % workers``, so extra workers beyond the shard count idle.
    """

    def __init__(self, app: str, seed: int, ops: int, shards: int,
                 workers: int = 4):
        if workers < 1:
            raise ValueError("a parallel executor needs at least one worker")
        self.app = app
        self.seed = seed
        self.ops = ops
        self.shards = shards
        self.workers = workers
        self.requests_sent = 0
        self._request_ids = itertools.count(1)
        self._seq = itertools.count(1)
        self._processes: list = []
        self._connections: list = []
        self._owner: dict[str, int] = {}        # address -> worker index
        self._seq_worker: dict[int, int] = {}   # in-flight seq -> worker
        self._results: dict[int, bytes] = {}    # buffered out-of-turn results
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, plane) -> None:
        """Spawn the workers and wait until every one has built its shards.

        ``plane`` is the *parent's* service plane; its shard layout provides
        the address → shard mapping (worker-side layouts are identical
        because both builds are seeded). Startup cost — process spawn plus a
        full deployment build per worker — happens here, outside any
        measurement window.
        """
        if self._started:
            return
        context = multiprocessing.get_context("spawn")
        for worker_index in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(self.app, self.seed, self.ops, self.shards,
                      worker_index, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._connections.append(parent_conn)
        for worker_index, conn in enumerate(self._connections):
            if not conn.poll(_READY_TIMEOUT):
                self.shutdown()
                raise RpcError(f"parallel worker {worker_index} did not "
                               f"come up within {_READY_TIMEOUT:.0f}s")
            status, _, detail = conn.recv()
            if status != "ready":
                self.shutdown()
                raise RpcError(f"parallel worker {worker_index} failed to "
                               f"build its shards: {detail}")
        for shard_index, shard in enumerate(plane.shards):
            owner = shard_index % self.workers
            for domain in shard.domains:
                self._owner[domain.domain_id] = owner
        self._started = True

    def shutdown(self) -> None:
        """Stop every worker (sentinel first, terminate stragglers)."""
        for conn in self._connections:
            try:
                conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._connections:
            conn.close()
        self._processes = []
        self._connections = []
        self._started = False

    # ------------------------------------------------------------------
    # Request shuttle
    # ------------------------------------------------------------------
    def next_request_id(self) -> int:
        """A fleet-unique RPC request id (at-most-once caches key on it)."""
        return next(self._request_ids)

    def submit(self, address: str, source: str, payload: bytes) -> int:
        """Ship one request payload to the worker owning ``address``.

        Returns a sequence token for :meth:`result`. The write happens
        immediately and does not wait for the response — submitting to
        several workers before collecting any result is what makes their
        work genuinely overlap on multicore hosts.
        """
        owner = self._owner.get(address)
        if owner is None:
            raise RpcError(f"no parallel worker serves address {address!r}")
        seq = next(self._seq)
        self._connections[owner].send((seq, address, source, payload))
        self._seq_worker[seq] = owner
        self.requests_sent += 1
        return seq

    def result(self, seq: int) -> bytes:
        """Block until the response for ``seq`` arrives; return its bytes."""
        if seq in self._results:
            return self._results.pop(seq)
        owner = self._seq_worker.get(seq)
        if owner is None:
            raise RpcError(f"unknown parallel request {seq}")
        conn = self._connections[owner]
        while True:
            if not conn.poll(_RESULT_TIMEOUT):
                raise TimeoutError(f"parallel worker {owner} sent no "
                                   f"response for request {seq}")
            try:
                got_seq, response, error = conn.recv()
            except EOFError:
                raise RpcError(f"parallel worker {owner} died while "
                               f"serving request {seq}") from None
            self._seq_worker.pop(got_seq, None)
            if error is not None:
                raise RpcError(f"parallel worker {owner} failed request "
                               f"{got_seq}: {error}")
            if got_seq == seq:
                return response
            self._results[got_seq] = response

    def clients_for(self, deployment) -> list:
        """One :class:`ExecutorRpcClient` per trust domain of ``deployment``.

        The drop-in replacement for the networked RPC clients that
        :meth:`Deployment.route_via_network` installs.
        """
        source = f"{deployment.name}-client"
        return [ExecutorRpcClient(self, domain.domain_id, source)
                for domain in deployment.domains]


class ExecutorRpcClient:
    """RPC-client facade over the executor's pipes.

    Call-compatible with the slice of :class:`repro.net.rpc.RpcClient` the
    deployment layer uses (``call``, ``call_with_retry``, ``begin_many``,
    ``retries``), so :class:`~repro.core.deployment.PendingInvokeBatch` and
    the scatter/gather plane work unchanged on top of it. Requests are the
    same framed envelope bytes the networked client puts on the wire; pipes
    are lossless and ordered, so there is exactly one attempt and
    ``retries`` stays zero.
    """

    def __init__(self, executor: ParallelShardExecutor, server_address: str,
                 source: str):
        self.executor = executor
        self.server_address = server_address
        self.source = source
        self.retries = 0

    def call(self, method: str, params=None):
        """Call ``method`` on the owning worker and return the result."""
        return self.call_with_retry(method, params, attempts=1)

    def call_with_retry(self, method: str, params=None, attempts: int = 3):
        """Single-attempt call (the pipe cannot lose the request)."""
        del attempts  # lossless transport; signature kept for compatibility
        results = self.begin_many([(method, params)]).collect(
            attempts=1, return_errors=False)
        return results[0]

    def begin_many(self, calls) -> "ExecutorRpcBatch":
        """Frame a batch, ship it to the owning worker, return the handle."""
        calls = list(calls)
        requests = []
        for method, params in calls:
            request_id = self.executor.next_request_id()
            requests.append((request_id, method, frame_message(encode(
                {"id": request_id, "method": method, "params": params}
            ))))
        seq = None
        if requests:
            seq = self.executor.submit(
                self.server_address, self.source,
                b"".join(frame for _, _, frame in requests))
        return ExecutorRpcBatch(self, requests, seq)


class ExecutorRpcBatch:
    """An in-flight batch on the executor; mirrors ``PendingRpcBatch``.

    ``collect`` blocks on the owning worker's response payload, matches
    response frames to requests by id, and reports failures exactly as the
    networked batch does: with ``return_errors`` they become exception
    instances in the result list, otherwise the first failure raises.
    """

    def __init__(self, client: ExecutorRpcClient, requests: list,
                 seq: int | None):
        self.client = client
        self.requests = requests
        self._seq = seq
        self._found: dict[int, dict] | None = None

    def collect(self, attempts: int = 3, return_errors: bool = False):
        """Gather this batch's results, in call order."""
        del attempts  # lossless transport
        if self._found is None:
            self._found = {}
            if self._seq is not None:
                payload = self.client.executor.result(self._seq)
                for frame in split_frames(payload):
                    response = decode(frame)
                    if isinstance(response, dict) and "id" in response:
                        self._found[response["id"]] = response
        results = []
        for request_id, method, _ in self.requests:
            response = self._found.get(request_id)
            if response is None:
                outcome = TimeoutError(
                    f"no response to parallel request {request_id} "
                    f"from {self.client.server_address}")
            elif response.get("error") is not None:
                outcome = RpcError(f"{method} failed: {response['error']}")
            else:
                results.append(response.get("result"))
                continue
            if not return_errors:
                raise outcome
            results.append(outcome)
        return results
