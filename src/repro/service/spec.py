"""Declarative service specifications.

A :class:`ServiceSpec` is the whole description of an application service —
which code packages run where, how many trust domains one shard spans, how
many shards carry the keyspace, the reconstruction/signing threshold, and the
per-domain service-time model — as *data*. :meth:`ServiceSpec.synthesize`
turns that data into the running, attested artifact: one
:class:`~repro.core.deployment.Deployment` replica set per shard, every
package published to the release registry and CT-style log and installed as a
signed update, all shards sharing one simulated clock and one hardware-vendor
registry so a single auditing client can attest the entire fleet.

This mirrors the configuration-synthesis framing of the networking
literature: the developer states *requirements* (the spec) and the framework
derives the concrete, auditable configuration — rather than hand-rolling a
``Deployment`` plus glue per application, which is exactly the duplication
the four example apps had grown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deployment import Deployment, DeploymentConfig
from repro.core.package import CodePackage, DeveloperIdentity
from repro.enclave.vendor import HardwareVendor
from repro.errors import ServiceSpecError
from repro.net.clock import SimClock
from repro.service.ring import HashRing
from repro.service.sharded import ShardedService
from repro.wire.codec import encode

__all__ = ["PackageBinding", "ServiceSpec"]


@dataclass(frozen=True)
class PackageBinding:
    """One application package and the shard-local domains it runs on.

    ``domains=None`` (the default) installs the package on every trust domain
    of every shard — the common single-application shape. A tuple of domain
    indices installs it on just those domains, which is how asymmetric
    services (e.g. ODoH's distinct proxy and resolver applications) are
    declared.
    """

    package: CodePackage
    domains: tuple[int, ...] | None = None


@dataclass(frozen=True)
class ServiceSpec:
    """A declarative description of one distributed-trust app service.

    Attributes:
        name: service name; shard deployments are named ``<name>`` (single
            shard) or ``<name>-s<i>``.
        packages: the application code to publish and install, as
            :class:`PackageBinding` entries (or bare
            :class:`~repro.core.package.CodePackage` objects, which bind to
            every domain).
        domains_per_shard: trust domains in each shard's deployment.
        shard_count: number of shards carrying the keyspace.
        threshold: the app-level quorum (Shamir reconstruction, signing
            quorum, ...) recorded on the spec for clients to read; ``None``
            for apps without one.
        include_developer_domain: whether domain 0 of each shard runs without
            secure hardware on the developer's own infrastructure.
        heterogeneous: alternate enclave vendors across domains.
        use_vsock: route enclave requests through the vsock-style hops.
        service_time_per_request: simulated seconds each domain spends per
            request (a serial busy-until queue); 0 disables the model.
        service_time_per_byte: additional simulated seconds per payload byte
            (models payload-proportional server work).
        service_times: per-domain-index overrides of the service time, as
            ``(domain_index, seconds)`` pairs.
        ring_vnodes: virtual nodes per shard on the consistent-hash ring.
        regions: named regions shards are placed into, round-robin — shard
            ``i`` lives in ``regions[i % len(regions)]`` (and so do shards a
            live reshard grows later, so a grown fleet keeps the placement
            policy). Empty means single-region (no placement). The names are
            interpreted by a :class:`~repro.net.latency.LatencyMap` when the
            plane is routed over a network (see
            :meth:`~repro.service.sharded.ShardedService.apply_latency_map`).
    """

    name: str
    packages: tuple = ()
    domains_per_shard: int = 2
    shard_count: int = 1
    threshold: int | None = None
    include_developer_domain: bool = True
    heterogeneous: bool = True
    use_vsock: bool = True
    service_time_per_request: float = 0.0
    service_time_per_byte: float = 0.0
    service_times: tuple[tuple[int, float], ...] = ()
    ring_vnodes: int = 128
    regions: tuple[str, ...] = ()

    def __post_init__(self):
        if not all(isinstance(region, str) and region for region in self.regions):
            raise ServiceSpecError("every region must be a non-empty name")
        if not self.name:
            raise ServiceSpecError("a service needs a non-empty name")
        if self.domains_per_shard < 1:
            raise ServiceSpecError("each shard needs at least one trust domain")
        if self.shard_count < 1:
            raise ServiceSpecError("a service needs at least one shard")
        if self.threshold is not None and not 1 <= self.threshold <= self.domains_per_shard:
            raise ServiceSpecError(
                f"threshold {self.threshold} outside [1, {self.domains_per_shard}]"
            )
        if self.service_time_per_request < 0 or self.service_time_per_byte < 0:
            raise ServiceSpecError("service time cannot be negative")
        bindings = tuple(
            binding if isinstance(binding, PackageBinding) else PackageBinding(binding)
            for binding in self.packages
        )
        for binding in bindings:
            if binding.domains is not None:
                bad = [d for d in binding.domains
                       if not 0 <= d < self.domains_per_shard]
                if bad:
                    raise ServiceSpecError(
                        f"package {binding.package.name!r} bound to domains {bad} "
                        f"outside [0, {self.domains_per_shard})"
                    )
        object.__setattr__(self, "packages", bindings)

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def shard_name(self, shard_index: int) -> str:
        """Deployment name for one shard (plain ``name`` when unsharded).

        Shard indices past the spec's own ``shard_count`` (shards synthesized
        later by a live reshard) always carry the ``-s<i>`` suffix.
        """
        if self.shard_count == 1 and shard_index == 0:
            return self.name
        return f"{self.name}-s{shard_index}"

    def shard_region(self, shard_index: int) -> str | None:
        """The named region shard ``shard_index`` is placed in (round-robin),
        or ``None`` for a single-region spec. Indices past ``shard_count``
        (shards a live reshard grows later) follow the same rotation."""
        if not self.regions:
            return None
        return self.regions[shard_index % len(self.regions)]

    def ring_salt(self) -> bytes:
        """The domain-separation salt every ring for this service uses."""
        return b"repro/service/" + self.name.encode("utf-8")

    def synthesize_shard(self, shard_index: int, developer: DeveloperIdentity,
                         clock: SimClock,
                         vendors: list[HardwareVendor]) -> Deployment:
        """Build one shard's attested deployment (packages installed,
        service-time model applied). Used both by :meth:`synthesize` and by
        the live-resharding coordinator when it grows an existing plane."""
        config = DeploymentConfig(
            num_domains=self.domains_per_shard,
            include_developer_domain=self.include_developer_domain,
            heterogeneous=self.heterogeneous,
            use_vsock=self.use_vsock,
        )
        deployment = Deployment(self.shard_name(shard_index), developer,
                                config, vendors=vendors, clock=clock)
        self._install_packages(deployment, developer)
        self._apply_service_times(deployment)
        return deployment

    def synthesize(self, developer: DeveloperIdentity,
                   clock: SimClock | None = None,
                   vendors: list[HardwareVendor] | None = None) -> ShardedService:
        """Build the attested replica set this spec describes.

        Every shard is a full :class:`~repro.core.deployment.Deployment` —
        measured enclaves, release registry, CT-style release log — and all
        shards share one clock (so cross-shard timing composes in simulation)
        and one vendor list (so one auditing client can verify every shard's
        attestations against the same roots).
        """
        clock = clock or SimClock()
        vendors = vendors or [HardwareVendor("aws-nitro-sim"),
                              HardwareVendor("intel-sgx-sim")]
        shards = [self.synthesize_shard(shard_index, developer, clock, vendors)
                  for shard_index in range(self.shard_count)]
        ring = HashRing(self.shard_count, vnodes=self.ring_vnodes,
                        salt=self.ring_salt())
        return ShardedService(self, shards, ring, clock)

    def _install_packages(self, deployment: Deployment,
                          developer: DeveloperIdentity) -> None:
        # Per-domain update sequences: a domain only accepts monotonically
        # increasing sequence numbers, and domains that run different
        # applications (bound packages) have independent histories.
        next_sequence = [0] * self.domains_per_shard
        for binding in self.packages:
            if binding.domains is None:
                deployment.publish_and_install(binding.package)
                next_sequence = [deployment.current_sequence + 1] * self.domains_per_shard
                continue
            sequences = {next_sequence[d] for d in binding.domains}
            if len(sequences) != 1:
                raise ServiceSpecError(
                    f"package {binding.package.name!r} targets domains with "
                    "diverging update histories"
                )
            manifest = developer.sign_update(binding.package, sequences.pop())
            deployment.registry.publish(binding.package, manifest)
            deployment.release_log.append(encode(manifest.to_dict()))
            for domain_index in binding.domains:
                deployment.install_on_domain(domain_index, manifest, binding.package)
                next_sequence[domain_index] = manifest.sequence + 1

    def _apply_service_times(self, deployment: Deployment) -> None:
        if self.service_time_per_request > 0 or self.service_time_per_byte > 0:
            deployment.set_service_time(self.service_time_per_request,
                                        per_byte=self.service_time_per_byte)
        for domain_index, seconds in self.service_times:
            deployment.set_service_time(seconds, domain_index=domain_index,
                                        per_byte=self.service_time_per_byte)
