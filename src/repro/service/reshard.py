"""Epoch-based live resharding: resize a running service without losing a key.

The consistent-hash ring (:mod:`repro.service.ring`) has always *advertised*
stability under resharding; this module is the machinery that cashes the
claim in on a live service — in both directions. A reshard is one epoch
transition:

1. **Synthesize** (grow only). The new shards are built from the same
   :class:`~repro.service.ServiceSpec` as the originals — measured enclaves,
   published packages, the shared clock and vendor roots — and joined to the
   plane's network wiring and service-time model. A shrink synthesizes
   nothing; its targets are the surviving shards.
2. **Plan.** The application's :class:`ShardMigrator` enumerates the keys each
   old shard actually holds; diffing the old ring against the resized ring
   yields the minimal moved-key set (~``1 - N/M`` of the keyspace for a
   ``N → M`` grow, exactly the retiring shards' keys — ~``k/N`` — for a
   ``N → N-k`` shrink; everything else never moves).
3. **Migrate.** Moved keys are marked *in motion* — keyed routing fails
   safely with :class:`~repro.errors.KeyMigratingError` instead of guessing
   an owner — while the migrator copies records source → target over the
   simulated network (so packet loss, partitions, and crashes hit migration
   traffic exactly as they hit request traffic), verifies the copy, and only
   then deletes the source records.
4. **Verify** (shrink only). Each retiring shard is re-enumerated after the
   evacuation: any key the migrator left behind — or never reported — is
   pinned rather than released, so a record can be stranded on a shard about
   to retire only with an override still routing to it.
5. **Commit, then retire.** The plane flips to the resized ring and bumps its
   epoch. Keys whose records could not be moved (crashed source, partitioned
   target) are pinned to the shard that still holds them via *epoch
   overrides* — routed correctly, never silently misrouted — until
   :meth:`ShardedService.finish_reshard` drains them after the fault heals.
   A retiring shard that evacuated cleanly is detached on the spot (its
   queues and service model leave the plane with it); one still holding
   pinned or stale records stays attached as a *draining* shard and is
   detached by ``finish_reshard`` once empty.

The invariant the scenario matrix pins: across the epoch boundary, in either
direction, no record is lost and no record ends up authoritative on two
shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidReshardError, ReshardError
from repro.service.ring import RingDiff

__all__ = ["MigrationOutcome", "ShardMigrator", "ReshardReport",
           "ReshardCoordinator"]


@dataclass
class MigrationOutcome:
    """What one source→target migration batch achieved.

    ``moved`` keys are fully present on the target, which is now their
    authoritative home; ``failed`` keys remain fully on the source (partial
    target copies cleaned up best-effort) with the error that stopped them.
    ``stale`` keys are a subset of ``moved`` whose *source* cleanup is
    incomplete (e.g. a delete lost in flight after the copy verified): the
    target is authoritative, but leftover source records await
    :meth:`ShardMigrator.cleanup` — they must never be reported ``failed``,
    because pinning them to a partially deleted source could strand them
    below the app's recovery threshold.
    """

    moved: list = field(default_factory=list)
    failed: dict = field(default_factory=dict)  # key -> error string
    stale: list = field(default_factory=list)  # moved keys w/ source leftovers
    records_moved: int = 0


class ShardMigrator:
    """How an application's per-shard state follows its keys across epochs.

    The base class models a *stateless* (or fully replicated) service: no
    keys to enumerate, nothing to move — correct for threshold signing, where
    every shard holds the same signer group. Stateful apps override
    :meth:`shard_keys` and :meth:`migrate`; apps that must prepare fresh
    shards (install key shares, push configuration) override
    :meth:`provision`.
    """

    def provision(self, plane, new_shard_indices: list[int]) -> None:
        """App-level setup of freshly synthesized shards (packages are
        already installed; this is for key material, configuration, ...)."""

    def shard_keys(self, plane, shard_index: int) -> list:
        """The routing keys whose state currently lives on ``shard_index``."""
        return []

    def migrate(self, plane, source: int, target: int, keys: list) -> MigrationOutcome:
        """Move ``keys``' records from shard ``source`` to shard ``target``.

        Must be copy-then-delete: a key may only be reported ``moved`` once
        its records are verified on the target; if the source removal then
        fails, the key stays ``moved`` and is listed ``stale`` (see
        :class:`MigrationOutcome`). A stateless service has nothing to do.
        """
        return MigrationOutcome(moved=list(keys))

    def cleanup(self, plane, shard_index: int, keys: list) -> list:
        """Remove ``keys``' leftover records from ``shard_index``.

        Called by :meth:`ShardedService.finish_reshard` for keys a migration
        left ``stale``. Returns the keys actually cleaned (the rest stay
        queued). The stateless default has nothing to clean.
        """
        return list(keys)

    def residue(self, plane, shard_index: int) -> int:
        """Records on ``shard_index`` that no routing key addresses.

        Keyed migration only moves state reachable through
        :meth:`shard_keys`; services that accumulate *unkeyed* state (an
        additive aggregate, say) report it here so a shrink knows a retiring
        shard is not yet empty. A nonzero residue after :meth:`evacuate`
        keeps the shard attached and draining instead of detaching it blind.
        """
        return 0

    def evacuate(self, plane, source: int, target: int) -> int:
        """Fold ``source``'s unkeyed residue into surviving shard ``target``.

        Called once per retiring shard during a shrink, and again by
        ``finish_reshard`` while the shard drains. Must be copy-then-delete
        and idempotent under end-to-end retries: the residue may only
        disappear from ``source`` once ``target`` provably holds it, and a
        retried fold must never double-count. Returns records moved.
        """
        return 0


@dataclass
class ReshardReport:
    """Everything one epoch transition produced."""

    service: str
    old_shard_count: int
    new_shard_count: int
    epoch: int
    diff: RingDiff | None = None
    provisioned: list = field(default_factory=list)  # new shard names (grow)
    retired: list = field(default_factory=list)  # detached shard names (shrink)
    draining: list = field(default_factory=list)  # retiring shards still pinned
    migrated_keys: int = 0
    records_moved: int = 0
    failed_keys: dict = field(default_factory=dict)  # key -> error string
    stale_keys: list = field(default_factory=list)  # moved, source cleanup pending
    sim_seconds: float = 0.0
    bundle = None  # EpochArtifact when the plane carries an epoch_publisher

    @property
    def ok(self) -> bool:
        """Whether every moved key's state fully reached its new owner,
        with nothing pinned and no source leftovers awaiting cleanup."""
        return not self.failed_keys and not self.stale_keys

    @property
    def pending(self) -> int:
        """Keys left pinned to their old shard by epoch overrides."""
        return len(self.failed_keys)

    def format(self) -> str:
        """A deterministic one-paragraph text summary."""
        moved_fraction = self.diff.moved_fraction if self.diff else 0.0
        lines = [
            f"reshard {self.service}: {self.old_shard_count} -> "
            f"{self.new_shard_count} shards (epoch {self.epoch})",
            f"  keys: {self.diff.total_keys if self.diff else 0} total, "
            f"{self.diff.moved_count if self.diff else 0} owners changed "
            f"({moved_fraction * 100:.1f}%)",
            f"  migrated: {self.migrated_keys} keys / {self.records_moved} records "
            f"in {self.sim_seconds * 1000:.1f} ms sim",
        ]
        if self.retired:
            lines.append(f"  retired shards detached: {sorted(self.retired)}")
        if self.draining:
            lines.append(f"  retiring shards still draining: {sorted(self.draining)}")
        if self.failed_keys:
            lines.append(f"  pinned to old shards: {sorted(self.failed_keys)}")
        if self.stale_keys:
            lines.append(f"  source cleanup pending: {sorted(self.stale_keys)}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Plain-data form for reports and the benchmark JSON."""
        return {
            "service": self.service,
            "old_shard_count": self.old_shard_count,
            "new_shard_count": self.new_shard_count,
            "epoch": self.epoch,
            "keys_total": self.diff.total_keys if self.diff else 0,
            "keys_moved": self.diff.moved_count if self.diff else 0,
            "migrated_keys": self.migrated_keys,
            "records_moved": self.records_moved,
            "failed_keys": len(self.failed_keys),
            "stale_keys": len(self.stale_keys),
            "retired": list(self.retired),
            "draining": list(self.draining),
            "sim_seconds": self.sim_seconds,
        }


class ReshardCoordinator:
    """Drives one epoch transition on a :class:`ShardedService`."""

    def __init__(self, plane):
        self.plane = plane

    def reshard(self, new_shard_count: int) -> ReshardReport:
        """Resize the plane to ``new_shard_count`` shards; see the module doc.

        ``new_shard_count`` above the current count grows (synthesize →
        plan → migrate → commit); below it shrinks (plan → evacuate →
        verify → commit → retire). Degenerate requests raise
        :class:`~repro.errors.InvalidReshardError` before any shard is
        synthesized or any record moves.
        """
        plane = self.plane
        if plane.spec is None:
            raise ReshardError(
                "adopted planes carry no ServiceSpec and cannot synthesize "
                "new shards; reshard a spec-built service instead"
            )
        old_count = len(plane.shards)
        if new_shard_count < 1:
            raise InvalidReshardError(
                f"cannot reshard to {new_shard_count} shards: a service "
                "keeps at least one shard (shrinking to zero would orphan "
                "every record)"
            )
        if new_shard_count == old_count:
            raise InvalidReshardError(
                f"the service already has {old_count} shards; a reshard "
                "must change the shard count"
            )
        if plane.draining_shards():
            raise InvalidReshardError(
                f"shards {plane.draining_shards()} are still draining from a "
                "previous shrink; call finish_reshard() before resharding "
                "again"
            )
        migrator = plane.migrator or ShardMigrator()
        # Quiesce barrier: when requests are genuinely in flight (the
        # discrete-event workload), writes still on the wire would be
        # invisible to the key enumeration below and their records could be
        # stranded on a pre-reshard shard. Drain the network first so the
        # plan sees every record that was accepted before the reshard began;
        # requests issued after this point fail safely as KeyMigratingError
        # until the epoch commits.
        if plane._network is not None:
            plane._network.run_until_idle()
        started = plane.clock.now()
        report = ReshardReport(
            service=plane.spec.name,
            old_shard_count=old_count,
            new_shard_count=new_shard_count,
            epoch=plane.epoch + 1,
        )
        growing = new_shard_count > old_count
        new_indices = list(range(old_count, new_shard_count)) if growing else []
        retiring = [] if growing else list(range(new_shard_count, old_count))
        try:
            # 1. Synthesize and wire up the new shards (grow only — a
            # shrink's targets are the surviving shards, which already
            # exist). New shards stay invisible to keyed routing until
            # commit. A shard left over from an aborted attempt or an
            # earlier shrink is reused — its endpoints are already on the
            # network, so synthesizing a twin would collide on addresses.
            if growing:
                developer = plane.primary.developer
                vendors = plane.primary.vendors
                for shard_index in new_indices:
                    deployment = plane._spare_shards.pop(shard_index, None)
                    if deployment is None:
                        deployment = plane.spec.synthesize_shard(
                            shard_index, developer, plane.clock, vendors)
                    plane.attach_shard(deployment)
                    report.provisioned.append(deployment.name)
                migrator.provision(plane, new_indices)

            # 2. Plan: where every key's state lives now vs the resized
            # ring. Enumeration asks the shards themselves (over the network
            # when routed), so the plan reflects reality, including keys
            # pinned by a previous epoch's overrides. For a shrink the moved
            # set is exactly the retiring shards' keys (plus any pinned key
            # whose override no longer matches its ring owner): surviving
            # arcs are unchanged, so nothing moves between survivors.
            owned: dict = {}
            for shard_index in range(old_count):
                for key in migrator.shard_keys(plane, shard_index):
                    owned[key] = shard_index
            new_ring = plane.ring.resize(new_shard_count)
            report.diff = plane.ring.diff(new_ring, owned.keys())
            moves: dict[tuple[int, int], list] = {}
            for key, source in owned.items():
                target = new_ring.shard_for(key)
                if target != source:
                    moves.setdefault((source, target), []).append(key)
        except ReshardError:
            self._rollback(old_count)
            raise
        except Exception as exc:
            self._rollback(old_count)
            raise ReshardError(f"reshard planning failed: {exc}") from exc

        # 3. Migrate. Moving keys fail safely until the epoch commits. Once
        # any record may have moved there is no going back: even if the
        # migrator crashes, the transition must commit so every key keeps
        # routing to whichever shard actually holds its records — processed
        # keys to their new owner, everything else pinned to its source.
        moving = [key for keys in moves.values() for key in keys]
        plane.begin_epoch(moving)
        unmigrated: dict = {}
        moved_keys: set = set()
        migration_error: Exception | None = None
        try:
            for (source, target), keys in sorted(moves.items()):
                outcome = migrator.migrate(plane, source, target, keys)
                moved_keys.update(outcome.moved)
                report.migrated_keys += len(outcome.moved)
                report.records_moved += outcome.records_moved
                for key in outcome.stale:
                    plane.mark_stale(key, source)
                    report.stale_keys.append(key)
                for key, error in outcome.failed.items():
                    report.failed_keys[key] = error
                    unmigrated[key] = source
                # A key the migrator reported in *neither* list must not be
                # released to the new ring — that would strand its records
                # on the source with nothing pinning them there.
                for key in keys:
                    if key not in moved_keys and key not in unmigrated:
                        report.failed_keys[key] = (
                            "migrator reported no outcome for this key")
                        unmigrated[key] = source
        except Exception as exc:
            migration_error = exc
            for (source, _), keys in moves.items():
                for key in keys:
                    if key not in moved_keys and key not in unmigrated:
                        report.failed_keys[key] = f"migration interrupted: {exc}"
                        unmigrated[key] = source

        # 3b. Fold unkeyed residue off the retiring shards. State no routing
        # key addresses (an additive accumulator, say) never appears in the
        # keyed plan, yet a retiring shard holding it is not empty. Each
        # retiring shard folds into a deterministic survivor; a shard whose
        # residue cannot be proven gone stays attached to drain and is
        # retried by finish_reshard().
        undrained: set[int] = set()
        for shard_index in retiring:
            try:
                if migrator.residue(plane, shard_index):
                    report.records_moved += migrator.evacuate(
                        plane, shard_index, shard_index % new_shard_count)
                if migrator.residue(plane, shard_index):
                    undrained.add(shard_index)
            except Exception:
                undrained.add(shard_index)

        # 4. Verify (shrink only): re-enumerate each retiring shard after
        # the evacuation. A record the migrator left behind without reporting
        # it — or one enumeration missed at plan time — must be pinned, not
        # released: a retiring shard may only lose its last route once it is
        # provably empty. Leftovers of keys already reported ``moved`` are
        # the expected ``stale`` source remnants (the target is
        # authoritative; cleanup comes later). A shard whose enumeration
        # itself fails (e.g. every domain crashed) cannot be proven empty
        # and is kept attached to drain.
        unverifiable: set[int] = set()
        for shard_index in retiring:
            try:
                leftovers = migrator.shard_keys(plane, shard_index)
            except Exception:
                unverifiable.add(shard_index)
                continue
            for key in leftovers:
                if key in moved_keys or key in unmigrated:
                    continue
                report.failed_keys[key] = (
                    "evacuation verification found records still on the "
                    "retiring shard")
                unmigrated[key] = shard_index

        # 5. Commit the epoch; stale overrides for keys that moved are
        # dropped, failures stay pinned to the shard holding their records.
        # Then retire: detach every retiring shard that evacuated cleanly.
        # Only a contiguous tail can go — detaching an inner index would
        # renumber the shards behind it under every pinned override — so
        # walk from the highest index down and stop at the first shard that
        # must keep draining.
        plane.commit_epoch(new_ring, unmigrated=unmigrated)
        for key in owned:
            if key not in unmigrated:
                plane.clear_override(key)
        for shard_index in sorted(retiring, reverse=True):
            pinned = {shard for _, shard in plane.pending_migrations()}
            stale = {shard for _, shard in plane.pending_cleanups()}
            if (shard_index != len(plane.shards) - 1
                    or shard_index in pinned or shard_index in stale
                    or shard_index in unverifiable
                    or shard_index in undrained):
                break
            report.retired.append(plane.detach_shard(shard_index).name)
        report.draining = [plane.shards[index].name
                           for index in plane.draining_shards()]
        report.epoch = plane.epoch
        report.sim_seconds = plane.clock.now() - started
        # Epoch transparency: the commit happened (even on a faulted
        # migration the epoch flips with the leftovers pinned), so the
        # bundle must be published either way — an epoch without an
        # artifact is exactly what the auditor exists to prevent.
        if getattr(plane, "epoch_publisher", None) is not None:
            report.bundle = plane.epoch_publisher.publish_epoch(
                plane, report, moves=moves, moved_keys=moved_keys,
                kind="reshard")
        if migration_error is not None:
            error = ReshardError(
                f"migration failed after moving {len(moved_keys)} keys "
                f"({len(unmigrated)} pinned to their old shards; the epoch "
                f"committed — finish_reshard() retries them): {migration_error}"
            )
            error.report = report
            raise error from migration_error
        return report

    def finish(self) -> ReshardReport:
        """Drain a faulted reshard's leftovers, now that the fault healed.

        Two queues: epoch *overrides* (keys whose records never moved —
        re-migrated to their ring owner) and *stale* source records (keys
        that moved but whose source cleanup was lost in flight — cleaned
        up in place). Keys that remain stuck stay queued for the next call.
        Draining shards a shrink left behind are detached once the drain
        empties them — the deferred retire step.
        """
        plane = self.plane
        migrator = plane.migrator or ShardMigrator()
        started = plane.clock.now()
        report = ReshardReport(
            service=plane.spec.name if plane.spec else plane.primary.name,
            old_shard_count=len(plane.shards),
            new_shard_count=len(plane.shards),
            epoch=plane.epoch,
        )
        pending = plane.pending_migrations()
        moves: dict[tuple[int, int], list] = {}
        moved_triples = []
        for key, source in pending:
            target = plane.ring.shard_for(key)
            if target == source:
                plane.clear_override(key)
                continue
            moves.setdefault((source, target), []).append(key)
            moved_triples.append((key, source, target))
        report.diff = RingDiff(total_keys=len(pending),
                               moved=tuple(moved_triples))
        # As in reshard(): an unexpected migrator crash must not escape as a
        # harness crash — the affected keys simply stay queued (their
        # overrides/stale entries are only cleared on success) and the error
        # surfaces as a ReshardError carrying the partial report.
        drain_error: Exception | None = None
        moved_keys: set = set()
        for (source, target), keys in sorted(moves.items()):
            try:
                outcome = migrator.migrate(plane, source, target, keys)
            except Exception as exc:
                drain_error = exc
                for key in keys:
                    report.failed_keys[key] = f"drain interrupted: {exc}"
                continue
            report.migrated_keys += len(outcome.moved)
            report.records_moved += outcome.records_moved
            moved_keys.update(outcome.moved)
            for key in outcome.moved:
                plane.clear_override(key)
            for key in outcome.stale:
                plane.mark_stale(key, source)
                report.stale_keys.append(key)
            report.failed_keys.update(outcome.failed)
        cleanups: dict[int, list] = {}
        for key, source in plane.pending_cleanups():
            cleanups.setdefault(source, []).append(key)
        for source, keys in sorted(cleanups.items()):
            try:
                cleaned = migrator.cleanup(plane, source, keys)
            except Exception as exc:
                drain_error = exc
                continue
            for key in cleaned:
                plane.clear_stale(key)
        # Unkeyed residue a faulted shrink left behind is retried the same
        # way (the evacuate protocol is idempotent, so a fold torn mid-way
        # resumes without double-counting).
        undrained: set[int] = set()
        for shard_index in plane.draining_shards():
            try:
                if migrator.residue(plane, shard_index):
                    report.records_moved += migrator.evacuate(
                        plane, shard_index,
                        shard_index % plane.ring.shard_count)
                if migrator.residue(plane, shard_index):
                    undrained.add(shard_index)
            except Exception as exc:
                drain_error = exc
                undrained.add(shard_index)
        # Deferred retire: a shrink's draining shards can finally detach
        # once the drain emptied them (tail-first, same renumbering rule as
        # the commit-time retire).
        for shard_index in sorted(plane.draining_shards(), reverse=True):
            pinned = {shard for _, shard in plane.pending_migrations()}
            stale = {shard for _, shard in plane.pending_cleanups()}
            if (shard_index != len(plane.shards) - 1
                    or shard_index in pinned or shard_index in stale
                    or shard_index in undrained):
                break
            report.retired.append(plane.detach_shard(shard_index).name)
        report.draining = [plane.shards[index].name
                           for index in plane.draining_shards()]
        report.new_shard_count = len(plane.shards)
        report.sim_seconds = plane.clock.now() - started
        # A drain pass is an epoch-relevant action too: pinned keys moved to
        # their ring owners and draining shards may have detached, so it
        # publishes its own bundle (kind="drain", ring width unchanged).
        if getattr(plane, "epoch_publisher", None) is not None and (
                report.migrated_keys or report.records_moved
                or report.retired or report.stale_keys):
            report.bundle = plane.epoch_publisher.publish_epoch(
                plane, report, moves=moves, moved_keys=moved_keys,
                kind="drain")
        if drain_error is not None:
            error = ReshardError(f"drain failed: {drain_error}")
            error.report = report
            raise error from drain_error
        return report

    def _rollback(self, old_count: int) -> None:
        """Abandon a transition that has not moved any records yet.

        The old ring and shard list come back; shards already synthesized
        are parked for reuse — their endpoints are registered on the
        network, so a retry must reattach these exact objects.
        """
        plane = self.plane
        for offset, deployment in enumerate(plane.shards[old_count:]):
            plane._spare_shards[old_count + offset] = deployment
        del plane.shards[old_count:]
        plane._moving = frozenset()
