"""The unified service plane: one client-facing API for every app.

The paper's thesis is that a *single application-independent framework* can
bootstrap many distributed-trust applications. This package is the service
layer that makes the claim concrete on the client side:

* :mod:`repro.service.spec` — :class:`ServiceSpec`, a declarative description
  of an app service (packages, domains per shard, shard count, threshold,
  service-time model) that synthesizes the attested
  :class:`~repro.core.deployment.Deployment` replica set;
* :mod:`repro.service.ring` — :class:`HashRing`, deterministic
  consistent-hash placement of keys onto shards;
* :mod:`repro.service.sharded` — :class:`ShardedService`, N deployment shards
  behind keyed routing and scatter/gather batch invokes (send to every shard
  *before* pumping the network, so shard service time overlaps in sim time);
* :mod:`repro.service.client` — :class:`ServiceClient`, the session facade
  (audit-before-use policies, at-most-once retries, failover walks, batch
  chunking) the four app clients are thin adapters over;
* :mod:`repro.service.reshard` — epoch-based live resharding in both
  directions: grow or shrink a running service, migrate moved keys' state
  through the app's :class:`ShardMigrator` over the simulated network, and
  commit a new epoch with no lost, duplicated, or silently misrouted
  records;
* :mod:`repro.service.autoscaler` / :mod:`repro.service.gates` — the elastic
  control loop: :class:`Autoscaler` watches per-shard p99 and queue depth
  and issues reshards through operator gates (heartbeat, cooldown,
  post-move reconciliation) with breach/clear hysteresis.

See docs/architecture.md for the capacity model and how the pieces compose.
"""

from repro.service.autoscaler import (
    AutoscaleDecision,
    Autoscaler,
    AutoscalerPolicy,
    MetricsSample,
    percentile,
)
from repro.service.client import ServiceClient
from repro.service.gates import (
    CooldownGate,
    GateResult,
    HeartbeatGate,
    ReconciliationGate,
)
from repro.service.reshard import (
    MigrationOutcome,
    ReshardCoordinator,
    ReshardReport,
    ShardMigrator,
)
from repro.service.ring import HashRing, RingDiff
from repro.service.sharded import PendingScatter, ShardedService
from repro.service.spec import PackageBinding, ServiceSpec

__all__ = [
    "ServiceSpec",
    "PackageBinding",
    "HashRing",
    "RingDiff",
    "ShardedService",
    "PendingScatter",
    "ServiceClient",
    "ShardMigrator",
    "MigrationOutcome",
    "ReshardCoordinator",
    "ReshardReport",
    "Autoscaler",
    "AutoscalerPolicy",
    "AutoscaleDecision",
    "MetricsSample",
    "percentile",
    "GateResult",
    "HeartbeatGate",
    "CooldownGate",
    "ReconciliationGate",
]
