"""The sharded service plane: N deployments behind one routing surface.

A :class:`ShardedService` owns one :class:`~repro.core.deployment.Deployment`
per shard and presents them as a single service:

* **Keyed routing.** Every request carries a key (user id, query name,
  message digest, ...); the consistent-hash ring maps the key to the shard
  that owns it, so any client, anywhere, agrees on placement.
* **Scatter/gather batches.** :meth:`scatter` groups a batch by
  ``(shard, domain)``, *begins* every group's RPC batch before pumping the
  network once, then gathers. Because all payloads are on the wire before the
  first delivery, the shards' round trips and service time overlap in
  simulated time — pump between sends and the shards serialize again, and a
  4-shard deployment measures like 1 (see docs/architecture.md for the
  capacity model).
* **One audit surface.** All shards share a clock and a vendor registry, so
  :class:`repro.service.ServiceClient` can attest and cross-check the whole
  fleet the way :class:`~repro.core.client.AuditingClient` audits one
  deployment.

The plane deliberately reuses the single-deployment machinery — each shard is
a complete, independently auditable deployment — so everything that holds for
one deployment (at-most-once RPC, fault injection, update auditing) holds per
shard with no new protocol.
"""

from __future__ import annotations

from repro.core.deployment import Deployment
from repro.errors import ServiceSpecError
from repro.net.transport import Network
from repro.service.ring import HashRing

__all__ = ["ShardedService"]


class ShardedService:
    """N shard deployments routed by a consistent-hash ring.

    Built by :meth:`repro.service.ServiceSpec.synthesize`; or wrap an
    existing single deployment with :meth:`adopt` to give legacy code the
    plane interface.
    """

    def __init__(self, spec, shards: list[Deployment], ring: HashRing, clock):
        if not shards:
            raise ServiceSpecError("a sharded service needs at least one shard")
        if ring.shard_count != len(shards):
            raise ServiceSpecError(
                f"ring covers {ring.shard_count} shards but {len(shards)} exist"
            )
        self.spec = spec
        self.shards = list(shards)
        self.ring = ring
        self.clock = clock
        self.client_address: str | None = None

    @classmethod
    def adopt(cls, deployment: Deployment, ring_vnodes: int = 128) -> "ShardedService":
        """Wrap one existing deployment as a single-shard service plane."""
        ring = HashRing(1, vnodes=ring_vnodes,
                        salt=b"repro/service/" + deployment.name.encode("utf-8"))
        return cls(None, [deployment], ring, deployment.clock)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Deployment:
        """Shard 0's deployment — what legacy single-deployment code holds."""
        return self.shards[0]

    @property
    def num_shards(self) -> int:
        """How many shards carry the keyspace."""
        return len(self.shards)

    @property
    def domains_per_shard(self) -> int:
        """Trust domains in each shard's deployment."""
        return len(self.primary.domains)

    @property
    def vendor_registry(self):
        """The hardware-vendor registry shared by every shard."""
        return self.primary.vendor_registry

    def shard_for(self, key) -> int:
        """The shard index owning ``key``."""
        return self.ring.shard_for(key)

    def deployment_for(self, key) -> Deployment:
        """The shard deployment owning ``key``."""
        return self.shards[self.ring.shard_for(key)]

    # ------------------------------------------------------------------
    # Keyed invocation
    # ------------------------------------------------------------------
    def invoke(self, key, domain_index: int, entry: str, params) -> dict:
        """Invoke the application on ``key``'s shard, one trust domain."""
        return self.deployment_for(key).invoke(domain_index, entry, params)

    def invoke_on_shard(self, shard_index: int, domain_index: int,
                        entry: str, params) -> dict:
        """Invoke on an explicitly chosen shard (operator-side paths)."""
        return self.shards[shard_index].invoke(domain_index, entry, params)

    def invoke_batch(self, key, domain_index: int, calls: list,
                     chunk_size: int = 128) -> list:
        """Batched invoke against ``key``'s shard (single-shard batches)."""
        return self.deployment_for(key).invoke_batch(domain_index, calls,
                                                     chunk_size=chunk_size)

    # ------------------------------------------------------------------
    # Scatter/gather
    # ------------------------------------------------------------------
    def scatter(self, calls, chunk_size: int = 128) -> list:
        """Run a keyed batch across shards; outcomes come back in call order.

        ``calls`` is a sequence of ``(key, domain_index, entry, params)``
        tuples. Calls are grouped by the shard their key routes to (and the
        domain they target); every group's batch is *begun* — payload on the
        wire — before any group is collected, so all shards serve their slice
        of the batch concurrently in simulated time. Failures are isolated
        per call, exactly as :meth:`Deployment.invoke_batch` reports them.
        """
        routed = [(self.ring.shard_for(key), domain_index, entry, params)
                  for key, domain_index, entry, params in calls]
        return self.scatter_to_shards(routed, chunk_size=chunk_size)

    def scatter_to_shards(self, calls, chunk_size: int = 128) -> list:
        """Scatter with explicit shard indices instead of routing keys.

        ``calls`` is a sequence of ``(shard_index, domain_index, entry,
        params)`` tuples — for callers that already resolved placement (e.g.
        the ODoH client routes by query name *before* encrypting, so the
        operator never needs the plaintext name to pick a shard).
        """
        calls = list(calls)
        groups: dict[tuple[int, int], list[tuple[int, str, dict]]] = {}
        for position, (shard_index, domain_index, entry, params) in enumerate(calls):
            groups.setdefault((shard_index, domain_index), []).append(
                (position, entry, params)
            )
        # Send phase: every group's payload goes on the wire before any
        # delivery happens. This ordering is the whole point — see the module
        # docstring and docs/architecture.md ("scatter before pump").
        handles = {}
        for (shard_index, domain_index), group in groups.items():
            handles[(shard_index, domain_index)] = (
                self.shards[shard_index].begin_invoke_batch(
                    domain_index,
                    [(entry, params) for _, entry, params in group],
                    chunk_size=chunk_size,
                )
            )
        # Gather phase: the first collect pumps the shared network to idle,
        # delivering every shard's traffic; later collects just read inboxes.
        outcomes: list = [None] * len(calls)
        for group_key, group in groups.items():
            for (position, _, _), outcome in zip(group, handles[group_key].collect()):
                outcomes[position] = outcome
        return outcomes

    # ------------------------------------------------------------------
    # Networking and capacity
    # ------------------------------------------------------------------
    def route_via_network(self, network: Network, attempts: int = 3) -> dict:
        """Route every shard's invokes over ``network``; returns all servers.

        Shard deployments get distinct client endpoints
        (``<shard-name>-client``), so their in-flight batches never share an
        inbox. ``self.client_address`` is the primary shard's, matching the
        single-deployment attribute legacy callers read.
        """
        servers: dict = {}
        for shard in self.shards:
            servers.update(shard.route_via_network(network, attempts=attempts))
        self.client_address = self.primary.client_address
        return servers

    def unroute(self) -> None:
        """Restore direct (in-process) invocation on every shard."""
        for shard in self.shards:
            shard.unroute()

    def rpc_retry_total(self) -> int:
        """Total RPC retransmissions across all shards while routed."""
        return sum(shard.rpc_retry_total() for shard in self.shards)

    def set_service_time(self, per_request: float,
                         domain_index: int | None = None,
                         per_byte: float = 0.0) -> None:
        """Install a serial service-time model on every shard's domains."""
        for shard in self.shards:
            shard.set_service_time(per_request, domain_index=domain_index,
                                   per_byte=per_byte)
