"""The sharded service plane: N deployments behind one routing surface.

A :class:`ShardedService` owns one :class:`~repro.core.deployment.Deployment`
per shard and presents them as a single service:

* **Keyed routing.** Every request carries a key (user id, query name,
  message digest, ...); the consistent-hash ring maps the key to the shard
  that owns it, so any client, anywhere, agrees on placement.
* **Scatter/gather batches.** :meth:`scatter` groups a batch by
  ``(shard, domain)``, *begins* every group's RPC batch before pumping the
  network once, then gathers. Because all payloads are on the wire before the
  first delivery, the shards' round trips and service time overlap in
  simulated time — pump between sends and the shards serialize again, and a
  4-shard deployment measures like 1 (see docs/architecture.md for the
  capacity model).
* **One audit surface.** All shards share a clock and a vendor registry, so
  :class:`repro.service.ServiceClient` can attest and cross-check the whole
  fleet the way :class:`~repro.core.client.AuditingClient` audits one
  deployment.

The plane deliberately reuses the single-deployment machinery — each shard is
a complete, independently auditable deployment — so everything that holds for
one deployment (at-most-once RPC, fault injection, update auditing) holds per
shard with no new protocol.
"""

from __future__ import annotations

from repro.core.deployment import Deployment
from repro.errors import KeyMigratingError, ReshardError, ServiceSpecError
from repro.net.transport import Network
from repro.service.ring import HashRing

__all__ = ["ShardedService", "PendingScatter"]


class PendingScatter:
    """An in-flight scatter begun by :meth:`ShardedService.begin_scatter`.

    Every group's batch payload is already on the wire. :meth:`collect`
    gathers synchronously (the first collect pumps the shared network);
    :meth:`wait_event` gathers inside a discrete-event loop, waiting on each
    group's batch without draining the network, so *other* tasks' scatters
    stay concurrently in flight. Calls whose keys were caught mid-migration
    are pre-resolved to their :class:`~repro.errors.KeyMigratingError`.
    """

    def __init__(self, size: int, groups: dict, handles: dict,
                 premapped: dict | None = None):
        self._size = size
        self._groups = groups      # (shard, domain) -> [(position, entry, params)]
        self._handles = handles    # (shard, domain) -> PendingInvokeBatch
        self._premapped = premapped or {}  # position -> outcome

    def _seed_outcomes(self) -> list:
        outcomes: list = [None] * self._size
        for position, outcome in self._premapped.items():
            outcomes[position] = outcome
        return outcomes

    def collect(self) -> list:
        """Gather every call's outcome, in call order (pumps the network)."""
        outcomes = self._seed_outcomes()
        for group_key, group in self._groups.items():
            for (position, _, _), outcome in zip(
                    group, self._handles[group_key].collect()):
                outcomes[position] = outcome
        return outcomes

    def wait_event(self, timeout: float = 0.25):
        """Event-loop form of :meth:`collect`; same outcomes, no pumping.

        A generator for :class:`repro.net.eventloop.EventLoop`: waits on each
        shard group's in-flight batch in turn. Responses for a group arrive
        (and are routed to it) regardless of which group the task is currently
        blocked on, so waiting group-by-group loses no concurrency.
        """
        outcomes = self._seed_outcomes()
        for group_key, group in self._groups.items():
            results = yield from self._handles[group_key].wait_event(
                timeout=timeout)
            for (position, _, _), outcome in zip(group, results):
                outcomes[position] = outcome
        return outcomes


class ShardedService:
    """N shard deployments routed by a consistent-hash ring.

    Built by :meth:`repro.service.ServiceSpec.synthesize`; or wrap an
    existing single deployment with :meth:`adopt` to give legacy code the
    plane interface.
    """

    def __init__(self, spec, shards: list[Deployment], ring: HashRing, clock):
        if not shards:
            raise ServiceSpecError("a sharded service needs at least one shard")
        if ring.shard_count != len(shards):
            raise ServiceSpecError(
                f"ring covers {ring.shard_count} shards but {len(shards)} exist"
            )
        self.spec = spec
        self.shards = list(shards)
        self.ring = ring
        self.clock = clock
        self.client_address: str | None = None
        # --- epoch state (live resharding; see repro.service.reshard) ------
        # ``epoch`` counts committed reshards. While a migration is running,
        # keys in ``_moving`` have no authoritative owner and keyed routing
        # fails safely; after commit, ``_overrides`` pins any key whose
        # records could not be moved (source crashed, link partitioned, ...)
        # to the shard that still holds them — routed correctly, never
        # silently misrouted. ``migrator`` is the app-provided state mover.
        self.epoch = 0
        self.migrator = None
        # When set (repro.transparency.epochs.EpochPublisher), every epoch
        # commit — and every finish_reshard drain pass — signs a
        # self-contained transparency bundle and appends it to the
        # publisher's epoch log for standalone auditors to verify.
        self.epoch_publisher = None
        self._moving: frozenset[bytes] = frozenset()
        # canonical key bytes -> (shard index still holding the records,
        # the key in its original form, for retrying the move later)
        self._overrides: dict[bytes, tuple[int, object]] = {}
        # Moved keys whose *source* still holds leftover records (a delete
        # lost in flight after the copy verified): the ring owner is
        # authoritative, these only await cleanup on finish_reshard().
        self._stale: dict[bytes, tuple[int, object]] = {}
        # Shards synthesized by an aborted reshard, kept for reuse — their
        # network endpoints are already registered, so a retry must get the
        # same deployment objects back rather than synthesizing twins.
        self._spare_shards: dict[int, Deployment] = {}
        self._network: Network | None = None
        self._route_attempts = 3
        self._latency_map = None  # LatencyMap applied while routed (geo/WAN)
        # domain_index (None = every domain) -> (per_request, per_byte); the
        # last model set for each slot, replayed onto shards grown later.
        self._service_times: dict[int | None, tuple[float, float]] = {}

    @classmethod
    def adopt(cls, deployment: Deployment, ring_vnodes: int = 128) -> "ShardedService":
        """Wrap one existing deployment as a single-shard service plane."""
        ring = HashRing(1, vnodes=ring_vnodes,
                        salt=b"repro/service/" + deployment.name.encode("utf-8"))
        return cls(None, [deployment], ring, deployment.clock)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Deployment:
        """Shard 0's deployment — what legacy single-deployment code holds."""
        return self.shards[0]

    @property
    def num_shards(self) -> int:
        """How many shards are attached (draining shards of a shrink included)."""
        return len(self.shards)

    def draining_shards(self) -> list[int]:
        """Shard indices beyond the committed ring's coverage.

        Non-empty only after a shrink whose evacuation was defeated for some
        keys: those shards are out of the ring but still hold pinned records
        (epoch overrides) or stale leftovers, so they stay attached — routed,
        served, audited — until :meth:`finish_reshard` drains and detaches
        them.
        """
        return list(range(self.ring.shard_count, len(self.shards)))

    @property
    def domains_per_shard(self) -> int:
        """Trust domains in each shard's deployment."""
        return len(self.primary.domains)

    @property
    def vendor_registry(self):
        """The hardware-vendor registry shared by every shard."""
        return self.primary.vendor_registry

    def shard_for(self, key) -> int:
        """The shard index owning ``key`` under the current epoch.

        During a migration, a key that is mid-move has no authoritative owner
        and routing raises :class:`~repro.errors.KeyMigratingError` (fail
        safely — never serve from the wrong shard). After a reshard commits,
        keys whose records could not be moved keep routing to the shard that
        still holds them until :meth:`finish_reshard` drains them.
        """
        key_bytes = HashRing._key_bytes(key)
        if key_bytes in self._moving:
            raise KeyMigratingError(
                f"key {key!r} is mid-migration in the epoch-{self.epoch + 1} "
                "reshard; retry after the epoch commits"
            )
        override = self._overrides.get(key_bytes)
        if override is not None:
            return override[0]
        return self.ring.shard_for(key)

    def deployment_for(self, key) -> Deployment:
        """The shard deployment owning ``key``."""
        return self.shards[self.shard_for(key)]

    @property
    def pending_migration_keys(self) -> int:
        """Keys still served from their pre-reshard shard (epoch overrides)."""
        return len(self._overrides)

    def pending_migrations(self) -> list[tuple[object, int]]:
        """Every pinned key with the shard index still holding its records."""
        return [(key, shard_index)
                for shard_index, key in self._overrides.values()]

    def pending_cleanups(self) -> list[tuple[object, int]]:
        """Moved keys with leftover source records awaiting cleanup."""
        return [(key, shard_index)
                for shard_index, key in self._stale.values()]

    def mark_stale(self, key, shard_index: int) -> None:
        """Queue a moved key's leftover source records for later cleanup."""
        self._stale[HashRing._key_bytes(key)] = (shard_index, key)

    def clear_stale(self, key) -> None:
        """Drop a key's cleanup entry (its source leftovers are gone)."""
        self._stale.pop(HashRing._key_bytes(key), None)

    # ------------------------------------------------------------------
    # Keyed invocation
    # ------------------------------------------------------------------
    def invoke(self, key, domain_index: int, entry: str, params) -> dict:
        """Invoke the application on ``key``'s shard, one trust domain."""
        return self.deployment_for(key).invoke(domain_index, entry, params)

    def invoke_on_shard(self, shard_index: int, domain_index: int,
                        entry: str, params) -> dict:
        """Invoke on an explicitly chosen shard (operator-side paths)."""
        return self.shards[shard_index].invoke(domain_index, entry, params)

    def invoke_batch(self, key, domain_index: int, calls: list,
                     chunk_size: int = 128) -> list:
        """Batched invoke against ``key``'s shard (single-shard batches)."""
        return self.deployment_for(key).invoke_batch(domain_index, calls,
                                                     chunk_size=chunk_size)

    # ------------------------------------------------------------------
    # Scatter/gather
    # ------------------------------------------------------------------
    def scatter(self, calls, chunk_size: int = 128) -> list:
        """Run a keyed batch across shards; outcomes come back in call order.

        ``calls`` is a sequence of ``(key, domain_index, entry, params)``
        tuples. Calls are grouped by the shard their key routes to (and the
        domain they target); every group's batch is *begun* — payload on the
        wire — before any group is collected, so all shards serve their slice
        of the batch concurrently in simulated time. Failures are isolated
        per call, exactly as :meth:`Deployment.invoke_batch` reports them —
        including a key caught mid-migration, which fails only its own call
        with :class:`~repro.errors.KeyMigratingError`.
        """
        return self.begin_scatter(calls, chunk_size=chunk_size).collect()

    def begin_scatter(self, calls, chunk_size: int = 128) -> PendingScatter:
        """Route, group, and *send* a keyed batch; return the in-flight handle.

        The split-phase form of :meth:`scatter`: every shard group's payload
        is on the wire when this returns, and nothing has been delivered.
        Gather with :meth:`PendingScatter.collect` (synchronous pump) or
        :meth:`PendingScatter.wait_event` (inside an event loop, leaving the
        network to other tasks). Keys caught mid-migration resolve to their
        :class:`~repro.errors.KeyMigratingError` without failing the rest.
        """
        calls = list(calls)
        premapped: dict[int, object] = {}
        groups: dict[tuple[int, int], list[tuple[int, str, dict]]] = {}
        for position, (key, domain_index, entry, params) in enumerate(calls):
            try:
                shard_index = self.shard_for(key)
            except KeyMigratingError as exc:
                premapped[position] = exc
                continue
            groups.setdefault((shard_index, domain_index), []).append(
                (position, entry, params)
            )
        return PendingScatter(len(calls), groups,
                              self._begin_groups(groups, chunk_size), premapped)

    def scatter_to_shards(self, calls, chunk_size: int = 128) -> list:
        """Scatter with explicit shard indices instead of routing keys.

        ``calls`` is a sequence of ``(shard_index, domain_index, entry,
        params)`` tuples — for callers that already resolved placement (e.g.
        the ODoH client routes by query name *before* encrypting, so the
        operator never needs the plaintext name to pick a shard).
        """
        return self.begin_scatter_to_shards(calls, chunk_size=chunk_size).collect()

    def begin_scatter_to_shards(self, calls,
                                chunk_size: int = 128) -> PendingScatter:
        """Split-phase :meth:`scatter_to_shards`; see :meth:`begin_scatter`."""
        calls = list(calls)
        groups: dict[tuple[int, int], list[tuple[int, str, dict]]] = {}
        for position, (shard_index, domain_index, entry, params) in enumerate(calls):
            if not 0 <= shard_index < len(self.shards):
                raise ServiceSpecError(
                    f"call {position} targets shard {shard_index}, but the "
                    f"service has {len(self.shards)} shard(s)"
                )
            groups.setdefault((shard_index, domain_index), []).append(
                (position, entry, params)
            )
        return PendingScatter(len(calls), groups,
                              self._begin_groups(groups, chunk_size))

    def _begin_groups(self, groups: dict, chunk_size: int) -> dict:
        # Send phase: every group's payload goes on the wire before any
        # delivery happens. This ordering is the whole point — see the module
        # docstring and docs/architecture.md ("scatter before pump"). The
        # gather phase lives on the PendingScatter: its first collect pumps
        # the shared network to idle, or wait_event defers to the event loop.
        handles = {}
        for (shard_index, domain_index), group in groups.items():
            handles[(shard_index, domain_index)] = (
                self.shards[shard_index].begin_invoke_batch(
                    domain_index,
                    [(entry, params) for _, entry, params in group],
                    chunk_size=chunk_size,
                )
            )
        return handles

    # ------------------------------------------------------------------
    # Networking and capacity
    # ------------------------------------------------------------------
    def route_via_network(self, network: Network, attempts: int = 3) -> dict:
        """Route every shard's invokes over ``network``; returns all servers.

        Shard deployments get distinct client endpoints
        (``<shard-name>-client``), so their in-flight batches never share an
        inbox. ``self.client_address`` is the primary shard's, matching the
        single-deployment attribute legacy callers read.
        """
        servers: dict = {}
        for shard in self.shards:
            servers.update(shard.route_via_network(network, attempts=attempts))
        self.client_address = self.primary.client_address
        # Remember the wiring so shards added by a live reshard can join the
        # same network with the same retry budget.
        self._network = network
        self._route_attempts = attempts
        return servers

    def route_via_executor(self, executor) -> None:
        """Route every shard's invokes through a parallel shard executor.

        The wall-clock counterpart of :meth:`route_via_network`: requests
        become the same serialize-once wire bytes, but they are served by
        worker processes (see :mod:`repro.service.parallel`) instead of the
        discrete-event transport. Live resharding is not supported while
        executor-routed — worker processes hold shard state the coordinator
        cannot migrate — so the wiring is deliberately *not* remembered for
        shards attached later.
        """
        for shard in self.shards:
            shard.route_via_executor(executor)
        self.client_address = self.primary.client_address

    def unroute(self) -> None:
        """Restore direct (in-process) invocation on every shard.

        Also forgets the network wiring, so shards grown by a later reshard
        stay in-process like the rest of the plane instead of being routed
        onto a network the original shards no longer use. Shards parked by
        an aborted reshard are unrouted too — reattaching one later must
        give it the same (in-process) footing as the live fleet.
        """
        for shard in self.shards:
            shard.unroute()
        for deployment in self._spare_shards.values():
            deployment.unroute()
        self._network = None
        self._route_attempts = 3
        self._latency_map = None

    def region_of(self, shard_index: int) -> str | None:
        """The named region shard ``shard_index`` is placed in, per the spec's
        ``regions`` rotation; ``None`` for single-region (or adopted) planes."""
        if self.spec is None:
            return None
        return self.spec.shard_region(shard_index)

    def _address_regions(self, shard_index: int) -> dict[str, str]:
        # Where each of one shard's addresses physically sits: the domains'
        # RPC endpoints live in the shard's region, but the shard's client
        # endpoint is the *coordinator's* stub for talking to it — the
        # coordinator (and the external client) sit in the primary region
        # (``spec.regions[0]``), so every RPC to a remote-region shard pays
        # the cross-region cost on its own client→domain link.
        shard = self.shards[shard_index]
        region = self.region_of(shard_index)
        primary = self.spec.regions[0]
        addresses = {domain.domain_id: region for domain in shard.domains}
        addresses[f"{shard.name}-client"] = primary
        return addresses

    def apply_latency_map(self, network: Network, latency_map) -> None:
        """Charge cross-region links per a :class:`~repro.net.latency.LatencyMap`.

        The coordinator and every client stub sit in the primary region
        (``spec.regions[0]``); each shard's trust domains sit in the region
        the spec's rotation places them in. Every address pair the map puts
        in different regions gets its (directed, possibly asymmetric) model
        installed on the network — so RPCs to a remote-region shard, and
        migration traffic through it, run at WAN speed, while same-region
        traffic keeps the network's default. Remembered so shards grown by a
        live reshard join the same geography (:meth:`attach_shard`).
        """
        if self.spec is None or not self.spec.regions:
            raise ServiceSpecError(
                "apply_latency_map needs a spec with named regions")
        self._latency_map = latency_map
        for shard_index in range(len(self.shards)):
            self._wire_shard_regions(network, shard_index)

    def _wire_shard_regions(self, network: Network, shard_index: int) -> None:
        latency_map = self._latency_map
        if latency_map is None:
            return
        addresses = self._address_regions(shard_index)
        for other_index in range(len(self.shards)):
            if other_index == shard_index:
                others = addresses
            else:
                others = self._address_regions(other_index)
            for address, region in addresses.items():
                for other, other_region in others.items():
                    if address == other or region == other_region:
                        continue
                    network.set_link_latency(
                        address, other,
                        latency_map.model_for(region, other_region),
                        symmetric=False)
                    network.set_link_latency(
                        other, address,
                        latency_map.model_for(other_region, region),
                        symmetric=False)

    def rpc_retry_total(self) -> int:
        """Total RPC retransmissions across all shards while routed."""
        return sum(shard.rpc_retry_total() for shard in self.shards)

    def duplicates_answered_total(self) -> int:
        """Duplicates deduplicated by every shard's at-most-once servers
        (shards grown by a mid-run reshard included)."""
        return sum(shard.duplicates_answered_total() for shard in self.shards)

    def max_queue_depth_per_shard(self) -> dict[int, int]:
        """High-water service-queue depth per shard (max over its domains).

        Zero for a shard that was never attached to a network or never had a
        service model installed — depth is only observable where a serial
        queue actually exists.
        """
        depths: dict[int, int] = {}
        for shard_index, shard in enumerate(self.shards):
            per_domain = shard.max_queue_depths()
            depths[shard_index] = max(per_domain) if per_domain else 0
        return depths

    def queue_depth_per_shard(self) -> dict[int, int]:
        """Instantaneous service-queue depth per shard (max over its domains).

        The live counterpart of :meth:`max_queue_depth_per_shard` — it falls
        back to zero when load subsides, which is what the autoscaler's
        scale-down signal needs (a high-water mark only ratchets up).
        """
        depths: dict[int, int] = {}
        for shard_index, shard in enumerate(self.shards):
            per_domain = shard.queue_depths()
            depths[shard_index] = max(per_domain) if per_domain else 0
        return depths

    @property
    def is_migrating(self) -> bool:
        """Whether an epoch transition currently has keys mid-move."""
        return bool(self._moving)

    def set_service_time(self, per_request: float,
                         domain_index: int | None = None,
                         per_byte: float = 0.0) -> None:
        """Install a serial service-time model on every shard's domains."""
        self._service_times[domain_index] = (per_request, per_byte)
        for shard in self.shards:
            shard.set_service_time(per_request, domain_index=domain_index,
                                   per_byte=per_byte)

    # ------------------------------------------------------------------
    # Live resharding (epoch-based; see repro.service.reshard)
    # ------------------------------------------------------------------
    def reshard(self, new_shard_count: int):
        """Resize the service to ``new_shard_count`` shards, live.

        A grow synthesizes the new shards from the :class:`ServiceSpec`; a
        shrink evacuates the retiring shards and detaches them. Either way,
        every moved key's state travels through the app's :attr:`migrator`
        (over the simulated network when routed) and a new epoch commits.
        Returns the :class:`~repro.service.reshard.ReshardReport`. Raises
        :class:`~repro.errors.ReshardError` for adopted (spec-less) planes and
        :class:`~repro.errors.InvalidReshardError` — before anything moves —
        for a degenerate transition (``n < 1`` or ``n`` equal to the current
        count).
        """
        from repro.service.reshard import ReshardCoordinator

        return ReshardCoordinator(self).reshard(new_shard_count)

    def finish_reshard(self):
        """Retry the migration of any keys still pinned to their old shard.

        After a reshard that ran under faults (crashed source, partitioned
        target), some keys stay routed to their pre-reshard shard via epoch
        overrides — correct, but not yet rebalanced. Call this once the fault
        heals to drain them. Returns the :class:`ReshardReport` of the drain.
        """
        from repro.service.reshard import ReshardCoordinator

        return ReshardCoordinator(self).finish()

    def attach_shard(self, deployment: Deployment) -> None:
        """Join a freshly synthesized shard to the plane's wiring.

        Used by the reshard coordinator: the shard is appended, routed over
        the plane's network (when routed), and given every service-time model
        the plane has accumulated. Keyed routing does *not* see it until the
        coordinator commits the new ring.
        """
        self.shards.append(deployment)
        for domain_index, (per_request, per_byte) in self._service_times.items():
            deployment.set_service_time(per_request, domain_index=domain_index,
                                        per_byte=per_byte)
        if self._network is not None:
            deployment.route_via_network(self._network,
                                         attempts=self._route_attempts)
            # A grown shard joins the fleet's geography: its links to every
            # other-region shard get the same cross-region models.
            self._wire_shard_regions(self._network, len(self.shards) - 1)

    def detach_shard(self, shard_index: int) -> Deployment:
        """Remove an evacuated tail shard from the plane (shrink retire step).

        The shard's queues and service model leave the plane with it: it no
        longer appears in :attr:`shards`, receives no keyed or scatter
        traffic, reports no queue depth, and is skipped by every fleet-wide
        audit surface. The deployment object is parked (unrouted) in the
        spare pool because its endpoint addresses stay registered on the
        network — deployment names are deterministic, so a later grow back to
        this index must reattach this exact object rather than synthesize a
        colliding twin.

        Only the tail shard may be detached: removing an inner index would
        renumber every shard behind it and silently invalidate epoch
        overrides pinned by index.
        """
        if shard_index != len(self.shards) - 1:
            raise ReshardError(
                f"only the tail shard ({len(self.shards) - 1}) can be "
                f"detached, not {shard_index}; inner removal would renumber "
                "the shards behind it")
        if len(self.shards) <= self.ring.shard_count:
            raise ReshardError(
                f"shard {shard_index} is still covered by the committed ring "
                "and cannot be detached")
        for shard_index_pinned, _ in self._overrides.values():
            if shard_index_pinned == shard_index:
                raise ReshardError(
                    f"shard {shard_index} still holds pinned records and "
                    "cannot be detached until finish_reshard() drains them")
        for shard_index_stale, _ in self._stale.values():
            if shard_index_stale == shard_index:
                raise ReshardError(
                    f"shard {shard_index} still holds stale leftovers and "
                    "cannot be detached until finish_reshard() cleans them")
        deployment = self.shards.pop()
        deployment.unroute()
        self._spare_shards[shard_index] = deployment
        return deployment

    def begin_epoch(self, moving_keys) -> None:
        """Mark ``moving_keys`` as mid-migration (keyed routing fails safely)."""
        if self._moving:
            raise ReshardError("a reshard is already in progress")
        self._moving = frozenset(HashRing._key_bytes(key) for key in moving_keys)

    def commit_epoch(self, ring: HashRing,
                     unmigrated: dict | None = None) -> None:
        """Flip to ``ring``, release the moving set, and pin stragglers.

        ``unmigrated`` maps keys whose state could not be moved to the shard
        index that still holds them; they keep routing there (correctly)
        until :meth:`finish_reshard` drains them.

        The ring may cover *fewer* shards than are attached — that is a
        shrink committing while defeated evacuations leave records pinned on
        a retiring shard. Such shards are draining (:meth:`draining_shards`):
        out of the ring, reachable only through overrides, detached by
        :meth:`finish_reshard` once empty. A ring covering *more* shards than
        exist would route keys into the void and is rejected.
        """
        if ring.shard_count > len(self.shards):
            raise ReshardError(
                f"ring covers {ring.shard_count} shards but only "
                f"{len(self.shards)} exist"
            )
        self.ring = ring
        self._moving = frozenset()
        for key, shard_index in (unmigrated or {}).items():
            self._overrides[HashRing._key_bytes(key)] = (shard_index, key)
        self.epoch += 1

    def clear_override(self, key) -> None:
        """Drop a key's epoch override (its state reached the ring owner)."""
        self._overrides.pop(HashRing._key_bytes(key), None)
