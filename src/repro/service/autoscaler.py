"""Metrics-driven elasticity: watch the shards, resize the plane, prove it.

The :class:`Autoscaler` closes the loop the operator would otherwise close
by hand: it samples per-shard signals (windowed p99 latency from the
workload, instantaneous service-queue depth from the shards' own RPC
servers), debounces them through breach/clear streaks, and issues
:meth:`ShardedService.reshard` calls — growing under sustained overload,
shrinking once the fleet is provably idle.

Firing is deliberately harder than holding:

* **Hysteresis.** A grow needs ``breach_streak`` *consecutive* overloaded
  samples; a shrink needs ``clear_streak`` consecutive calm ones. Samples in
  the band between the high and low thresholds reset both streaks, so a
  workload hovering near a threshold holds instead of flapping.
* **Operator gates** (:mod:`repro.service.gates`). Every decision passes the
  heartbeat gate (no reshard into a partition) and the cooldown gate (the
  previous transition must settle first) before a record moves — and a
  reconciliation census afterwards proves no record was lost or became
  authoritative on two shards.

Every sample, decision, refusal, and census verdict is recorded, so a
scenario can assert not just "it scaled" but *why* it scaled, why it held,
and that the move was clean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ReshardError
from repro.service.gates import (
    CooldownGate,
    GateResult,
    HeartbeatGate,
    ReconciliationGate,
)

__all__ = ["AutoscalerPolicy", "MetricsSample", "AutoscaleDecision",
           "Autoscaler", "percentile"]


def percentile(values, fraction: float) -> float | None:
    """The ``fraction`` percentile of ``values`` (nearest-rank), or ``None``
    for an empty window — the autoscaler treats "no completed requests" as
    silence, not as zero latency."""
    ordered = sorted(values)
    if not ordered:
        return None
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rank = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[rank]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """The knobs: thresholds, hysteresis, bounds, and pacing.

    Latency thresholds are windowed p99 in simulated seconds; queue
    thresholds are instantaneous per-shard service-queue depth. The low
    thresholds must sit strictly below the high ones — the gap is the
    hysteresis band that prevents flapping.
    """

    p99_high_s: float = 0.5       # grow when windowed p99 reaches this
    queue_high: int = 16          # ... or any shard's queue is this deep
    p99_low_s: float = 0.05       # shrink only when p99 is at/below this
    queue_low: int = 1            # ... and every queue is at/below this
    min_shards: int = 1
    max_shards: int = 8
    grow_factor: float = 2.0      # target = ceil(shards * grow_factor)
    shrink_factor: float = 2.0    # target = floor(shards / shrink_factor)
    cooldown_s: float = 5.0       # minimum settle time between transitions
    breach_streak: int = 2        # consecutive overloaded samples to grow
    clear_streak: int = 4         # consecutive calm samples to shrink
    sample_interval_s: float = 0.25

    def __post_init__(self):
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if not self.p99_low_s < self.p99_high_s:
            raise ValueError("p99_low_s must sit below p99_high_s")
        if not self.queue_low < self.queue_high:
            raise ValueError("queue_low must sit below queue_high")
        if self.grow_factor <= 1.0 or self.shrink_factor <= 1.0:
            raise ValueError("grow/shrink factors must exceed 1.0")
        if self.breach_streak < 1 or self.clear_streak < 1:
            raise ValueError("streaks must be at least 1 sample")
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")


@dataclass(frozen=True)
class MetricsSample:
    """One observation of the plane: when, how slow, how deep, how wide."""

    time_s: float
    p99_s: float | None           # None: no requests completed in the window
    queue_depth: int              # max instantaneous depth across shards
    shard_count: int              # committed ring coverage (draining excluded)


@dataclass
class AutoscaleDecision:
    """What the autoscaler did (or refused to do) at one sample point."""

    time_s: float
    action: str                   # "grow" | "shrink" | "hold"
    from_shards: int
    to_shards: int
    reason: str
    gated_by: GateResult | None = None      # the gate that refused, if any
    reconciliation: GateResult | None = None
    report: object = None         # ReshardReport when the transition ran
    sample: MetricsSample | None = None

    @property
    def fired(self) -> bool:
        """Whether a transition actually committed."""
        return self.action in ("grow", "shrink") and self.report is not None

    def to_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "action": self.action,
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "reason": self.reason,
            "fired": self.fired,
            "gated_by": self.gated_by.gate if self.gated_by else None,
            "reconciled": (self.reconciliation.allowed
                           if self.reconciliation else None),
        }


class Autoscaler:
    """Watches a :class:`ShardedService` and resizes it through its gates.

    Drive it by calling :meth:`observe` at a steady cadence (the workload
    driver runs it as a peer event-loop task every
    ``policy.sample_interval_s``), passing the windowed p99 the caller
    computed from completed requests; queue depth is probed live from the
    shards. Everything observed and decided accumulates on
    :attr:`samples` and :attr:`decisions`.
    """

    def __init__(self, plane, policy: AutoscalerPolicy | None = None):
        self.plane = plane
        self.policy = policy or AutoscalerPolicy()
        self.heartbeat = HeartbeatGate()
        self.cooldown = CooldownGate(self.policy.cooldown_s)
        self.reconciliation = ReconciliationGate()
        self.samples: list[MetricsSample] = []
        self.decisions: list[AutoscaleDecision] = []
        self.reshard_reports: list = []
        self._breach = 0
        self._calm = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def sample(self, p99_s: float | None = None) -> MetricsSample:
        """Snapshot the plane now; ``p99_s`` is the caller's latency window."""
        depths = self.plane.queue_depth_per_shard()
        return MetricsSample(
            time_s=self.plane.clock.now(),
            p99_s=p99_s,
            queue_depth=max(depths.values()) if depths else 0,
            shard_count=self.plane.ring.shard_count,
        )

    def observe(self, p99_s: float | None = None) -> AutoscaleDecision:
        """Take one sample, update hysteresis, and maybe reshard.

        Returns the decision made at this sample — ``hold`` (with the
        reason), a gated non-action (with the refusing gate's evidence), or
        a fired transition (with its :class:`ReshardReport` and the
        post-move reconciliation verdict).
        """
        policy = self.policy
        sample = self.sample(p99_s)
        self.samples.append(sample)
        shards = sample.shard_count

        overloaded = ((sample.p99_s is not None
                       and sample.p99_s >= policy.p99_high_s)
                      or sample.queue_depth >= policy.queue_high)
        calm = ((sample.p99_s is None or sample.p99_s <= policy.p99_low_s)
                and sample.queue_depth <= policy.queue_low)
        if overloaded:
            self._breach += 1
            self._calm = 0
        elif calm:
            self._calm += 1
            self._breach = 0
        else:
            # In the hysteresis band: neither streak may grow.
            self._breach = 0
            self._calm = 0

        action, target, reason = "hold", shards, (
            f"breach {self._breach}/{policy.breach_streak}, "
            f"calm {self._calm}/{policy.clear_streak}")
        if self._breach >= policy.breach_streak and shards < policy.max_shards:
            action = "grow"
            target = min(policy.max_shards,
                         math.ceil(shards * policy.grow_factor))
            reason = (f"overloaded for {self._breach} consecutive samples "
                      f"(p99={sample.p99_s}, queue={sample.queue_depth})")
        elif self._calm >= policy.clear_streak and shards > policy.min_shards:
            action = "shrink"
            target = max(policy.min_shards,
                         math.floor(shards / policy.shrink_factor))
            reason = (f"calm for {self._calm} consecutive samples "
                      f"(p99={sample.p99_s}, queue={sample.queue_depth})")

        decision = AutoscaleDecision(
            time_s=sample.time_s, action=action, from_shards=shards,
            to_shards=target, reason=reason, sample=sample)
        if action == "hold" or target == shards:
            self.decisions.append(decision)
            return decision

        # Gate pipeline: a refusal records its evidence and keeps the streak,
        # so the decision can fire at the next sample once the gate clears.
        for gate in (self.heartbeat, self.cooldown):
            verdict = gate.check(self.plane)
            if not verdict:
                decision.gated_by = verdict
                self.decisions.append(decision)
                return decision

        decision.report = self._fire(decision)
        self._breach = 0
        self._calm = 0
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # Transition
    # ------------------------------------------------------------------
    def _fire(self, decision: AutoscaleDecision):
        """Run the gated transition: census, reshard, census, reconcile."""
        plane = self.plane
        before = self.reconciliation.census(plane)
        report = None
        try:
            if plane.draining_shards():
                # A previous shrink is still draining; retry its leftovers
                # instead of stacking a new transition on top.
                drain = plane.finish_reshard()
                self.reshard_reports.append(drain)
                if plane.draining_shards():
                    decision.gated_by = GateResult(
                        "drain", False,
                        "previous shrink still draining after retry")
                    return None
            report = plane.reshard(decision.to_shards)
        except ReshardError as exc:
            # A faulted transition still committed its epoch (the coordinator
            # pins what could not move); surface its partial report.
            report = getattr(exc, "report", None)
            decision.reason += f"; transition faulted: {exc}"
        self.cooldown.record(plane.clock.now())
        if report is not None:
            self.reshard_reports.append(report)
        after = self.reconciliation.census(plane)
        decision.reconciliation = self.reconciliation.verify(before, after)
        return report
