"""Small shared utilities used across the repro package."""

from __future__ import annotations

import hmac

from repro.crypto import rng

__all__ = [
    "constant_time_equal",
    "random_bytes",
    "to_hex",
    "from_hex",
    "int_to_bytes",
    "bytes_to_int",
    "chunked",
]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings in constant time.

    Used wherever the library compares MACs, digests, or other secret-derived
    values, so that the simulator exhibits the same comparison discipline a
    production implementation would.
    """
    return hmac.compare_digest(a, b)


def random_bytes(n: int) -> bytes:
    """Return ``n`` random bytes (cryptographically secure outside replay).

    Drawn through :mod:`repro.crypto.rng` so simulation drivers can make the
    stream deterministic for same-seed replay.
    """
    if n < 0:
        raise ValueError("cannot request a negative number of random bytes")
    return rng.token_bytes(n)


def to_hex(data: bytes) -> str:
    """Render ``data`` as a lowercase hex string."""
    return data.hex()


def from_hex(text: str) -> bytes:
    """Parse a hex string (with or without a ``0x`` prefix) into bytes."""
    text = text.strip()
    if text.startswith(("0x", "0X")):
        text = text[2:]
    return bytes.fromhex(text)


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode a non-negative integer big-endian into exactly ``length`` bytes."""
    if value < 0:
        raise ValueError("int_to_bytes only encodes non-negative integers")
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


def chunked(data: bytes, size: int):
    """Yield successive ``size``-byte chunks of ``data`` (last may be short)."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(data), size):
        yield data[start:start + size]
