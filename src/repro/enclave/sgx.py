"""An Intel-SGX-style simulated enclave.

SGX enclaves attest with a *quote*: a structure containing MRENCLAVE (the
enclave code measurement), MRSIGNER (the identity of the key that signed the
enclave), security version numbers, and report data chosen by the enclave,
signed by an attestation key that chains to Intel. The simulation reproduces
that structure, with the vendor registry standing in for Intel's quote
verification collateral.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.enclave.tee import EnclaveBase, HardwareType
from repro.enclave.vendor import VendorCertificate
from repro.errors import AttestationError
from repro.wire.codec import encode

__all__ = ["SgxQuote", "SgxStyleEnclave"]


@dataclass(frozen=True)
class SgxQuote:
    """The SGX-style quote a client (or peer trust domain) verifies."""

    mrenclave: bytes
    mrsigner: bytes
    isv_svn: int
    report_data: bytes
    nonce: bytes
    certificate: VendorCertificate
    signature: bytes

    def signed_payload(self) -> bytes:
        """The canonical bytes covered by the attestation-key signature."""
        return encode({
            "format": "sgx-quote-v1",
            "mrenclave": self.mrenclave,
            "mrsigner": self.mrsigner,
            "isv_svn": self.isv_svn,
            "report_data": self.report_data,
            "nonce": self.nonce,
        })

    def measurement_digest(self) -> bytes:
        """The MRENCLAVE value — the digest of the loaded enclave code."""
        if not self.mrenclave:
            raise AttestationError("quote is missing MRENCLAVE")
        return self.mrenclave

    def to_dict(self) -> dict:
        """Plain-data form for wire transfer."""
        return {
            "format": "sgx-quote-v1",
            "mrenclave": self.mrenclave,
            "mrsigner": self.mrsigner,
            "isv_svn": self.isv_svn,
            "report_data": self.report_data,
            "nonce": self.nonce,
            "certificate": self.certificate.to_dict(),
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SgxQuote":
        """Rebuild a quote from :meth:`to_dict` output."""
        return cls(
            mrenclave=bytes(data["mrenclave"]),
            mrsigner=bytes(data["mrsigner"]),
            isv_svn=int(data["isv_svn"]),
            report_data=bytes(data["report_data"]),
            nonce=bytes(data["nonce"]),
            certificate=VendorCertificate.from_dict(data["certificate"]),
            signature=bytes(data["signature"]),
        )


class SgxStyleEnclave(EnclaveBase):
    """A simulated Intel SGX enclave."""

    hardware_type = HardwareType.SGX
    isv_svn = 2  # security version number reported in quotes

    def attest(self, nonce: bytes, user_data: bytes = b"") -> SgxQuote:
        """Produce an SGX-style quote for the current launch state.

        SGX report data is limited to 64 bytes, so the quote carries
        ``SHA-256(user_data)`` rather than the user data itself — callers that
        need the full value send it alongside the quote and the verifier checks
        the hash, exactly as real SGX applications do.
        """
        self._check_operational()
        report_data = sha256(b"repro/sgx/report-data", user_data)
        quote = SgxQuote(
            mrenclave=self.measurement.digest,
            mrsigner=sha256(b"repro/sgx/mrsigner", self.vendor.name.encode("utf-8")),
            isv_svn=self.isv_svn,
            report_data=report_data,
            nonce=bytes(nonce),
            certificate=self.certificate,
            signature=b"",
        )
        signature = self._sign_evidence(quote.signed_payload())
        return SgxQuote(
            mrenclave=quote.mrenclave,
            mrsigner=quote.mrsigner,
            isv_svn=quote.isv_svn,
            report_data=quote.report_data,
            nonce=quote.nonce,
            certificate=quote.certificate,
            signature=signature,
        )

    @staticmethod
    def expected_report_data(user_data: bytes) -> bytes:
        """The report-data value a verifier expects for ``user_data``."""
        return sha256(b"repro/sgx/report-data", user_data)
