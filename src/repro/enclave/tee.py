"""The base trusted-execution-environment abstraction.

A simulated enclave is provisioned on a *device* certified by a hardware
vendor, loads a code blob (the application-independent framework in the
paper's design), and then exposes exactly the narrow interface real TEEs do:

* :meth:`attest` — produce a signed statement binding the launch measurement,
  a caller-chosen nonce, and optional user data (e.g. the current application
  digest and log head);
* :meth:`seal` / :meth:`unseal` — persist state bound to this device and
  measurement;
* :meth:`call` — invoke the loaded code through its entry point. The host
  never touches enclave memory directly.

Concrete subclasses (:class:`~repro.enclave.nitro.NitroStyleEnclave`,
:class:`~repro.enclave.sgx.SgxStyleEnclave`) differ in their attestation
evidence formats, mirroring the heterogeneous-hardware deployments the paper
recommends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.hashes import hkdf
from repro.crypto.keys import SigningKey
from repro.enclave.measurement import Measurement, measure_code
from repro.enclave.memory import EnclaveMemory
from repro.enclave.sealing import SealedBlob, seal, unseal
from repro.enclave.vendor import HardwareVendor, VendorCertificate
from repro.errors import EnclaveCompromisedError, EnclaveError

__all__ = ["HardwareType", "EnclaveInfo", "EnclaveBase"]


class HardwareType(str, enum.Enum):
    """The kind of secure hardware backing a trust domain."""

    NITRO = "nitro"
    SGX = "sgx"
    NONE = "none"  # trust domain 0: the developer's own machine, no TEE


@dataclass(frozen=True)
class EnclaveInfo:
    """Static facts about an enclave instance, safe to share with clients."""

    enclave_id: str
    hardware_type: HardwareType
    vendor_name: str
    device_id: str
    measurement: Measurement


class EnclaveBase:
    """Common behaviour shared by all simulated TEEs."""

    hardware_type: HardwareType = HardwareType.NONE

    def __init__(self, enclave_id: str, vendor: HardwareVendor, code: bytes,
                 code_label: str = "framework"):
        self.enclave_id = enclave_id
        self.vendor = vendor
        self.device_id = f"{vendor.name}/{enclave_id}"
        self._device_key, self._certificate = vendor.provision_device(self.device_id)
        # Device-unique secret, the root of the sealing-key hierarchy.
        self._device_secret = hkdf(
            self.device_id.encode("utf-8"), info=b"repro/enclave/device-secret", length=32
        )
        self._code = bytes(code)
        self.measurement = measure_code(code, code_label)
        self.memory = EnclaveMemory(isolated=True)
        self._entry_point: Optional[Callable] = None
        self.compromised = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def certificate(self) -> VendorCertificate:
        """This device's vendor-issued certificate."""
        return self._certificate

    def info(self) -> EnclaveInfo:
        """Client-visible facts about the enclave."""
        return EnclaveInfo(
            enclave_id=self.enclave_id,
            hardware_type=self.hardware_type,
            vendor_name=self.vendor.name,
            device_id=self.device_id,
            measurement=self.measurement,
        )

    def loaded_code(self) -> bytes:
        """The code blob sealed into the enclave at launch (public by design)."""
        return self._code

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def set_entry_point(self, entry_point: Callable) -> None:
        """Install the callable that represents the loaded code's entry point.

        In a real TEE the loaded binary *is* the entry point; in the simulation
        the framework object registers itself here after being constructed from
        the measured code blob.
        """
        self._entry_point = entry_point

    def call(self, method: str, *args, **kwargs):
        """Invoke the loaded code through the enclave boundary."""
        self._check_operational()
        if self._entry_point is None:
            raise EnclaveError(f"enclave {self.enclave_id} has no code entry point installed")
        return self._entry_point(method, *args, **kwargs)

    def _check_operational(self) -> None:
        if self.compromised:
            raise EnclaveCompromisedError(
                f"enclave {self.enclave_id} is marked compromised"
            )

    # ------------------------------------------------------------------
    # Attestation (evidence format supplied by subclasses)
    # ------------------------------------------------------------------
    def attest(self, nonce: bytes, user_data: bytes = b""):
        """Produce attestation evidence binding measurement, nonce, and user data."""
        raise NotImplementedError

    def _sign_evidence(self, payload: bytes) -> bytes:
        """Sign evidence with the device attestation key (ECDSA, like real vendors)."""
        return self._device_key.sign(payload, scheme="ecdsa")

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def seal(self, plaintext: bytes) -> SealedBlob:
        """Seal data to this device and measurement."""
        return seal(self._device_secret, self.measurement, plaintext)

    def unseal(self, blob: SealedBlob) -> bytes:
        """Unseal data previously sealed by this enclave."""
        return unseal(self._device_secret, self.measurement, blob)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def mark_compromised(self) -> None:
        """Simulate a TEE exploit: isolation fails and operations are refused."""
        self.compromised = True
        self.memory.breach()
