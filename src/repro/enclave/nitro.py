"""An AWS-Nitro-style simulated enclave.

Nitro enclaves attest with a CBOR/COSE "attestation document" containing
platform configuration registers (PCRs), a nonce, optional user data, and a
certificate chain ending at the AWS root. The simulation reproduces the same
*shape*: PCR0 measures the loaded image, PCR1/PCR2 measure the (simulated)
kernel and boot ramdisk, the document carries nonce and user data, and it is
signed by the device key certified by the vendor root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.enclave.tee import EnclaveBase, HardwareType
from repro.enclave.vendor import VendorCertificate
from repro.errors import AttestationError
from repro.wire.codec import encode

__all__ = ["NitroAttestationDocument", "NitroStyleEnclave"]


@dataclass(frozen=True)
class NitroAttestationDocument:
    """The Nitro-style attestation document a client (or peer domain) verifies."""

    module_id: str
    pcrs: dict
    nonce: bytes
    user_data: bytes
    certificate: VendorCertificate
    signature: bytes

    def signed_payload(self) -> bytes:
        """The canonical bytes covered by the device signature."""
        return encode({
            "format": "nitro-attestation-v1",
            "module_id": self.module_id,
            "pcrs": {str(k): v for k, v in self.pcrs.items()},
            "nonce": self.nonce,
            "user_data": self.user_data,
        })

    def measurement_digest(self) -> bytes:
        """The PCR0 value — the digest of the loaded enclave image."""
        try:
            return self.pcrs["0"]
        except KeyError as exc:
            raise AttestationError("attestation document is missing PCR0") from exc

    def to_dict(self) -> dict:
        """Plain-data form for wire transfer."""
        return {
            "format": "nitro-attestation-v1",
            "module_id": self.module_id,
            "pcrs": {str(k): v for k, v in self.pcrs.items()},
            "nonce": self.nonce,
            "user_data": self.user_data,
            "certificate": self.certificate.to_dict(),
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NitroAttestationDocument":
        """Rebuild a document from :meth:`to_dict` output."""
        return cls(
            module_id=str(data["module_id"]),
            pcrs={str(k): bytes(v) for k, v in data["pcrs"].items()},
            nonce=bytes(data["nonce"]),
            user_data=bytes(data["user_data"]),
            certificate=VendorCertificate.from_dict(data["certificate"]),
            signature=bytes(data["signature"]),
        )


class NitroStyleEnclave(EnclaveBase):
    """A simulated AWS Nitro enclave."""

    hardware_type = HardwareType.NITRO

    def attest(self, nonce: bytes, user_data: bytes = b"") -> NitroAttestationDocument:
        """Produce a Nitro-style attestation document for the current launch state."""
        self._check_operational()
        pcrs = {
            "0": self.measurement.digest,
            "1": sha256(b"repro/nitro/kernel", self.device_id.encode("utf-8")),
            "2": sha256(b"repro/nitro/ramdisk", self.device_id.encode("utf-8")),
        }
        document = NitroAttestationDocument(
            module_id=self.device_id,
            pcrs=pcrs,
            nonce=bytes(nonce),
            user_data=bytes(user_data),
            certificate=self.certificate,
            signature=b"",
        )
        signature = self._sign_evidence(document.signed_payload())
        return NitroAttestationDocument(
            module_id=document.module_id,
            pcrs=document.pcrs,
            nonce=document.nonce,
            user_data=document.user_data,
            certificate=document.certificate,
            signature=signature,
        )
