"""Simulated hardware vendors and their attestation PKI.

Every real TEE's attestation bottoms out in a vendor root of trust: AWS signs
Nitro attestation documents, Intel signs SGX quote-verification collateral.
The simulation gives each vendor a root signing key and lets it issue
per-device certificates; attestation documents chain device → root, and the
:class:`VendorRegistry` plays the role of the well-known root-certificate set
a client ships with.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import AttestationError
from repro.wire.codec import encode

__all__ = ["VendorCertificate", "HardwareVendor", "VendorRegistry"]


@dataclass(frozen=True)
class VendorCertificate:
    """A device certificate: the vendor's signature over a device public key."""

    vendor_name: str
    device_id: str
    device_public_key: bytes
    signature: bytes

    def signed_payload(self) -> bytes:
        """The canonical bytes the vendor signed."""
        return encode({
            "vendor": self.vendor_name,
            "device_id": self.device_id,
            "device_public_key": self.device_public_key,
        })

    def to_dict(self) -> dict:
        """Plain-data form for embedding in attestation documents."""
        return {
            "vendor_name": self.vendor_name,
            "device_id": self.device_id,
            "device_public_key": self.device_public_key,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VendorCertificate":
        """Rebuild a certificate from :meth:`to_dict` output."""
        return cls(
            vendor_name=str(data["vendor_name"]),
            device_id=str(data["device_id"]),
            device_public_key=bytes(data["device_public_key"]),
            signature=bytes(data["signature"]),
        )


class HardwareVendor:
    """A simulated secure-hardware vendor (AWS-like, Intel-like, ...).

    The vendor holds a root signing key and issues device certificates for the
    enclaves "manufactured" under its name. Vendors are deterministic given a
    name so tests and examples can recreate the same PKI.
    """

    def __init__(self, name: str):
        self.name = name
        self._root_key = SigningKey.from_seed(b"repro/vendor-root/" + name.encode("utf-8"))
        self._issued: dict[str, VendorCertificate] = {}
        self.compromised = False

    @property
    def root_public_key(self) -> VerifyingKey:
        """The vendor's root verification key (pinned by clients)."""
        return self._root_key.verifying_key()

    def provision_device(self, device_id: str) -> tuple[SigningKey, VendorCertificate]:
        """Create a device attestation key and certify it under the vendor root."""
        device_key = SigningKey.from_seed(
            b"repro/vendor-device/" + self.name.encode("utf-8") + b"/" + device_id.encode("utf-8")
        )
        payload = encode({
            "vendor": self.name,
            "device_id": device_id,
            "device_public_key": device_key.verifying_key().to_bytes(),
        })
        certificate = VendorCertificate(
            vendor_name=self.name,
            device_id=device_id,
            device_public_key=device_key.verifying_key().to_bytes(),
            signature=self._root_key.sign(payload, scheme="ecdsa"),
        )
        self._issued[device_id] = certificate
        return device_key, certificate

    def issued_devices(self) -> list[str]:
        """Device ids this vendor has provisioned."""
        return sorted(self._issued)

    def mark_compromised(self) -> None:
        """Mark the vendor's TEE technology as exploited (fault injection)."""
        self.compromised = True


class VendorRegistry:
    """The set of vendor roots a verifying client trusts."""

    def __init__(self, vendors: list[HardwareVendor] | None = None):
        self._vendors: dict[str, HardwareVendor] = {}
        # Content-addressed memo of successfully verified certificates. A
        # device certificate is immutable and its verification is a pure
        # function of its fields plus the (deterministic) vendor root, so a
        # repeat presentation can skip the ECDSA check. Only successes are
        # cached; failures always re-verify. Bounded FIFO to keep memory flat.
        self._verified: OrderedDict[tuple, VerifyingKey] = OrderedDict()
        for vendor in vendors or []:
            self.add(vendor)

    def add(self, vendor: HardwareVendor) -> None:
        """Trust a vendor's root key."""
        self._vendors[vendor.name] = vendor

    def get(self, name: str) -> HardwareVendor:
        """Look up a trusted vendor; raises :class:`AttestationError` if unknown."""
        vendor = self._vendors.get(name)
        if vendor is None:
            raise AttestationError(f"unknown hardware vendor {name!r}")
        return vendor

    def names(self) -> list[str]:
        """Names of all trusted vendors."""
        return sorted(self._vendors)

    def verify_certificate(self, certificate: VendorCertificate) -> VerifyingKey:
        """Verify a device certificate and return the certified device key."""
        vendor = self.get(certificate.vendor_name)
        memo_key = (certificate.vendor_name, certificate.device_id,
                    certificate.device_public_key, certificate.signature)
        cached = self._verified.get(memo_key)
        if cached is not None:
            return cached
        root = vendor.root_public_key
        if not root.verify(certificate.signed_payload(), certificate.signature, scheme="ecdsa"):
            raise AttestationError(
                f"device certificate for {certificate.device_id!r} failed verification"
            )
        device_key = VerifyingKey.from_bytes(certificate.device_public_key)
        self._verified[memo_key] = device_key
        while len(self._verified) > 1024:
            self._verified.popitem(last=False)
        return device_key

    @classmethod
    def default(cls) -> "VendorRegistry":
        """A registry with the two vendors used throughout the examples."""
        return cls([HardwareVendor("aws-nitro-sim"), HardwareVendor("intel-sgx-sim")])
