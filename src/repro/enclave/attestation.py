"""Attestation verification.

The client-side half of the secure-hardware building block: given evidence
from a trust domain (a Nitro-style document or an SGX-style quote), check that

1. the device certificate chains to a trusted vendor root,
2. the evidence signature verifies under the certified device key,
3. the nonce matches the challenge the verifier issued (freshness),
4. the measurement matches the expected code digest, and
5. for SGX-style quotes, the report data matches the supplied user data.

The result distinguishes *why* verification failed so audits can produce
useful misbehavior evidence.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common import constant_time_equal
from repro.crypto.hashes import sha256
from repro.enclave.measurement import Measurement
from repro.enclave.nitro import NitroAttestationDocument
from repro.enclave.sgx import SgxQuote, SgxStyleEnclave
from repro.enclave.vendor import VendorRegistry
from repro.errors import AttestationError

__all__ = ["AttestationResult", "AttestationVerifier"]


@dataclass(frozen=True)
class AttestationResult:
    """Outcome of verifying one piece of attestation evidence."""

    valid: bool
    reason: str = ""
    vendor_name: str = ""
    measurement_digest: bytes = b""

    def __bool__(self) -> bool:
        return self.valid


class AttestationVerifier:
    """Verifies Nitro-style documents and SGX-style quotes against pinned roots."""

    def __init__(self, registry: VendorRegistry | None = None):
        self.registry = registry or VendorRegistry.default()
        # Memo of evidence signatures that already verified under a given
        # device key: audits and repeated attestation rounds re-present the
        # same immutable (key, payload, signature) triples, and signature
        # verification is a pure function of them. Keyed by digest to keep
        # entries small; only successes are cached (a failure re-verifies
        # every time) and the bound keeps memory flat.
        self._signature_memo: OrderedDict[bytes, bool] = OrderedDict()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def verify(self, evidence, nonce: bytes, expected_measurement: Measurement | None = None,
               user_data: bytes = b"") -> AttestationResult:
        """Verify any supported evidence type.

        Args:
            evidence: a :class:`NitroAttestationDocument` or :class:`SgxQuote`
                (or their ``to_dict`` form).
            nonce: the challenge the verifier sent.
            expected_measurement: the digest of the open-source framework code
                the enclave should be running, if the verifier knows it.
            user_data: the user data the enclave was asked to bind (e.g. the
                current application digest and log head).
        """
        if isinstance(evidence, dict):
            evidence = self._from_dict(evidence)
        if isinstance(evidence, NitroAttestationDocument):
            return self._verify_nitro(evidence, nonce, expected_measurement, user_data)
        if isinstance(evidence, SgxQuote):
            return self._verify_sgx(evidence, nonce, expected_measurement, user_data)
        return AttestationResult(False, reason=f"unsupported evidence type {type(evidence).__name__}")

    def verify_or_raise(self, evidence, nonce: bytes,
                        expected_measurement: Measurement | None = None,
                        user_data: bytes = b"") -> AttestationResult:
        """Like :meth:`verify` but raises :class:`AttestationError` on failure."""
        result = self.verify(evidence, nonce, expected_measurement, user_data)
        if not result:
            raise AttestationError(f"attestation failed: {result.reason}")
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _from_dict(data: dict):
        fmt = data.get("format", "")
        if fmt == "nitro-attestation-v1":
            return NitroAttestationDocument.from_dict(data)
        if fmt == "sgx-quote-v1":
            return SgxQuote.from_dict(data)
        raise AttestationError(f"unknown attestation evidence format {fmt!r}")

    def _verify_common(self, evidence, nonce: bytes) -> AttestationResult | None:
        try:
            device_key = self.registry.verify_certificate(evidence.certificate)
        except AttestationError as exc:
            return AttestationResult(False, reason=str(exc))
        payload = evidence.signed_payload()
        memo_key = sha256(device_key.to_bytes() + evidence.signature + payload)
        if memo_key not in self._signature_memo:
            if not device_key.verify(payload, evidence.signature, scheme="ecdsa"):
                return AttestationResult(False, reason="evidence signature invalid",
                                         vendor_name=evidence.certificate.vendor_name)
            self._signature_memo[memo_key] = True
            while len(self._signature_memo) > 4096:
                self._signature_memo.popitem(last=False)
        if not constant_time_equal(evidence.nonce, nonce):
            return AttestationResult(False, reason="nonce mismatch (possible replay)",
                                     vendor_name=evidence.certificate.vendor_name)
        return None

    def _verify_nitro(self, document: NitroAttestationDocument, nonce: bytes,
                      expected: Measurement | None, user_data: bytes) -> AttestationResult:
        failure = self._verify_common(document, nonce)
        if failure is not None:
            return failure
        vendor = document.certificate.vendor_name
        if user_data and not constant_time_equal(document.user_data, user_data):
            return AttestationResult(False, reason="user data mismatch", vendor_name=vendor)
        digest = document.measurement_digest()
        if expected is not None and not constant_time_equal(digest, expected.digest):
            return AttestationResult(False, reason="measurement mismatch", vendor_name=vendor,
                                     measurement_digest=digest)
        return AttestationResult(True, vendor_name=vendor, measurement_digest=digest)

    def _verify_sgx(self, quote: SgxQuote, nonce: bytes,
                    expected: Measurement | None, user_data: bytes) -> AttestationResult:
        failure = self._verify_common(quote, nonce)
        if failure is not None:
            return failure
        vendor = quote.certificate.vendor_name
        expected_report = SgxStyleEnclave.expected_report_data(user_data)
        if not constant_time_equal(quote.report_data, expected_report):
            return AttestationResult(False, reason="report data mismatch", vendor_name=vendor)
        digest = quote.measurement_digest()
        if expected is not None and not constant_time_equal(digest, expected.digest):
            return AttestationResult(False, reason="measurement mismatch", vendor_name=vendor,
                                     measurement_digest=digest)
        return AttestationResult(True, vendor_name=vendor, measurement_digest=digest)
