"""Sealed storage.

Sealing lets an enclave persist data (the developer's public key, the
append-only log head, application key shares) so that only an enclave with the
*same measurement on the same device* can recover it. The simulation derives a
sealing key from the device secret and the measurement via HKDF and protects
the blob with an encrypt-then-MAC construction built from the primitives in
:mod:`repro.crypto.hashes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import constant_time_equal, random_bytes
from repro.crypto.hashes import hkdf, hkdf_expand, hmac_sha256
from repro.enclave.measurement import Measurement
from repro.errors import SealingError

__all__ = ["SealedBlob", "seal", "unseal"]

_NONCE_SIZE = 16
_TAG_SIZE = 32


@dataclass(frozen=True)
class SealedBlob:
    """An opaque sealed blob: nonce, ciphertext, and authentication tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialize as ``nonce || tag || ciphertext``."""
        return self.nonce + self.tag + self.ciphertext

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedBlob":
        """Deserialize a blob produced by :meth:`to_bytes`."""
        if len(data) < _NONCE_SIZE + _TAG_SIZE:
            raise SealingError("sealed blob too short")
        return cls(
            nonce=data[:_NONCE_SIZE],
            tag=data[_NONCE_SIZE:_NONCE_SIZE + _TAG_SIZE],
            ciphertext=data[_NONCE_SIZE + _TAG_SIZE:],
        )


def _sealing_key(device_secret: bytes, measurement: Measurement) -> bytes:
    return hkdf(
        device_secret,
        salt=measurement.digest,
        info=b"repro/enclave/sealing-key",
        length=32,
    )


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    return hkdf_expand(key, b"repro/enclave/sealing-stream" + nonce, length) if length else b""


def seal(device_secret: bytes, measurement: Measurement, plaintext: bytes) -> SealedBlob:
    """Seal ``plaintext`` to (device secret, measurement)."""
    key = _sealing_key(device_secret, measurement)
    nonce = random_bytes(_NONCE_SIZE)
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac_sha256(key, nonce + ciphertext)
    return SealedBlob(nonce=nonce, ciphertext=ciphertext, tag=tag)


def unseal(device_secret: bytes, measurement: Measurement, blob: SealedBlob) -> bytes:
    """Recover the plaintext of a sealed blob.

    Raises:
        SealingError: the blob was sealed on a different device, under a
            different measurement, or has been tampered with.
    """
    key = _sealing_key(device_secret, measurement)
    expected_tag = hmac_sha256(key, blob.nonce + blob.ciphertext)
    if not constant_time_equal(expected_tag, blob.tag):
        raise SealingError("sealed blob failed authentication")
    stream = _keystream(key, blob.nonce, len(blob.ciphertext))
    return bytes(c ^ s for c, s in zip(blob.ciphertext, stream))
