"""The enclave's isolated memory model.

Real TEEs isolate (and for confidentiality-oriented designs, encrypt) the
memory of the code they run; the host operating system and the cloud operator
cannot read or modify it. The simulation models that boundary explicitly:
state stored in :class:`EnclaveMemory` is only reachable through the owning
enclave's methods, reads from outside raise, and an "exploited" enclave flips
the switch that makes host reads possible — which is exactly the failure mode
the paper's heterogeneous-hardware argument is about.
"""

from __future__ import annotations

from repro.errors import SandboxEscapeError

__all__ = ["EnclaveMemory"]


class EnclaveMemory:
    """Key/value memory visible only inside the enclave boundary."""

    def __init__(self, isolated: bool = True):
        self._store: dict[str, object] = {}
        self._isolated = isolated
        self._breached = False

    # ------------------------------------------------------------------
    # In-enclave access (used by the enclave's own code paths)
    # ------------------------------------------------------------------
    def write(self, key: str, value) -> None:
        """Store a value from inside the enclave."""
        self._store[key] = value

    def read(self, key: str):
        """Read a value from inside the enclave; ``None`` when absent."""
        return self._store.get(key)

    def delete(self, key: str) -> None:
        """Remove a value (no-op when absent)."""
        self._store.pop(key, None)

    def keys(self) -> list[str]:
        """All keys currently stored (names only, visible to the host)."""
        return sorted(self._store)

    def wipe(self) -> None:
        """Erase all contents (enclave teardown)."""
        self._store.clear()

    # ------------------------------------------------------------------
    # Host-side access attempts
    # ------------------------------------------------------------------
    def host_read(self, key: str):
        """A read attempted from outside the enclave boundary.

        Succeeds only when the memory is not isolated (trust domain 0 runs
        without secure hardware) or when an exploit has breached the enclave.
        """
        if self._isolated and not self._breached:
            raise SandboxEscapeError(
                "host attempted to read isolated enclave memory"
            )
        return self._store.get(key)

    def breach(self) -> None:
        """Mark the isolation as defeated (called by the exploit simulator)."""
        self._breached = True

    @property
    def isolated(self) -> bool:
        """Whether the memory is behind an intact isolation boundary."""
        return self._isolated and not self._breached

    @property
    def breached(self) -> bool:
        """Whether an exploit has defeated the isolation."""
        return self._breached
