"""Code measurements.

A measurement is the digest the secure hardware computes over the code loaded
into the enclave at launch. Clients compare measurements against the digest of
the open-sourced framework code, and trust domains compare each other's
measurements when cross-auditing a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256

__all__ = ["Measurement", "measure_code"]


@dataclass(frozen=True)
class Measurement:
    """A launch measurement: digest of the loaded code plus a version label."""

    digest: bytes
    code_size: int
    label: str = ""

    def hex(self) -> str:
        """Hex form of the digest (what a registry or log entry displays)."""
        return self.digest.hex()

    def matches(self, code: bytes) -> bool:
        """Check whether this measurement corresponds to ``code``."""
        return measure_code(code, self.label) == self

    def to_dict(self) -> dict:
        """Plain-data form for wire transfer and logs."""
        return {"digest": self.digest.hex(), "code_size": self.code_size, "label": self.label}

    @classmethod
    def from_dict(cls, data: dict) -> "Measurement":
        """Rebuild a measurement from :meth:`to_dict` output."""
        return cls(bytes.fromhex(data["digest"]), int(data["code_size"]), str(data["label"]))


def measure_code(code: bytes, label: str = "") -> Measurement:
    """Measure a code blob the way the simulated hardware would at launch.

    The digest is domain-separated from ordinary content hashes so that a
    measurement can never be confused with, say, a log-entry digest.
    """
    digest = sha256(b"repro/enclave/measurement", label.encode("utf-8"), code)
    return Measurement(digest=digest, code_size=len(code), label=label)
