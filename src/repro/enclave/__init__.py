"""Simulated secure hardware (trusted execution environments).

The paper's first building block is secure hardware that "should be able to
attest to the code that is running" (§3.1). Real TEEs (AWS Nitro, Intel SGX)
are not available in this environment, so this package provides simulated
equivalents that expose the same artifacts a client verifies in a real
deployment:

* a *measurement* of the code loaded into the enclave,
* an *attestation document* (Nitro style, with PCRs and a vendor certificate
  chain) or a *quote* (SGX style, with MRENCLAVE/MRSIGNER) signed by a
  simulated hardware vendor's key,
* *sealed storage* bound to the enclave's measurement and device secret,
* an isolated-memory model the host cannot read, and
* a fault-injection API (:mod:`repro.enclave.exploits`) that models
  vendor-wide TEE exploits so experiments can show why heterogeneous secure
  hardware matters.

See DESIGN.md §2 for the substitution rationale.
"""

from repro.enclave.measurement import Measurement, measure_code
from repro.enclave.vendor import HardwareVendor, VendorCertificate, VendorRegistry
from repro.enclave.tee import EnclaveBase, EnclaveInfo, HardwareType
from repro.enclave.nitro import NitroStyleEnclave, NitroAttestationDocument
from repro.enclave.sgx import SgxStyleEnclave, SgxQuote
from repro.enclave.attestation import AttestationVerifier, AttestationResult
from repro.enclave.sealing import SealedBlob, seal, unseal
from repro.enclave.memory import EnclaveMemory
from repro.enclave.exploits import ExploitCampaign

__all__ = [
    "Measurement",
    "measure_code",
    "HardwareVendor",
    "VendorCertificate",
    "VendorRegistry",
    "EnclaveBase",
    "EnclaveInfo",
    "HardwareType",
    "NitroStyleEnclave",
    "NitroAttestationDocument",
    "SgxStyleEnclave",
    "SgxQuote",
    "AttestationVerifier",
    "AttestationResult",
    "SealedBlob",
    "seal",
    "unseal",
    "EnclaveMemory",
    "ExploitCampaign",
]
