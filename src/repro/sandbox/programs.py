"""Bundled WVM programs.

These are the "application binaries" the examples and benchmarks load into the
sandbox. The headline program is :func:`bls_share_module`, the WVM version of
the paper's evaluated application: producing one BLS threshold-signature share.
Its structure mirrors what a native BLS library does — hash the message into
the signature group, then perform a double-and-add scalar multiplication by the
signer's key share — with the group arithmetic expressed over the simulated
bilinear group's exponent representation.

Host-function index assignments (see :class:`repro.sandbox.wvm_executor.WvmExecutor`):

======  ====================================================  =====
index   meaning                                               arity
======  ====================================================  =====
1       ``hash_to_g1(message_int, message_len) -> exponent``  2
======  ====================================================  =====
"""

from __future__ import annotations

from repro.sandbox.wvm.assembler import assemble
from repro.sandbox.wvm.module import WvmModule

__all__ = [
    "HOST_HASH_TO_G1",
    "bls_share_source",
    "bls_share_module",
    "modexp_source",
    "modexp_module",
    "fibonacci_module",
]

HOST_HASH_TO_G1 = 1

_BLS_SHARE_ASM = """
; Produce a BLS threshold-signature share.
;
; bls_share(message_int, message_len, share_value, group_order)
;   h     = hash_to_g1(message_int, message_len)   (host intrinsic, WASI-style import)
;   sigma = share_value * h  (mod group_order), computed by double-and-add
; returns sigma (the exponent form of the share's G1 element).
; message_len is carried separately so messages with leading zero bytes (and
; the empty message) hash exactly as their raw bytes would.

func scalar_mul(params=3, locals=4) export
    ; locals: 0=scalar 1=base 2=modulus 3=accumulator
    push 0
    store 3
loop:
    load 0
    jz done
    load 0
    push 1
    and
    jz skip_add
    load 3
    load 1
    add
    load 2
    mod
    store 3
skip_add:
    load 1
    load 1
    add
    load 2
    mod
    store 1
    load 0
    push 1
    shr
    store 0
    jmp loop
done:
    load 3
    ret
endfunc

func bls_share(params=4, locals=5) export
    ; locals: 0=message_int 1=message_len 2=share_value 3=group_order 4=h
    load 0
    load 1
    hostcall 1
    store 4
    load 2
    load 4
    load 3
    call scalar_mul
    halt
endfunc
"""

_MODEXP_ASM = """
; modexp(base, exponent, modulus) by square-and-multiply.
func modexp(params=3, locals=4) export
    ; locals: 0=base 1=exponent 2=modulus 3=result
    push 1
    store 3
    load 0
    load 2
    mod
    store 0
loop:
    load 1
    jz done
    load 1
    push 1
    and
    jz skip_mul
    load 3
    load 0
    mul
    load 2
    mod
    store 3
skip_mul:
    load 0
    load 0
    mul
    load 2
    mod
    store 0
    load 1
    push 1
    shr
    store 1
    jmp loop
done:
    load 3
    halt
endfunc
"""

_FIBONACCI_ASM = """
; fibonacci(n): iterative, used by sandbox unit tests and the fuel ablation.
func fibonacci(params=1, locals=4) export
    ; locals: 0=n 1=a 2=b 3=tmp
    push 0
    store 1
    push 1
    store 2
loop:
    load 0
    jz done
    load 2
    store 3
    load 1
    load 2
    add
    store 2
    load 3
    store 1
    load 0
    push 1
    sub
    store 0
    jmp loop
done:
    load 1
    halt
endfunc
"""


def bls_share_source() -> str:
    """Assembly text of the BLS signature-share application."""
    return _BLS_SHARE_ASM


def bls_share_module() -> WvmModule:
    """The assembled BLS signature-share module."""
    return assemble(_BLS_SHARE_ASM)


def modexp_source() -> str:
    """Assembly text of the modular-exponentiation program."""
    return _MODEXP_ASM


def modexp_module() -> WvmModule:
    """The assembled modular-exponentiation module."""
    return assemble(_MODEXP_ASM)


def fibonacci_module() -> WvmModule:
    """The assembled Fibonacci module (test and metering workloads)."""
    return assemble(_FIBONACCI_ASM)
