"""The WVM instruction set.

Instructions operate on a stack of arbitrary-precision integers (mirroring a
Wasm engine with a bignum extension, which is what compiling a bignum library
to Wasm effectively gives you) plus per-frame locals and a bounded linear
memory of bytes. Every opcode has a fixed fuel cost.
"""

from __future__ import annotations

import enum

__all__ = ["Opcode", "FUEL_COST"]


class Opcode(enum.IntEnum):
    """All WVM opcodes."""

    # Stack manipulation
    PUSH = 0x01      # push immediate integer
    POP = 0x02
    DUP = 0x03
    SWAP = 0x04

    # Locals
    LOAD = 0x10      # push locals[imm]
    STORE = 0x11     # locals[imm] = pop()

    # Arithmetic / logic (operands popped right-then-left)
    ADD = 0x20
    SUB = 0x21
    MUL = 0x22
    DIV = 0x23       # floor division; traps on zero divisor
    MOD = 0x24       # traps on zero modulus
    NEG = 0x25
    SHL = 0x26
    SHR = 0x27
    AND = 0x28
    OR = 0x29
    XOR = 0x2A
    NOT = 0x2B

    # Comparisons (push 1 or 0)
    EQ = 0x30
    NE = 0x31
    LT = 0x32
    LE = 0x33
    GT = 0x34
    GE = 0x35

    # Control flow
    JMP = 0x40       # unconditional jump to imm (instruction index)
    JZ = 0x41        # jump if popped value == 0
    JNZ = 0x42       # jump if popped value != 0
    CALL = 0x43      # call function index imm
    RET = 0x44       # return from function (value = top of stack, if any)
    HALT = 0x45      # stop the program (value = top of stack, if any)
    NOP = 0x46

    # Linear memory (byte granularity, bounds checked)
    MSTORE = 0x50    # addr, value -> memory[addr] = value & 0xFF
    MLOAD = 0x51     # addr -> push memory[addr]
    MSIZE = 0x52     # push memory size in bytes

    # Host interface
    HOSTCALL = 0x60  # call host function imm; pops arg count per host signature


#: Fuel charged per opcode. Multiplications and host calls are the expensive
#: operations, mirroring real gas/fuel schedules.
FUEL_COST = {
    Opcode.MUL: 4,
    Opcode.DIV: 4,
    Opcode.MOD: 4,
    Opcode.HOSTCALL: 10,
    Opcode.CALL: 2,
}

DEFAULT_FUEL_COST = 1
