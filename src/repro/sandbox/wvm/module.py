"""WVM modules and functions.

A module is a set of named functions plus exported entry points. Modules are
what the application developer ships in a code package: the framework measures
the module's canonical encoding, records the digest in the append-only log,
and instantiates it inside the sandbox.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.sandbox.wvm.instructions import Opcode
from repro.wire.codec import canonical_digest, decode, encode

__all__ = ["WvmFunction", "WvmModule"]


@dataclass(frozen=True)
class WvmFunction:
    """One function: a name, parameter count, local count, and instruction list.

    Instructions are ``(opcode, immediate)`` pairs; the immediate is ``None``
    for opcodes that do not take one.
    """

    name: str
    num_params: int
    num_locals: int
    code: tuple

    def __post_init__(self):
        if self.num_params < 0 or self.num_locals < self.num_params:
            raise AssemblerError(
                f"function {self.name!r}: locals must include parameters"
            )


@dataclass(frozen=True)
class WvmModule:
    """A compiled WVM module: functions by index plus named exports."""

    functions: tuple
    exports: dict

    def function_index(self, name: str) -> int:
        """Index of the exported function called ``name``."""
        try:
            return self.exports[name]
        except KeyError as exc:
            raise AssemblerError(f"module does not export {name!r}") from exc

    def function(self, index: int) -> WvmFunction:
        """The function at ``index``."""
        if not 0 <= index < len(self.functions):
            raise AssemblerError(f"no function at index {index}")
        return self.functions[index]

    def export_names(self) -> list[str]:
        """All exported entry-point names."""
        return sorted(self.exports)

    # ------------------------------------------------------------------
    # Serialization — this is the artifact whose digest goes in the log.
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical binary encoding of the module."""
        return encode({
            "format": "wvm-module-v1",
            "functions": [
                {
                    "name": f.name,
                    "num_params": f.num_params,
                    "num_locals": f.num_locals,
                    "code": [
                        [int(op), imm if imm is not None else None]
                        for op, imm in f.code
                    ],
                }
                for f in self.functions
            ],
            "exports": {name: index for name, index in self.exports.items()},
        })

    @classmethod
    def from_bytes(cls, data: bytes) -> "WvmModule":
        """Decode a module from its canonical encoding."""
        try:
            raw = decode(data)
        except Exception as exc:
            raise AssemblerError(f"not a WVM module: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("format") != "wvm-module-v1":
            raise AssemblerError("not a WVM module")
        functions = []
        for f in raw["functions"]:
            code = tuple(
                (Opcode(op), imm)
                for op, imm in (tuple(pair) for pair in f["code"])
            )
            functions.append(WvmFunction(
                name=str(f["name"]),
                num_params=int(f["num_params"]),
                num_locals=int(f["num_locals"]),
                code=code,
            ))
        exports = {str(k): int(v) for k, v in raw["exports"].items()}
        return cls(functions=tuple(functions), exports=exports)

    def digest(self) -> bytes:
        """The code digest the framework records in the append-only log."""
        return canonical_digest(self.to_bytes())
