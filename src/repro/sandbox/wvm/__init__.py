"""WVM — a small WebAssembly-like stack virtual machine.

The paper's prototype compiles C++ applications to WebAssembly and runs them
inside Node.js. WVM plays that role here: a stack-based bytecode format, an
assembler for a human-readable text form, and an interpreter with the two
properties the framework relies on:

* **containment** — programs can only touch their own operand stack, locals,
  and bounded linear memory, plus whatever host functions the embedder chose
  to expose; and
* **metering** — every instruction consumes fuel, so a malicious or buggy
  update cannot spin forever inside the enclave.
"""

from repro.sandbox.wvm.instructions import Opcode
from repro.sandbox.wvm.module import WvmFunction, WvmModule
from repro.sandbox.wvm.assembler import assemble
from repro.sandbox.wvm.vm import WvmInstance, WvmLimits

__all__ = ["Opcode", "WvmFunction", "WvmModule", "assemble", "WvmInstance", "WvmLimits"]
