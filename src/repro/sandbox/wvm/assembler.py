"""A small text assembler for WVM modules.

The assembly format keeps the bundled programs readable and testable::

    ; comments start with ';'
    func scalar_mul(params=3, locals=6) export
        push 0
        store 3
    loop:
        load 0
        jz done
        ...
        jmp loop
    done:
        load 3
        halt
    endfunc

Rules:

* ``func NAME(params=P, locals=L) [export]`` opens a function; ``endfunc``
  closes it. ``locals`` counts parameters plus additional locals.
* labels are ``name:`` on their own line and are function-scoped.
* jump targets and ``call`` targets may be labels (same function), decimal
  instruction indices, or function names (for ``call``).
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.sandbox.wvm.instructions import Opcode
from repro.sandbox.wvm.module import WvmFunction, WvmModule

__all__ = ["assemble"]

_FUNC_RE = re.compile(
    r"^func\s+(?P<name>[A-Za-z_][\w-]*)\s*\(\s*params\s*=\s*(?P<params>\d+)\s*,"
    r"\s*locals\s*=\s*(?P<locals>\d+)\s*\)\s*(?P<export>export)?$"
)
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_][\w-]*):$")

_NO_IMMEDIATE = {
    Opcode.POP, Opcode.DUP, Opcode.SWAP, Opcode.ADD, Opcode.SUB, Opcode.MUL,
    Opcode.DIV, Opcode.MOD, Opcode.NEG, Opcode.SHL, Opcode.SHR, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.EQ, Opcode.NE, Opcode.LT,
    Opcode.LE, Opcode.GT, Opcode.GE, Opcode.RET, Opcode.HALT, Opcode.NOP,
    Opcode.MSTORE, Opcode.MLOAD, Opcode.MSIZE,
}
_LABEL_IMMEDIATE = {Opcode.JMP, Opcode.JZ, Opcode.JNZ}


def assemble(source: str) -> WvmModule:
    """Assemble WVM assembly text into a module."""
    functions: list[WvmFunction] = []
    exports: dict[str, int] = {}
    function_indices: dict[str, int] = {}
    pending: list[dict] = []

    current = None
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("func "):
            if current is not None:
                raise AssemblerError(f"line {line_number}: nested func")
            match = _FUNC_RE.match(line)
            if not match:
                raise AssemblerError(f"line {line_number}: malformed func header")
            current = {
                "name": match.group("name"),
                "params": int(match.group("params")),
                "locals": int(match.group("locals")),
                "export": bool(match.group("export")),
                "instructions": [],
                "labels": {},
                "line": line_number,
            }
            if current["name"] in function_indices:
                raise AssemblerError(f"line {line_number}: duplicate function {current['name']!r}")
            function_indices[current["name"]] = len(pending)
            pending.append(current)
            continue
        if line == "endfunc":
            if current is None:
                raise AssemblerError(f"line {line_number}: endfunc outside func")
            current = None
            continue
        if current is None:
            raise AssemblerError(f"line {line_number}: instruction outside func")
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group("label")
            if label in current["labels"]:
                raise AssemblerError(f"line {line_number}: duplicate label {label!r}")
            current["labels"][label] = len(current["instructions"])
            continue
        current["instructions"].append((line_number, line))

    if current is not None:
        raise AssemblerError(f"function {current['name']!r} is missing endfunc")
    if not pending:
        raise AssemblerError("no functions defined")

    for spec in pending:
        code = []
        for line_number, text in spec["instructions"]:
            code.append(_parse_instruction(text, line_number, spec["labels"], function_indices))
        function = WvmFunction(
            name=spec["name"],
            num_params=spec["params"],
            num_locals=spec["locals"],
            code=tuple(code),
        )
        functions.append(function)
        if spec["export"]:
            exports[spec["name"]] = function_indices[spec["name"]]

    if not exports:
        raise AssemblerError("module exports no entry points")
    return WvmModule(functions=tuple(functions), exports=exports)


def _parse_instruction(text: str, line_number: int, labels: dict, function_indices: dict):
    parts = text.split()
    mnemonic = parts[0].upper()
    try:
        opcode = Opcode[mnemonic]
    except KeyError as exc:
        raise AssemblerError(f"line {line_number}: unknown opcode {mnemonic!r}") from exc
    operands = parts[1:]
    if opcode in _NO_IMMEDIATE:
        if operands:
            raise AssemblerError(f"line {line_number}: {mnemonic} takes no operand")
        return (opcode, None)
    if len(operands) != 1:
        raise AssemblerError(f"line {line_number}: {mnemonic} needs exactly one operand")
    operand = operands[0]
    if opcode in _LABEL_IMMEDIATE:
        if operand in labels:
            return (opcode, labels[operand])
        if re.fullmatch(r"-?\d+", operand):
            return (opcode, int(operand))
        raise AssemblerError(f"line {line_number}: unknown label {operand!r}")
    if opcode is Opcode.CALL:
        if operand in function_indices:
            return (opcode, function_indices[operand])
        if re.fullmatch(r"\d+", operand):
            return (opcode, int(operand))
        raise AssemblerError(f"line {line_number}: unknown function {operand!r}")
    # PUSH, LOAD, STORE, HOSTCALL take integer immediates (PUSH may be huge/negative).
    try:
        value = int(operand, 0)
    except ValueError as exc:
        raise AssemblerError(f"line {line_number}: bad immediate {operand!r}") from exc
    return (opcode, value)
